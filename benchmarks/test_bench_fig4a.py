"""Figure 4a -- "all publishers" channel replication micro-benchmark.

Paper setup: one channel, one publisher at 10 msg/s, 100..800 subscribers;
non-replicated vs 3-server all-publishers replication.

Paper shape: the non-replicated response time grows with the subscriber
count and collapses past ~500 subscribers (CPU cannot sustain the
fan-out); the replicated configuration stays low throughout.
"""

from benchmarks.conftest import run_once
from repro.experiments.experiment1 import DEFAULT_LEVELS, run_fig4a
from repro.experiments.report import render_figure4


def test_bench_fig4a(benchmark):
    result = run_once(benchmark, lambda: run_fig4a(DEFAULT_LEVELS, measure_s=10.0))
    print()
    print(render_figure4(result, "Figure 4a -- all-publishers replication"))

    non_rep = {p.clients: p for p in result.series(False)}
    rep = {p.clients: p for p in result.series(True)}

    # paper shape 1: similar performance at low fan-out
    assert non_rep[100].mean_latency_s < 0.2
    assert rep[100].mean_latency_s < 0.2
    # paper shape 2: non-replicated degrades monotonically toward the knee
    assert non_rep[500].mean_latency_s > non_rep[100].mean_latency_s
    # paper shape 3: past ~500 subscribers the single server collapses
    assert non_rep[800].mean_latency_s > 10 * non_rep[400].mean_latency_s
    # paper shape 4: replication keeps response time low to 800
    assert rep[800].mean_latency_s < 0.25
    assert rep[800].delivery_rate > 0.99

    benchmark.extra_info["non_replicated_ms"] = {
        n: round(p.mean_latency_s * 1000, 1) for n, p in non_rep.items()
    }
    benchmark.extra_info["replicated_ms"] = {
        n: round(p.mean_latency_s * 1000, 1) for n, p in rep.items()
    }
