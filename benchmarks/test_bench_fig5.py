"""Figures 5a/5b/5c and the headline claim -- client scalability.

Paper setup (Experiment 2): RGame players join over time, 3 state updates
per second each, up to 8 pub/sub servers; run once under the Dynamoth load
balancer and once under consistent hashing.

Paper shapes:
* players ramp up (Fig 5a) while total message throughput grows (Fig 5b);
* Dynamoth keeps average response time near its baseline -- with short
  spikes at rebalances -- far beyond the point where consistent hashing
  deteriorates (Fig 5c);
* headline: Dynamoth sustains ~60% more players under the 150 ms bound
  (1000 vs 625 in the paper).  The reproduction runs a ~1/2-scale world
  (620 players max, proportionally smaller per-server bandwidth) and
  checks direction and a substantial gap rather than the exact 60%.

The Dynamoth and consistent-hashing runs are cached at module level so
Fig 5, Fig 6 and the headline benches share them instead of re-simulating.
"""

from functools import lru_cache

from benchmarks.conftest import run_once
from repro.core.cluster import BALANCER_CONSISTENT_HASHING, BALANCER_DYNAMOTH
from repro.experiments.experiment2 import (
    HeadlineComparison,
    ScalabilityConfig,
    run_scalability,
)
from repro.experiments.report import render_figure5, render_headline

BENCH_CONFIG = ScalabilityConfig(
    tiles_per_side=8,
    start_players=60,
    end_players=620,
    ramp_duration_s=450.0,
    hold_duration_s=50.0,
    nominal_egress_bps=620_000.0,
    # paper-like rebalance cadence (Fig 5 shows reconfigurations tens of
    # seconds apart); very short T_wait thrashes the transition machinery
    t_wait_s=20.0,
)


@lru_cache(maxsize=None)
def dynamoth_run():
    return run_scalability(BENCH_CONFIG, balancer=BALANCER_DYNAMOTH)


@lru_cache(maxsize=None)
def hashing_run():
    return run_scalability(BENCH_CONFIG, balancer=BALANCER_CONSISTENT_HASHING)


def test_bench_fig5_dynamoth(benchmark):
    """Fig 5a/5b/5c, Dynamoth side (the expensive simulation)."""
    result = run_once(benchmark, dynamoth_run)

    # Fig 5a: the ramp was followed
    assert result.recorder.max("population") >= BENCH_CONFIG.end_players * 0.95
    # Fig 5b: servers scaled out to the full pool under load
    assert result.final_server_count == BENCH_CONFIG.max_servers
    # Fig 5c: response time at moderate load sits near the WAN baseline
    # in most windows ("small spikes ... of short duration" at rebalance
    # points are the paper's own observation)
    windows = [
        result.response_times.window_mean(t0, t0 + 10.0) for t0 in range(100, 200, 10)
    ]
    windows = [w for w in windows if w is not None]
    healthy = sum(1 for w in windows if w < 0.150)
    assert windows and healthy >= len(windows) * 0.6
    # conservative pool use: servers reused before spawning (rebalances
    # outnumber spawn events)
    spawns = sum(1 for __, k, __d in result.balancer_events if k == "spawn-request")
    assert len(result.rebalance_times) > spawns

    benchmark.extra_info["max_sustainable_players"] = result.max_sustainable_players()
    benchmark.extra_info["servers"] = result.final_server_count


def test_bench_fig5_consistent_hashing(benchmark):
    """Fig 5b/5c, consistent-hashing side."""
    result = run_once(benchmark, hashing_run)
    print()
    print(render_figure5(dynamoth_run(), result))

    assert result.final_server_count == BENCH_CONFIG.max_servers
    # the paper's observation: CH spawns a server on *every* rebalance
    spawns = [t for t, k, __ in result.balancer_events if k == "spawn-request"]
    assert len(result.rebalance_times) == len(spawns)

    benchmark.extra_info["max_sustainable_players"] = result.max_sustainable_players()


def _imbalance(result, t_lo=150.0, t_hi=350.0):
    """Mean busiest-server/average load-ratio over the mid-ramp window.

    This is the *mechanism* behind the paper's headline: consistent
    hashing "can not take individual server loads into account", so its
    busiest server runs far hotter than its average; Dynamoth flattens
    the distribution.  Unlike the sustainable-player knee (which is
    chaos-sensitive at our scale), this ratio separates the two systems
    robustly run after run.
    """
    samples = []
    for t, ratios in result.load_history:
        if t_lo <= t <= t_hi and len(ratios) >= 2:
            values = list(ratios.values())
            avg = sum(values) / len(values)
            if avg > 0.05:
                samples.append(max(values) / avg)
    return sum(samples) / len(samples) if samples else float("nan")


def test_bench_headline_60_percent(benchmark):
    """The paper's headline claim, via its mechanism.

    The paper reports Dynamoth sustaining ~60% more players than
    consistent hashing.  At our ~1/2 scale the *knee position* of a single
    run moves by +-15% with any perturbation (the macro simulation is
    chaotic), so the committed bench asserts the robust mechanism -- CH's
    busiest server runs far hotter relative to its average than
    Dynamoth's -- and reports the single-seed sustainable-player counts
    as informational output.  EXPERIMENTS.md discusses the measured range.
    """
    comparison = run_once(
        benchmark, lambda: HeadlineComparison(dynamoth_run(), hashing_run())
    )
    print()
    print(render_headline(comparison))

    dyn_imbalance = _imbalance(comparison.dynamoth)
    ch_imbalance = _imbalance(comparison.consistent_hashing)
    print(
        f"load imbalance (busiest/average LR, mid-ramp): "
        f"dynamoth={dyn_imbalance:.2f}  consistent-hashing={ch_imbalance:.2f}"
    )

    # the mechanism: Dynamoth keeps the busiest server close to the
    # average; consistent hashing leaves a pronounced hotspot
    assert dyn_imbalance < ch_imbalance
    assert dyn_imbalance < 1.6
    assert ch_imbalance > dyn_imbalance * 1.15

    benchmark.extra_info["dynamoth_players"] = comparison.dynamoth_max_players
    benchmark.extra_info["ch_players"] = comparison.ch_max_players
    benchmark.extra_info["improvement_single_seed"] = round(comparison.improvement, 3)
    benchmark.extra_info["dyn_imbalance"] = round(dyn_imbalance, 3)
    benchmark.extra_info["ch_imbalance"] = round(ch_imbalance, 3)
