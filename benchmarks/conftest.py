"""Shared benchmark configuration.

Every benchmark here regenerates one table/figure of the paper.  A "round"
is one full experiment, so everything runs with ``rounds=1`` -- the value
of these benches is the printed figure data and the recorded extra_info,
not sub-millisecond timing statistics.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from tests.helpers import run_once

__all__ = ["run_once"]


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`tests.helpers.run_once`."""

    def runner(fn):
        return run_once(benchmark, fn)

    return runner
