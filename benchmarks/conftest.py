"""Shared benchmark configuration.

Every benchmark here regenerates one table/figure of the paper.  A "round"
is one full experiment, so everything runs with ``rounds=1`` -- the value
of these benches is the printed figure data and the recorded extra_info,
not sub-millisecond timing statistics.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single round/iteration and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(fn):
        return run_once(benchmark, fn)

    return runner
