"""Figure 7 -- elasticity under a fluctuating player population.

Paper setup (Experiment 3): inject ~800 players step by step, remove 600,
then add back to almost 600; Dynamoth balancer with scale-up *and*
scale-down enabled.

Paper shapes:
* the server pool grows during the climbs and shrinks (with a delay --
  scale-down is lower priority) after the drop;
* high-load rebalances cause small short latency spikes, scale-down
  rebalances cause none.
"""

from benchmarks.conftest import run_once
from repro.experiments.experiment3 import ElasticityConfig, run_elasticity
from repro.experiments.report import render_figure7

BENCH_CONFIG = ElasticityConfig(
    tiles_per_side=8,
    peak1=360,
    trough=90,
    peak2=260,
    transition_s=90.0,
    plateau_s=90.0,
    nominal_egress_bps=620_000.0,
    max_servers=8,
    plan_entry_timeout_s=15.0,
)


def test_bench_fig7_elasticity(benchmark):
    result = run_once(benchmark, lambda: run_elasticity(BENCH_CONFIG))
    print()
    print(render_figure7(result))

    config = result.config
    # servers were rented during the first climb
    t_peak1_end = config.transition_s + config.plateau_s
    assert result.server_count_at(t_peak1_end) > config.initial_servers

    # ... and released after the drop (the paper notes "an observable
    # delay between the time when the load decreases and the servers are
    # removed")
    assert result.scaled_down()
    decommissions = [t for t, k, __ in result.balancer_events if k == "decommission"]
    drop_complete = 2 * config.transition_s + config.plateau_s
    peak1_end = config.transition_s + config.plateau_s
    # servers are only released once the population decline has begun
    assert decommissions and min(decommissions) > peak1_end

    # ... and rented again for the second climb
    peak2_time = 3 * config.transition_s + 2.5 * config.plateau_s
    trough_servers = min(
        int(v)
        for t, v in result.recorder.get("servers")
        if drop_complete + config.plateau_s * 0.5 <= t <= drop_complete + config.plateau_s
    )
    assert result.server_count_at(peak2_time) >= trough_servers

    # response time during the trough plateau is healthy
    trough_rt = result.response_times.window_mean(
        drop_complete + 20, drop_complete + config.plateau_s
    )
    assert trough_rt is not None and trough_rt < 0.150

    benchmark.extra_info["peak_servers"] = result.peak_server_count()
    benchmark.extra_info["decommissions"] = len(decommissions)
    benchmark.extra_info["rebalances"] = len(result.rebalance_times)
