"""Ablation: Algorithm 1's scheme choice vs the opposite scheme.

The paper motivates two replication schemes because each fits one overload
profile (section II-B).  This ablation forces each scheme onto each
workload and shows the cross-assignments fail:

* a publication-heavy channel (many publishers, one subscriber) under
  *all-publishers* still funnels the whole flow through every replica's
  single subscriber connection -- replication buys little;
* a subscriber-heavy channel (one publisher, many subscribers) under
  *all-subscribers* still makes every server deliver to every subscriber
  -- the fan-out work is not divided.
"""

from benchmarks.conftest import run_once
from repro.core.cluster import BALANCER_NONE, DynamothCluster
from repro.core.config import DynamothConfig
from repro.core.plan import ChannelMapping, ReplicationMode
from repro.experiments.experiment1 import (
    CHANNEL,
    fanin_broker_config,
    fanout_broker_config,
)
from repro.experiments.report import table
from repro.workload.microbench import FanInWorkload, FanOutWorkload


def run_point(workload_kind, mode, seed=0):
    """One (workload, scheme) cell of the ablation matrix."""
    broker = fanout_broker_config() if workload_kind == "fanout" else fanin_broker_config()
    cluster = DynamothCluster(
        seed=seed,
        config=DynamothConfig(max_servers=3, min_servers=3),
        broker_config=broker,
        initial_servers=3,
        balancer=BALANCER_NONE,
    )
    servers = tuple(sorted(cluster.servers))
    if mode is ReplicationMode.SINGLE:
        mapping = ChannelMapping(mode, (cluster.plan.ring.lookup(CHANNEL),))
    else:
        mapping = ChannelMapping(mode, servers)
    cluster.set_static_mapping(CHANNEL, mapping)

    if workload_kind == "fanout":
        workload = FanOutWorkload(cluster, CHANNEL, n_subscribers=700)
    else:
        workload = FanInWorkload(cluster, CHANNEL, n_publishers=500)
    cluster.run_until(1.0)
    workload.start(measure_from=6.0)
    cluster.run_until(16.0)
    workload.stop()
    cluster.run_for(0.5)

    latencies = workload.collector.latencies()
    mean = sum(latencies) / len(latencies) if latencies else float("inf")
    if workload_kind == "fanout":
        expected = workload.published_measured * 700
        rate = min(1.0, len(latencies) / expected) if expected else 1.0
    else:
        rate = workload.delivery_rate()
    return mean, rate


def test_bench_ablation_scheme_choice(benchmark):
    def run_matrix():
        results = {}
        for workload in ("fanout", "fanin"):
            for mode in (
                ReplicationMode.SINGLE,
                ReplicationMode.ALL_PUBLISHERS,
                ReplicationMode.ALL_SUBSCRIBERS,
            ):
                results[(workload, mode)] = run_point(workload, mode)
        return results

    results = run_once(benchmark, run_matrix)

    rows = []
    for (workload, mode), (mean, rate) in results.items():
        rows.append([workload, mode.value, f"{mean * 1000:.1f}", f"{rate:.2f}"])
    print()
    print("Ablation -- replication scheme vs workload profile")
    print(table(["workload", "scheme", "mean ms", "delivery"], rows))

    # fan-out (700 subscribers): all-publishers is the right scheme
    fo_right = results[("fanout", ReplicationMode.ALL_PUBLISHERS)]
    fo_wrong = results[("fanout", ReplicationMode.ALL_SUBSCRIBERS)]
    fo_none = results[("fanout", ReplicationMode.SINGLE)]
    assert fo_right[0] < 0.25
    # The wrong scheme serializes each publication's whole fan-out on one
    # server (all-publishers splits it 3 ways in parallel), costing a
    # clear latency premium even when throughput still fits.
    assert fo_wrong[0] > 1.5 * fo_right[0]
    assert fo_none[0] > 2 * fo_right[0]

    # fan-in (500 publishers): all-subscribers is the right scheme
    fi_right = results[("fanin", ReplicationMode.ALL_SUBSCRIBERS)]
    fi_wrong = results[("fanin", ReplicationMode.ALL_PUBLISHERS)]
    fi_none = results[("fanin", ReplicationMode.SINGLE)]
    assert fi_right[1] > 0.99
    assert fi_wrong[1] < 0.95  # every replica still floods the one subscriber
    assert fi_none[1] < 0.95

    benchmark.extra_info["matrix"] = {
        f"{w}/{m.value}": [round(mean * 1000, 1), round(rate, 3)]
        for (w, m), (mean, rate) in results.items()
    }
