"""Figure 6 -- pub/sub server load ratios under the Dynamoth balancer.

Paper shapes: the balancer keeps the *average* load ratio below 1 until
the system as a whole saturates, and the *busiest* server's ratio below 1
for most of the experiment; rebalance points coincide with load peaks.

Reuses the cached Experiment 2 Dynamoth run from ``test_bench_fig5``.
"""

from benchmarks.conftest import run_once
from benchmarks.test_bench_fig5 import BENCH_CONFIG, dynamoth_run
from repro.experiments.report import render_figure6


def test_bench_fig6_load_ratios(benchmark):
    result = run_once(benchmark, dynamoth_run)
    print()
    print(render_figure6(result))

    series = result.load_ratio_series()
    assert series, "load history must be recorded"

    sustainable = result.max_sustainable_players()
    pop_at = dict((int(t), v) for t, v in result.population_series())

    # While the system was comfortably below its sustainable population,
    # the average LR stayed in the safe band (paper: "maintain the average
    # load below 1 until the system as a whole becomes overloaded").  The
    # last ~20% before the knee is the congestion ramp, where the paper's
    # own curves already brush 1.
    pre_saturation = [
        (t, avg, busy)
        for t, avg, busy in series
        if pop_at.get(int(t), 0) < 0.8 * sustainable and t > 30
    ]
    assert pre_saturation
    avg_values = [avg for __, avg, __b in pre_saturation]
    assert sum(avg_values) / len(avg_values) < 1.0

    # The busiest server is kept below the failure regime (LR ~1.15) for
    # most of the pre-saturation run (the paper: "maintain the load ratio
    # of the busiest server below 1 for most of the experiment"; brief
    # excursions around rebalance points are expected).
    busy_ok = sum(1 for __, __a, busy in pre_saturation if busy < 1.15)
    assert busy_ok / len(pre_saturation) > 0.80
    busy_safe = sum(1 for __, __a, busy in pre_saturation if busy < 1.0)
    assert busy_safe / len(pre_saturation) > 0.50

    benchmark.extra_info["mean_avg_lr_pre_saturation"] = round(
        sum(avg_values) / len(avg_values), 3
    )
    benchmark.extra_info["rebalances"] = len(result.rebalance_times)
