"""Figure 4b -- "all subscribers" channel replication micro-benchmark.

Paper setup: one channel, one subscriber, 100..800 publishers at 10 msg/s
each; non-replicated vs 3-server all-subscribers replication.

Paper shape: without replication, delivery fails past ~200 publishers --
the subscriber's output buffer overflows and Redis kills the connection;
with 3-server replication each connection carries a third of the flow and
the system survives to nearly 600 publishers.
"""

from benchmarks.conftest import run_once
from repro.experiments.experiment1 import DEFAULT_LEVELS, run_fig4b
from repro.experiments.report import render_figure4


def test_bench_fig4b(benchmark):
    result = run_once(benchmark, lambda: run_fig4b(DEFAULT_LEVELS, measure_s=10.0))
    print()
    print(render_figure4(result, "Figure 4b -- all-subscribers replication"))

    non_rep = {p.clients: p for p in result.series(False)}
    rep = {p.clients: p for p in result.series(True)}

    # paper shape 1: both fine at 100 publishers
    assert non_rep[100].delivery_rate > 0.99
    assert rep[100].delivery_rate > 0.99
    # paper shape 2: non-replicated delivery fails past ~200 publishers
    assert non_rep[300].delivery_rate < 0.95
    assert non_rep[300].killed_connections >= 1
    assert non_rep[800].delivery_rate < 0.7
    # paper shape 3: replication survives to ~600
    assert rep[500].delivery_rate > 0.99
    assert rep[500].killed_connections == 0
    # paper shape 4: replication too has a (3x higher) limit
    assert rep[800].delivery_rate < 1.0 or rep[800].mean_latency_s > 0.3

    benchmark.extra_info["non_replicated_delivery"] = {
        n: round(p.delivery_rate, 3) for n, p in non_rep.items()
    }
    benchmark.extra_info["replicated_delivery"] = {
        n: round(p.delivery_rate, 3) for n, p in rep.items()
    }
