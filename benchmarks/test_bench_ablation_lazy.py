"""Ablation: lazy plan propagation vs eager broadcast-to-all-clients.

The paper's design argument (section IV): "sending a new global plan to
all clients at reconfiguration time would create a huge message overhead.
Furthermore ... individual clients are likely only interested in a few of
these channels".  This ablation runs the same rebalancing-heavy RGame
workload under both propagation policies and compares the control-message
overhead: lazy notifies only the clients that actually touch a moved
channel; eager notifies everyone about everything.
"""

from benchmarks.conftest import run_once
from repro.core.cluster import BALANCER_DYNAMOTH, DynamothCluster
from repro.core.config import DynamothConfig
from repro.broker.config import BrokerConfig
from repro.experiments.records import BucketedStat
from repro.experiments.report import table
from repro.workload.rgame import RGameConfig, RGameWorkload


def run_policy(eager: bool, seed: int = 0):
    config = DynamothConfig(
        max_servers=6,
        min_servers=1,
        t_wait_s=8.0,
        spawn_delay_s=4.0,
        eager_plan_push=eager,
    )
    broker = BrokerConfig(nominal_egress_bps=240_000.0, per_connection_bps=None)
    cluster = DynamothCluster(
        seed=seed, config=config, broker_config=broker, initial_servers=1
    )
    rtt = BucketedStat()
    workload = RGameWorkload(
        cluster,
        RGameConfig(tiles_per_side=6),
        rtt_sink=lambda v, t: rtt.add(t, v),
    )
    for __ in range(5):
        workload.add_players(30)
        cluster.run_for(25.0)
    cluster.run_for(50.0)

    lazy_notices = sum(d.redirects_sent for d in cluster.dispatchers.values())
    switch_notices = sum(d.switch_notices_sent for d in cluster.dispatchers.values())
    eager_notices = cluster.balancer.eager_notices_sent
    steady_rt = rtt.window_mean(cluster.sim.now - 40, cluster.sim.now)
    return {
        "rebalances": len(cluster.balancer.rebalance_times()),
        "lazy_notices": lazy_notices,
        "switch_notices": switch_notices,
        "eager_notices": eager_notices,
        "control_total": lazy_notices + switch_notices + eager_notices,
        "steady_rt_ms": steady_rt * 1000 if steady_rt else None,
        "population": workload.population,
    }


def test_bench_ablation_lazy_vs_eager(benchmark):
    def run_both():
        return run_policy(eager=False), run_policy(eager=True)

    lazy, eager = run_once(benchmark, run_both)

    rows = [
        ["lazy (paper)", lazy["rebalances"], lazy["control_total"],
         lazy["eager_notices"], f"{lazy['steady_rt_ms']:.0f}"],
        ["eager (strawman)", eager["rebalances"], eager["control_total"],
         eager["eager_notices"], f"{eager['steady_rt_ms']:.0f}"],
    ]
    print()
    print("Ablation -- plan propagation policy (150 players, same workload)")
    print(table(
        ["policy", "rebalances", "control msgs", "broadcasts", "steady rt ms"], rows
    ))

    # Both policies keep the system functional (the 150-player scenario
    # deliberately runs warm, so steady state sits near the bound)...
    assert lazy["steady_rt_ms"] < 250
    assert eager["steady_rt_ms"] < 250
    # ...but eager pays a pure broadcast overhead for the same outcome:
    # every client is notified of every change, relevant to it or not.
    assert eager["eager_notices"] > 1000
    assert eager["control_total"] > lazy["control_total"] + 1000
    # and lazy sends no broadcasts at all
    assert lazy["eager_notices"] == 0

    benchmark.extra_info["lazy_control_msgs"] = lazy["control_total"]
    benchmark.extra_info["eager_control_msgs"] = eager["control_total"]
