"""Ablation: CPU-aware load balancing (the paper's future-work extension).

The paper's balancer watches only egress bandwidth, because on their
hardware "the outgoing bandwidth of the pub/sub servers got saturated much
more quickly than the CPU".  On cloud VMs with skinny virtual CPUs that
assumption flips; the paper's future work proposes "integrat[ing] CPU load
into our load balancing algorithms".

This benchmark builds a CPU-bound cluster (fast NIC, slow per-delivery
processing) and runs the identical workload with the extension off and on:

* blind (paper default): the NIC looks idle, no rebalancing happens, one
  core saturates, latency explodes;
* CPU-aware: load ratios take ``max(egress ratio, cpu utilization)``, the
  hot channels are spread, latency stays low.
"""

from benchmarks.conftest import run_once
from repro.broker.config import BrokerConfig
from repro.core.cluster import DynamothCluster
from repro.core.config import DynamothConfig
from repro.experiments.records import BucketedStat
from repro.experiments.report import table
from repro.sim.timers import PeriodicTask


def run_policy(cpu_aware: bool, seed: int = 4):
    config = DynamothConfig(
        max_servers=4,
        min_servers=2,
        t_wait_s=5.0,
        spawn_delay_s=2.0,
        cpu_aware_balancing=cpu_aware,
        subscriber_threshold=10_000.0,
        publication_threshold=1e9,
    )
    broker = BrokerConfig(
        nominal_egress_bps=50_000_000.0,
        cpu_per_delivery_s=400e-6,
        cpu_per_publish_s=100e-6,
        per_connection_bps=None,
    )
    cluster = DynamothCluster(
        seed=seed, config=config, broker_config=broker, initial_servers=2
    )
    rtt = BucketedStat()
    home = cluster.plan.ring.lookup("cpu0")
    second = next(
        f"cpu{i}" for i in range(1, 200) if cluster.plan.ring.lookup(f"cpu{i}") == home
    )
    for prefix, channel in (("w0", "cpu0"), ("w1", second)):
        for i in range(15):
            s = cluster.create_client(f"{prefix}-s{i}")
            s.subscribe(channel, lambda *a: None)
        pub = cluster.create_client(f"{prefix}-pub")
        pub.on_response_time = lambda ch, value, now: rtt.add(now, value)
        pub.subscribe(channel, lambda *a: None)
        task = PeriodicTask(
            cluster.sim, 0.01, lambda now, p=pub, c=channel: p.publish(c, "x", 50)
        )
        task.start()
    cluster.run_until(60.0)
    lb = cluster.balancer
    cpus = {s: lb.view.cpu_utilization(s) for s in lb.active_servers}
    steady = rtt.window_mean(40, 60)
    return {
        "plan_version": lb.plan.version,
        "max_cpu": max(cpus.values()),
        "steady_rt_ms": steady * 1000 if steady else float("inf"),
    }


def test_bench_ablation_cpu_aware(benchmark):
    blind, aware = run_once(
        benchmark, lambda: (run_policy(False), run_policy(True))
    )

    rows = [
        ["blind (paper default)", blind["plan_version"],
         f"{blind['max_cpu']:.2f}", f"{blind['steady_rt_ms']:.0f}"],
        ["cpu-aware (extension)", aware["plan_version"],
         f"{aware['max_cpu']:.2f}", f"{aware['steady_rt_ms']:.0f}"],
    ]
    print()
    print("Ablation -- CPU-aware balancing on a CPU-bound cluster")
    print(table(["policy", "plan version", "max cpu util", "steady rt ms"], rows))

    assert blind["plan_version"] == 0          # NIC-only view: no action
    assert blind["max_cpu"] > 1.0              # a core saturates
    assert aware["plan_version"] > 0           # extension reacts
    assert aware["max_cpu"] < 1.0              # load spread below a core
    assert aware["steady_rt_ms"] < blind["steady_rt_ms"] / 3

    benchmark.extra_info["blind_rt_ms"] = round(blind["steady_rt_ms"], 1)
    benchmark.extra_info["aware_rt_ms"] = round(aware["steady_rt_ms"], 1)
