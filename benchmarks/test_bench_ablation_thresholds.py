"""Ablation: sensitivity to the LR^high / LR^safe thresholds.

DESIGN.md calls out the load-ratio thresholds as the pivotal tuning knobs
of Algorithm 2.  This sweep runs the same overload scenario under three
threshold pairs:

* *eager* (low thresholds) rebalances early -- fewest overload seconds but
  the most plan churn;
* *paper-like* defaults balance the two;
* *complacent* (thresholds near the failure point) tolerates sustained
  overload before reacting.
"""

from benchmarks.conftest import run_once
from repro.broker.config import BrokerConfig
from repro.core.cluster import BALANCER_DYNAMOTH, DynamothCluster
from repro.core.config import DynamothConfig
from repro.experiments.records import BucketedStat
from repro.experiments.report import table
from repro.workload.rgame import RGameConfig, RGameWorkload

SETTINGS = {
    "eager": dict(lr_high=0.70, lr_safe=0.55),
    "paper-like": dict(lr_high=0.95, lr_safe=0.80),
    "complacent": dict(lr_high=1.12, lr_safe=1.00),
}


def run_setting(name: str, seed: int = 0):
    thresholds = SETTINGS[name]
    config = DynamothConfig(
        max_servers=6,
        min_servers=1,
        t_wait_s=8.0,
        spawn_delay_s=4.0,
        lr_low=0.3,
        lr_low_target=0.5,
        **thresholds,
    )
    broker = BrokerConfig(nominal_egress_bps=240_000.0, per_connection_bps=None)
    cluster = DynamothCluster(
        seed=seed, config=config, broker_config=broker, initial_servers=1
    )
    rtt = BucketedStat()
    workload = RGameWorkload(
        cluster, RGameConfig(tiles_per_side=6), rtt_sink=lambda v, t: rtt.add(t, v)
    )
    for __ in range(5):
        workload.add_players(30)
        cluster.run_for(25.0)
    cluster.run_for(50.0)

    lb = cluster.balancer
    overload_seconds = sum(
        1 for __, ratios in lb.load_history if ratios and max(ratios.values()) > 1.0
    )
    steady = rtt.window_mean(cluster.sim.now - 40, cluster.sim.now)
    return {
        "rebalances": len(lb.rebalance_times()),
        "servers": cluster.server_count,
        "overload_seconds": overload_seconds,
        "steady_rt_ms": steady * 1000 if steady else float("nan"),
    }


def test_bench_ablation_lr_thresholds(benchmark):
    results = run_once(
        benchmark, lambda: {name: run_setting(name) for name in SETTINGS}
    )

    rows = [
        [name, r["rebalances"], r["servers"], r["overload_seconds"],
         f"{r['steady_rt_ms']:.0f}"]
        for name, r in results.items()
    ]
    print()
    print("Ablation -- LR^high / LR^safe sensitivity (150 players)")
    print(table(
        ["setting", "rebalances", "servers", "overloaded s", "steady rt ms"], rows
    ))

    eager, paper, complacent = (
        results["eager"], results["paper-like"], results["complacent"]
    )
    # eager reacts earliest: overload time no worse than complacent's
    assert eager["overload_seconds"] <= complacent["overload_seconds"]
    # complacent tolerates the most sustained overload
    assert complacent["overload_seconds"] >= paper["overload_seconds"]
    # eager and paper-like settings deliver a near-playable steady state;
    # complacent saves servers/rebalances but lets latency degrade badly --
    # running thresholds at the failure regime (LR^high ~ 1.12, where the
    # paper observed Redis *fails*) is exactly what the safety margin of
    # the defaults buys protection from.
    assert eager["steady_rt_ms"] < 250
    assert paper["steady_rt_ms"] < 250
    assert complacent["steady_rt_ms"] >= paper["steady_rt_ms"]
    assert complacent["servers"] <= eager["servers"]

    benchmark.extra_info["results"] = {
        k: {m: round(v, 1) for m, v in r.items()} for k, r in results.items()
    }
