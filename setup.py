"""Legacy setup shim: lets ``pip install -e .`` work offline (no wheel)."""

from setuptools import setup

setup()
