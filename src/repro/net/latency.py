"""One-way network latency models.

The paper injects WAN delays by sampling the King dataset [14] (millions of
measured DNS-server-to-DNS-server RTTs), filtered to North America.  We do
not have the dataset, so :class:`KingLatencyModel` is a synthetic equivalent:
a log-normal one-way delay whose median and spread are fit to the published
King North-America statistics (median RTT around 65 ms with a long right
tail).  Only the *distribution shape* matters to the experiments -- delays
are added on the client<->cloud path after all queuing, so any sampler with
the same median/tail exercises the identical code path.
"""

from __future__ import annotations

import math
from random import Random
from typing import Protocol


class LatencyModel(Protocol):
    """Anything that can sample a one-way delay in seconds.

    A model whose samples are constant may additionally expose a
    ``fixed_delay`` attribute holding that constant; the transport then
    skips per-message sampling (and the RNG) for pairs using it.  Leave it
    unset -- or set it to ``None`` -- for stochastic models.
    """

    def sample(self, rng: Random) -> float:
        """Return a one-way propagation delay in seconds."""
        ...


class FixedLatency:
    """A constant one-way delay.  Useful in unit tests."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative latency: {delay!r}")
        self.delay = delay
        self.fixed_delay = delay

    def sample(self, rng: Random) -> float:
        return self.delay


class UniformLatency:
    """Uniformly distributed one-way delay in ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid latency range: [{low!r}, {high!r}]")
        self.low = low
        self.high = high
        self.fixed_delay = low if low == high else None

    def sample(self, rng: Random) -> float:
        return rng.uniform(self.low, self.high)


class LanLatency:
    """Intra-cloud LAN delay: a small base with mild jitter.

    Defaults give ~0.3-0.7 ms one-way, typical of machines in one LAN /
    availability zone.
    """

    def __init__(self, base: float = 0.0003, jitter: float = 0.0004) -> None:
        if base < 0 or jitter < 0:
            raise ValueError("LAN latency parameters must be non-negative")
        self.base = base
        self.jitter = jitter
        self.fixed_delay = base if jitter == 0 else None

    def sample(self, rng: Random) -> float:
        return self.base + rng.random() * self.jitter


class KingLatencyModel:
    """Synthetic King-dataset stand-in: log-normal one-way WAN delay.

    Parameters are expressed in intuitive units:

    ``median``
        Median one-way delay in seconds.  The King North-America subset has
        a median RTT of roughly 65 ms, i.e. ~32.5 ms one-way.
    ``sigma``
        Shape parameter of the underlying normal; 0.55 yields a tail where
        ~5% of samples exceed about 2.5x the median, matching the heavy
        tail reported for King.
    ``floor`` / ``ceiling``
        Hard clamps.  The ceiling models the paper's practical cutoff --
        grossly delayed packets would be retransmitted / ignored by a game.
    """

    def __init__(
        self,
        median: float = 0.0325,
        sigma: float = 0.55,
        floor: float = 0.002,
        ceiling: float = 0.400,
    ) -> None:
        if median <= 0:
            raise ValueError(f"median must be positive: {median!r}")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive: {sigma!r}")
        if floor < 0 or ceiling <= floor:
            raise ValueError(f"invalid clamp range: [{floor!r}, {ceiling!r}]")
        self.median = median
        self.sigma = sigma
        self.floor = floor
        self.ceiling = ceiling
        self._mu = math.log(median)

    def sample(self, rng: Random) -> float:
        value = rng.lognormvariate(self._mu, self.sigma)
        if value < self.floor:
            return self.floor
        if value > self.ceiling:
            return self.ceiling
        return value

    def mean(self) -> float:
        """Analytic mean of the *unclamped* distribution (diagnostic)."""
        return math.exp(self._mu + self.sigma**2 / 2.0)
