"""Network substrate: latency models, bandwidth-limited links, transport.

This package emulates the paper's experimental network (section V-B):

* Clients reach the cloud over a WAN whose one-way delays are sampled from a
  synthetic model fit to the King dataset's North-America subset
  (:class:`~repro.net.latency.KingLatencyModel`).
* Infrastructure nodes (pub/sub servers, dispatchers, LLAs, the load
  balancer) talk to each other over a low-latency cloud LAN.
* Every infrastructure node has a bandwidth-limited egress NIC
  (:class:`~repro.net.link.EgressPort`); the paper's key observation is
  that *outgoing bandwidth saturates before CPU*, so egress is modelled
  carefully: messages queue FIFO and drain at the port's capacity, and the
  per-second egress byte counts feed the Local Load Analyzers.
"""

from repro.net.latency import (
    FixedLatency,
    KingLatencyModel,
    LanLatency,
    LatencyModel,
    UniformLatency,
)
from repro.net.link import EgressPort, SecondBuckets
from repro.net.transport import Transport

__all__ = [
    "EgressPort",
    "FixedLatency",
    "KingLatencyModel",
    "LanLatency",
    "LatencyModel",
    "SecondBuckets",
    "Transport",
    "UniformLatency",
]
