"""Message transport between actors.

:class:`Transport` is the glue between the actor layer and the network
model.  Sending a message involves, in order:

1. queuing on the sender's :class:`~repro.net.link.EgressPort` (transmission
   delay = backlog + size/capacity);
2. one-way propagation delay sampled from the LAN model (both endpoints are
   infrastructure) or the WAN model (one endpoint is a client), mirroring
   the paper's latency-injection rules in section V-B;
3. delivery via ``dst.receive(message, src_id)`` -- unless the destination
   has shut down in the meantime, in which case the message is dropped and
   counted.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Protocol, Tuple

from repro.net.latency import KingLatencyModel, LanLatency, LatencyModel
from repro.net.link import EgressPort
from repro.sim.actor import Actor
from repro.sim.kernel import Simulator


class FaultPlane(Protocol):
    """Per-message verdict hook for injected network faults.

    :meth:`apply` returns extra one-way delay in seconds (0.0 for a healthy
    link), or ``None`` when the message is lost (partitioned link, or a
    sampled loss event).  Implementations must draw randomness only from
    their own RNG stream so installing a plane with no active faults leaves
    the simulation byte-identical.
    """

    def apply(self, src_id: str, dst_id: str) -> Optional[float]: ...


class Transport:
    """Routes messages between registered actors with realistic delays."""

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        lan_model: Optional[LatencyModel] = None,
        wan_model: Optional[LatencyModel] = None,
    ):
        self.sim = sim
        self._rng = rng
        self.lan_model: LatencyModel = lan_model if lan_model is not None else LanLatency()
        self.wan_model: LatencyModel = wan_model if wan_model is not None else KingLatencyModel()
        self._actors: Dict[str, Actor] = {}
        self._ports: Dict[str, EgressPort] = {}
        #: per (src -> dst) last scheduled delivery time, enforcing the
        #: FIFO ordering a TCP connection provides.  Without it, two
        #: messages on the same logical connection could reorder (each
        #: samples its own propagation delay), which breaks protocols
        #: that rely on in-order SUBSCRIBE/UNSUBSCRIBE processing.
        self._fifo: Dict[str, Dict[str, float]] = {}
        self.messages_sent: int = 0
        self.messages_dropped: int = 0
        #: optional network fault plane (installed by
        #: :class:`repro.faults.FaultInjector`).  Consulted per message:
        #: may drop it (partition, loss) or add delay (jitter).  ``None``
        #: -- the default -- costs one attribute check per send, and the
        #: plane draws from its own RNG stream, so fault-free runs are
        #: byte-identical with or without it installed.
        self.fault_plane: Optional["FaultPlane"] = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, actor: Actor, egress_capacity_bps: Optional[float] = None) -> EgressPort:
        """Attach ``actor`` to the network.

        ``egress_capacity_bps`` is the actual NIC drain rate; ``None`` means
        unlimited (appropriate for client nodes).
        """
        if actor.node_id in self._actors:
            raise ValueError(f"duplicate node id: {actor.node_id}")
        port = EgressPort(egress_capacity_bps)
        self._actors[actor.node_id] = actor
        self._ports[actor.node_id] = port
        actor.transport = self
        return port

    def unregister(self, node_id: str) -> None:
        """Detach a node; in-flight messages to it are dropped on arrival."""
        actor = self._actors.pop(node_id, None)
        self._ports.pop(node_id, None)
        self._fifo.pop(node_id, None)
        for lane in self._fifo.values():
            lane.pop(node_id, None)
        if actor is not None:
            actor.transport = None

    def actor(self, node_id: str) -> Optional[Actor]:
        return self._actors.get(node_id)

    def port(self, node_id: str) -> Optional[EgressPort]:
        return self._ports.get(node_id)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        src_id: str,
        dst_id: str,
        message: Any,
        size_bytes: int,
        *,
        min_completion: float = 0.0,
        fifo: bool = True,
    ) -> Tuple[float, float]:
        """Send ``message`` from ``src_id`` to ``dst_id``.

        ``min_completion`` lets callers impose an additional completion
        floor, used by the pub/sub server to model per-connection drain
        ceilings on top of the shared NIC.

        ``fifo=False`` lets a message overtake the connection's queued
        stream -- used for out-of-band connection teardown (a TCP RST is
        not queued behind the data the peer will never read).

        Returns ``(transmit_completion, delivery_time)`` so callers that
        model higher-level buffers (the pub/sub server's per-connection
        output buffers) can account for queued bytes.
        """
        src = self._actors.get(src_id)
        if src is None:
            raise KeyError(f"unknown sender: {src_id}")
        port = self._ports[src_id]
        now = self.sim.now
        completion = port.transmit(now, size_bytes)
        if min_completion > completion:
            completion = min_completion

        plane = self.fault_plane
        if plane is not None:
            extra = plane.apply(src_id, dst_id)
            if extra is None:
                # Lost in the network: the bytes still occupied the NIC.
                self.messages_dropped += 1
                return completion, completion
        else:
            extra = 0.0

        dst = self._actors.get(dst_id)
        if dst is None or not dst.alive:
            # Destination already gone: the bytes still occupied the NIC,
            # but nothing arrives.
            self.messages_dropped += 1
            return completion, completion

        latency = self._sample_latency(src, dst)
        delivery_time = completion + latency + extra
        if fifo:
            lane = self._fifo.setdefault(src_id, {})
            earlier = lane.get(dst_id, 0.0)
            if delivery_time < earlier:
                delivery_time = earlier  # FIFO: never overtake the connection
            lane[dst_id] = delivery_time
        self.sim.schedule_at(delivery_time, self._deliver, dst_id, message, src_id)
        self.messages_sent += 1
        return completion, delivery_time

    def _sample_latency(self, src: Actor, dst: Actor) -> float:
        if src.node_id == dst.node_id:
            return 0.0
        if src.is_infra and dst.is_infra:
            return self.lan_model.sample(self._rng)
        # Client <-> infrastructure: one WAN sample per direction, exactly
        # as the paper injects King samples.  (Client <-> client direct
        # messages do not occur in Dynamoth's two-hop architecture.)
        return self.wan_model.sample(self._rng)

    def _deliver(self, dst_id: str, message: Any, src_id: str) -> None:
        dst = self._actors.get(dst_id)
        if dst is None or not dst.alive:
            self.messages_dropped += 1
            return
        dst.receive(message, src_id)
