"""Message transport between actors.

:class:`Transport` is the glue between the actor layer and the network
model.  Sending a message involves, in order:

1. queuing on the sender's :class:`~repro.net.link.EgressPort` (transmission
   delay = backlog + size/capacity);
2. one-way propagation delay sampled from the LAN model (both endpoints are
   infrastructure) or the WAN model (one endpoint is a client), mirroring
   the paper's latency-injection rules in section V-B;
3. delivery via ``dst.receive(message, src_id)`` -- unless the destination
   has shut down in the meantime, in which case the message is dropped and
   counted.

Hot-path notes: all per-connection state lives in one flat table keyed by
``(src, dst)`` tuples -- the resolved destination actor, which latency
model the pair uses (it never changes while both endpoints stay
registered), the model's constant sample when it declares a
``fixed_delay`` (constant models never touch the RNG), and the FIFO clamp.
One dict lookup per message covers all four.  :meth:`send_many` is the
bulk fan-out API: it computes the NIC drain incrementally, samples
propagation once per *leg* (latency model) per batch, and schedules all
deliveries through the kernel's pooled batch interface.
"""

from __future__ import annotations

from random import Random
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.net.latency import KingLatencyModel, LanLatency, LatencyModel
from repro.net.link import EgressPort
from repro.sim.actor import Actor
from repro.sim.kernel import Simulator

# Indices into a per-pair state list (a mutable list rather than a small
# object: one allocation per pair for the lifetime of the pair).
_P_DST = 0  # resolved destination Actor
_P_MODEL = 1  # LatencyModel, or None for loopback
_P_FIXED = 2  # constant sample when the model declares one, else None
_P_FIFO = 3  # last scheduled delivery time on this connection


class FaultPlane(Protocol):
    """Per-message verdict hook for injected network faults.

    :meth:`apply` returns extra one-way delay in seconds (0.0 for a healthy
    link), or ``None`` when the message is lost (partitioned link, or a
    sampled loss event).  Implementations must draw randomness only from
    their own RNG stream so installing a plane with no active faults leaves
    the simulation byte-identical.
    """

    def apply(self, src_id: str, dst_id: str) -> Optional[float]: ...


class Transport:
    """Routes messages between registered actors with realistic delays."""

    def __init__(
        self,
        sim: Simulator,
        rng: Random,
        lan_model: Optional[LatencyModel] = None,
        wan_model: Optional[LatencyModel] = None,
    ) -> None:
        self.sim = sim
        self._rng = rng
        self.lan_model: LatencyModel = lan_model if lan_model is not None else LanLatency()
        self.wan_model: LatencyModel = wan_model if wan_model is not None else KingLatencyModel()
        self._actors: Dict[str, Actor] = {}
        self._ports: Dict[str, EgressPort] = {}
        #: per (src, dst) connection state: ``[dst_actor, model,
        #: fixed_delay, fifo_time]``.  The FIFO clamp enforces the ordering
        #: a TCP connection provides -- without it, two messages on the
        #: same logical connection could reorder (each samples its own
        #: propagation delay), breaking protocols that rely on in-order
        #: SUBSCRIBE/UNSUBSCRIBE processing.  Model choice and actor
        #: resolution depend only on registration-time facts, so entries
        #: stay valid until either endpoint unregisters (which prunes
        #: them).
        self._pairs: Dict[Tuple[str, str], List[Any]] = {}
        #: bumped on every :meth:`unregister` -- the only operation that
        #: prunes pair states.  Callers that hold resolved state refs
        #: across calls (the broker's per-channel subscriber arrays)
        #: compare this against the epoch they captured at build time and
        #: rebuild when it moved, so they can never fan out along a
        #: pruned entry.
        self.pair_epoch: int = 0
        self.messages_sent: int = 0
        self.messages_dropped: int = 0
        #: optional network fault plane (installed by
        #: :class:`repro.faults.FaultInjector`).  Consulted per message:
        #: may drop it (partition, loss) or add delay (jitter).  ``None``
        #: -- the default -- costs one attribute check per send, and the
        #: plane draws from its own RNG stream, so fault-free runs are
        #: byte-identical with or without it installed.
        self.fault_plane: Optional["FaultPlane"] = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, actor: Actor, egress_capacity_bps: Optional[float] = None) -> EgressPort:
        """Attach ``actor`` to the network.

        ``egress_capacity_bps`` is the actual NIC drain rate; ``None`` means
        unlimited (appropriate for client nodes).
        """
        if actor.node_id in self._actors:
            raise ValueError(f"duplicate node id: {actor.node_id}")
        port = EgressPort(egress_capacity_bps)
        self._actors[actor.node_id] = actor
        self._ports[actor.node_id] = port
        actor.transport = self
        return port

    def unregister(self, node_id: str) -> None:
        """Detach a node; in-flight messages to it are dropped on arrival.

        All per-pair connection state touching the node is pruned so long
        churny runs do not leak an entry per (departed node, peer) pair --
        and so a later re-registration under the same id starts from a
        clean slate instead of inheriting cached routing state.
        """
        actor = self._actors.pop(node_id, None)
        self._ports.pop(node_id, None)
        stale = [key for key in self._pairs if key[0] == node_id or key[1] == node_id]
        for key in stale:
            del self._pairs[key]
        self.pair_epoch += 1
        if actor is not None:
            actor.transport = None

    def actor(self, node_id: str) -> Optional[Actor]:
        return self._actors.get(node_id)

    def port(self, node_id: str) -> Optional[EgressPort]:
        return self._ports.get(node_id)

    def pair_state_count(self) -> int:
        """Entries in the per-pair connection table (leak diagnostics)."""
        return len(self._pairs)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    # repro: scope[hot]
    def send(
        self,
        src_id: str,
        dst_id: str,
        message: Any,
        size_bytes: int,
        *,
        min_completion: float = 0.0,
        fifo: bool = True,
    ) -> Tuple[float, float]:
        """Send ``message`` from ``src_id`` to ``dst_id``.

        ``min_completion`` lets callers impose an additional completion
        floor, used by the pub/sub server to model per-connection drain
        ceilings on top of the shared NIC.

        ``fifo=False`` lets a message overtake the connection's queued
        stream -- used for out-of-band connection teardown (a TCP RST is
        not queued behind the data the peer will never read).

        Returns ``(transmit_completion, delivery_time)`` so callers that
        model higher-level buffers (the pub/sub server's per-connection
        output buffers) can account for queued bytes.
        """
        if src_id not in self._actors:
            raise KeyError(f"unknown sender: {src_id}")
        port = self._ports[src_id]
        now = self.sim.now
        completion = port.transmit(now, size_bytes)
        if min_completion > completion:
            completion = min_completion

        plane = self.fault_plane
        if plane is not None:
            extra = plane.apply(src_id, dst_id)
            if extra is None:
                # Lost in the network: the bytes still occupied the NIC.
                self.messages_dropped += 1
                return completion, completion
        else:
            extra = 0.0

        key = (src_id, dst_id)
        state = self._pairs.get(key)
        if state is None:
            state = self._classify_pair(key)
        if state is None or not state[_P_DST].alive:
            # Destination already gone: the bytes still occupied the NIC,
            # but nothing arrives.
            self.messages_dropped += 1
            return completion, completion

        fixed = state[_P_FIXED]
        if fixed is not None:
            latency = fixed
        else:
            latency = state[_P_MODEL].sample(self._rng)
        delivery_time = completion + latency + extra
        if fifo:
            if delivery_time < state[_P_FIFO]:
                delivery_time = state[_P_FIFO]  # FIFO: never overtake
            state[_P_FIFO] = delivery_time
        self.sim.schedule_at(delivery_time, self._deliver, dst_id, message, src_id)
        self.messages_sent += 1
        return completion, delivery_time

    # repro: scope[hot]
    def send_many(
        self,
        src_id: str,
        dst_ids: Sequence[str],
        message: Any,
        size_bytes: int,
        *,
        min_completions: Optional[Sequence[float]] = None,
    ) -> List[float]:
        """Fan one ``message`` out to many destinations in a single batch.

        The shared NIC is charged incrementally -- equivalent to sending
        the messages back to back -- and propagation is sampled **once per
        leg** (latency model) for the whole batch: the deliveries of one
        fan-out instant share the network-weather sample instead of paying
        one RNG draw each.  Per-connection FIFO order against earlier and
        later sends is preserved through the same ``(src, dst)`` clamp as
        :meth:`send`.

        ``min_completions``, when given, is a parallel sequence of
        per-destination completion floors (the pub/sub server's
        per-connection drain ceilings).

        Returns the transmit-completion time per destination, in order.
        Destinations that are dead or lose the message to the fault plane
        are skipped and counted in :attr:`messages_dropped`; their bytes
        still occupied the NIC.
        """
        if src_id not in self._actors:
            raise KeyError(f"unknown sender: {src_id}")
        port = self._ports[src_id]
        sim = self.sim
        completions = port.transmit_many(sim.now, size_bytes, len(dst_ids))
        if min_completions is not None:
            for index, floor in enumerate(min_completions):
                if floor > completions[index]:
                    completions[index] = floor
        plane = self.fault_plane
        pairs = self._pairs
        rng = self._rng
        #: one propagation sample per latency model ("leg") per batch
        leg_samples: Dict[int, float] = {}
        times: List[float] = []
        args_seq: List[Tuple[Any, ...]] = []
        add_time = times.append
        add_args = args_seq.append
        dropped = 0
        for index, dst_id in enumerate(dst_ids):
            if plane is not None:
                extra = plane.apply(src_id, dst_id)
                if extra is None:
                    dropped += 1
                    continue
            else:
                extra = 0.0
            state = pairs.get((src_id, dst_id))
            if state is None:
                state = self._classify_pair((src_id, dst_id))
            if state is None or not state[_P_DST].alive:
                dropped += 1
                continue
            fixed = state[_P_FIXED]
            if fixed is not None:
                latency = fixed
            else:
                model = state[_P_MODEL]
                leg = id(model)
                latency = leg_samples.get(leg)
                if latency is None:
                    latency = model.sample(rng)
                    leg_samples[leg] = latency
            delivery_time = completions[index] + latency + extra
            if delivery_time < state[_P_FIFO]:
                delivery_time = state[_P_FIFO]
            state[_P_FIFO] = delivery_time
            add_time(delivery_time)
            add_args((dst_id, message, src_id))
        if times:
            sim.schedule_batch(self._deliver, times, args_seq)
            self.messages_sent += len(times)
        if dropped:
            self.messages_dropped += dropped
        return completions

    def fanout_states(
        self, src_id: str, dst_ids: Sequence[str]
    ) -> List[Optional[List[Any]]]:
        """Resolve pair states for a fan-out source, one per destination.

        Entries are the live objects from the pair table -- the same lists
        :meth:`send_many` would fetch -- so a caller may hold them across
        calls and pass them back through :meth:`send_fanout` for as long
        as :attr:`pair_epoch` stays unchanged.  ``None`` entries mean the
        destination is not currently registered; :meth:`send_fanout`
        re-probes those per call so a later registration is picked up.
        """
        pairs = self._pairs
        states: List[Optional[List[Any]]] = []
        for dst_id in dst_ids:
            state = pairs.get((src_id, dst_id))
            if state is None:
                state = self._classify_pair((src_id, dst_id))
            states.append(state)
        return states

    # repro: scope[hot]
    def send_fanout(
        self,
        src_id: str,
        dst_ids: Sequence[str],
        states: Sequence[Optional[List[Any]]],
        message: Any,
        size_bytes: int,
        *,
        min_completions: Optional[Sequence[float]] = None,
    ) -> List[float]:
        """Fan out along pre-resolved pair states (:meth:`fanout_states`).

        Semantically identical to :meth:`send_many` -- same NIC charges,
        same lazy once-per-leg propagation sampling (and therefore the
        same RNG draw order), same FIFO clamps and drop accounting -- but
        the per-destination ``(src, dst)`` key-tuple allocation and table
        lookup are gone: the caller supplies the resolved states, which
        the broker's per-channel subscriber arrays cache across
        publications.  A one-destination batch takes a dedicated fast
        path that skips the batch machinery entirely (sparse chaos
        workloads are dominated by tiny fan-outs).
        """
        sim = self.sim
        if len(dst_ids) == 1:
            # Single-destination fast path: no completion list, no batch
            # lists, no leg-sample table.  Float math matches the batch
            # path exactly (transmit == transmit_many for one message).
            dst_id = dst_ids[0]
            port = self._ports[src_id]
            completion = port.transmit(sim.now, size_bytes)
            if min_completions is not None and min_completions[0] > completion:
                completion = min_completions[0]
            plane = self.fault_plane
            if plane is not None:
                extra = plane.apply(src_id, dst_id)
                if extra is None:
                    self.messages_dropped += 1
                    return [completion]
            else:
                extra = 0.0
            state = states[0]
            if state is None:
                state = self._pairs.get((src_id, dst_id))
                if state is None:
                    state = self._classify_pair((src_id, dst_id))
            if state is None or not state[_P_DST].alive:
                self.messages_dropped += 1
                return [completion]
            fixed = state[_P_FIXED]
            if fixed is not None:
                latency = fixed
            else:
                latency = state[_P_MODEL].sample(self._rng)
            delivery_time = completion + latency + extra
            if delivery_time < state[_P_FIFO]:
                delivery_time = state[_P_FIFO]
            state[_P_FIFO] = delivery_time
            sim.schedule_batch(
                self._deliver, (delivery_time,), ((dst_id, message, src_id),)
            )
            self.messages_sent += 1
            return [completion]
        port = self._ports[src_id]
        completions = port.transmit_many(sim.now, size_bytes, len(dst_ids))
        if min_completions is not None:
            for index, floor in enumerate(min_completions):
                if floor > completions[index]:
                    completions[index] = floor
        plane = self.fault_plane
        pairs = self._pairs
        rng = self._rng
        #: one propagation sample per latency model ("leg") per batch; the
        #: identity compare against the previous destination's model keeps
        #: uniform batches (every subscriber behind the same WAN leg) to
        #: one pointer compare per destination instead of a dict probe.
        leg_samples: Optional[Dict[int, float]] = None
        last_model: Optional[LatencyModel] = None
        last_latency = 0.0
        times: List[float] = []
        args_seq: List[Tuple[Any, ...]] = []
        add_time = times.append
        add_args = args_seq.append
        dropped = 0
        if plane is None:
            # Specialized copy of the loop below with the fault-plane
            # branch (and its per-destination ``extra`` add) removed --
            # the dominant configuration in large fan-out workloads.
            for dst_id, state, completion in zip(dst_ids, states, completions):
                if state is None:
                    state = pairs.get((src_id, dst_id))
                    if state is None:
                        state = self._classify_pair((src_id, dst_id))
                    if state is None or not state[_P_DST].alive:
                        dropped += 1
                        continue
                elif not state[_P_DST].alive:
                    dropped += 1
                    continue
                fixed = state[_P_FIXED]
                if fixed is not None:
                    latency = fixed
                else:
                    model = state[_P_MODEL]
                    if model is last_model:
                        latency = last_latency
                    else:
                        if leg_samples is None:
                            leg_samples = {}
                        leg = id(model)
                        cached = leg_samples.get(leg)
                        if cached is None:
                            cached = model.sample(rng)
                            leg_samples[leg] = cached
                        latency = cached
                        last_model = model
                        last_latency = cached
                delivery_time = completion + latency
                if delivery_time < state[_P_FIFO]:
                    delivery_time = state[_P_FIFO]
                state[_P_FIFO] = delivery_time
                add_time(delivery_time)
                add_args((dst_id, message, src_id))
        else:
            for index, dst_id in enumerate(dst_ids):
                extra = plane.apply(src_id, dst_id)
                if extra is None:
                    dropped += 1
                    continue
                state = states[index]
                if state is None:
                    state = pairs.get((src_id, dst_id))
                    if state is None:
                        state = self._classify_pair((src_id, dst_id))
                    if state is None or not state[_P_DST].alive:
                        dropped += 1
                        continue
                elif not state[_P_DST].alive:
                    dropped += 1
                    continue
                fixed = state[_P_FIXED]
                if fixed is not None:
                    latency = fixed
                else:
                    model = state[_P_MODEL]
                    if model is last_model:
                        latency = last_latency
                    else:
                        if leg_samples is None:
                            leg_samples = {}
                        leg = id(model)
                        cached = leg_samples.get(leg)
                        if cached is None:
                            cached = model.sample(rng)
                            leg_samples[leg] = cached
                        latency = cached
                        last_model = model
                        last_latency = cached
                delivery_time = completions[index] + latency + extra
                if delivery_time < state[_P_FIFO]:
                    delivery_time = state[_P_FIFO]
                state[_P_FIFO] = delivery_time
                add_time(delivery_time)
                add_args((dst_id, message, src_id))
        if times:
            sim.schedule_batch(self._deliver, times, args_seq)
            self.messages_sent += len(times)
        if dropped:
            self.messages_dropped += dropped
        return completions

    def _classify_pair(self, key: Tuple[str, str]) -> Optional[List[Any]]:
        """Resolve and cache an endpoint pair's connection state.

        Returns ``None`` -- without caching -- when the destination is not
        currently registered, so a later registration is picked up.
        """
        src_id, dst_id = key
        dst = self._actors.get(dst_id)
        if dst is None:
            return None
        if src_id == dst_id:
            state: List[Any] = [dst, None, 0.0, 0.0]
        else:
            if self._actors[src_id].is_infra and dst.is_infra:
                model: LatencyModel = self.lan_model
            else:
                # Client <-> infrastructure: one WAN sample per direction,
                # exactly as the paper injects King samples.  (Client <->
                # client direct messages do not occur in Dynamoth's two-hop
                # architecture.)
                model = self.wan_model
            state = [dst, model, getattr(model, "fixed_delay", None), 0.0]
        self._pairs[key] = state
        return state

    def _deliver(self, dst_id: str, message: Any, src_id: str) -> None:
        dst = self._actors.get(dst_id)
        if dst is None or not dst.alive:
            self.messages_dropped += 1
            return
        dst.receive(message, src_id)
