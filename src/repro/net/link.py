"""Bandwidth-limited egress ports and per-second byte accounting.

The paper's Local Load Analyzers report, per server and per second, the
measured outgoing bandwidth ``M_i``; the load ratio ``LR_i = M_i / T_i``
(eq. 1) is the single signal the rebalancer acts on.  :class:`EgressPort`
provides both halves of that: a FIFO transmission queue that drains at the
port's capacity (so an overloaded server's deliveries back up and response
times climb), and :class:`SecondBuckets` counters that expose the measured
egress bytes for each wall-clock second of virtual time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class SecondBuckets:
    """Per-second byte counters with cheap harvesting.

    ``add(t, n)`` attributes ``n`` bytes to the second ``floor(t)``;
    ``drain_until(t)`` returns and forgets all complete buckets strictly
    before second ``floor(t)`` so the caller (an LLA) can aggregate them.
    """

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}

    def add(self, time: float, nbytes: int) -> None:
        second = int(time)
        self._buckets[second] = self._buckets.get(second, 0) + nbytes

    def peek(self, second: int) -> int:
        """Bytes recorded for a specific second (0 if none)."""
        return self._buckets.get(second, 0)

    def drain_until(self, time: float) -> List[Tuple[int, int]]:
        """Remove and return ``(second, bytes)`` pairs before ``floor(time)``.

        Pairs are returned in increasing second order.
        """
        horizon = int(time)
        ready = sorted(s for s in self._buckets if s < horizon)
        return [(s, self._buckets.pop(s)) for s in ready]

    def total(self) -> int:
        """Sum of all not-yet-drained buckets (diagnostic)."""
        return sum(self._buckets.values())


class EgressPort:
    """A FIFO, rate-limited network egress interface.

    ``capacity_bps`` is the *actual* drain rate in bytes per second.  For
    pub/sub servers the cluster configures it as ``headroom * nominal``
    where ``nominal`` is the capacity advertised to the load balancer
    (``T_i``): real NICs sustain slightly more than their nominal rating,
    which is how the paper can observe load ratios above 1.0 and report
    that Redis fails once LR exceeds ~1.15.

    A port with ``capacity_bps=None`` is unlimited (used for client nodes,
    whose uplinks are never the bottleneck in the paper's setup).
    """

    def __init__(self, capacity_bps: Optional[float] = None) -> None:
        if capacity_bps is not None and capacity_bps <= 0:
            raise ValueError(f"capacity must be positive: {capacity_bps!r}")
        self.capacity_bps = capacity_bps
        self._busy_until: float = 0.0
        self.buckets = SecondBuckets()
        self.total_bytes: int = 0
        self.total_messages: int = 0

    @property
    def busy_until(self) -> float:
        """Instant at which the currently queued transmissions finish."""
        return self._busy_until

    def queued_delay(self, now: float) -> float:
        """Seconds of transmission backlog currently ahead of a new message."""
        return max(0.0, self._busy_until - now)

    def transmit(self, now: float, size_bytes: int) -> float:
        """Enqueue a transmission; return its completion time.

        The message starts transmitting when the port becomes free and
        occupies it for ``size / capacity`` seconds.  Bytes are attributed
        to the second in which transmission *completes*, which is what a
        NIC byte counter sampled once per second would report.
        """
        if size_bytes < 0:
            raise ValueError(f"negative message size: {size_bytes!r}")
        if self.capacity_bps is None:
            completion = now
        else:
            start = now if now > self._busy_until else self._busy_until
            completion = start + size_bytes / self.capacity_bps
            self._busy_until = completion
        self.buckets.add(completion, size_bytes)
        self.total_bytes += size_bytes
        self.total_messages += 1
        return completion

    def transmit_many(self, now: float, size_bytes: int, count: int) -> List[float]:
        """Enqueue ``count`` equal-size transmissions back to back.

        Equivalent to calling :meth:`transmit` ``count`` times (same float
        accumulation, same per-second byte attribution), but with one call,
        one backlog lookup, and bucket updates aggregated per touched
        second -- the dominant cost of a large fan-out burst otherwise.
        """
        if size_bytes < 0:
            raise ValueError(f"negative message size: {size_bytes!r}")
        if count < 0:
            raise ValueError(f"negative message count: {count!r}")
        if count == 0:
            return []
        if self.capacity_bps is None:
            self.buckets.add(now, size_bytes * count)
            self.total_bytes += size_bytes * count
            self.total_messages += count
            return [now] * count
        per = size_bytes / self.capacity_bps
        c = now if now > self._busy_until else self._busy_until
        completions: List[float] = []
        append = completions.append
        for _ in range(count):
            c += per  # iterative, matching sequential transmit() floats
            append(c)
        self._busy_until = c
        # Attribute bytes per completion second, aggregating consecutive
        # runs that land in the same second into one bucket update.
        buckets = self.buckets
        run_second = int(completions[0])
        run_bytes = 0
        for completion in completions:
            second = int(completion)
            if second != run_second:
                buckets._buckets[run_second] = (
                    buckets._buckets.get(run_second, 0) + run_bytes
                )
                run_second = second
                run_bytes = 0
            run_bytes += size_bytes
        buckets._buckets[run_second] = buckets._buckets.get(run_second, 0) + run_bytes
        self.total_bytes += size_bytes * count
        self.total_messages += count
        return completions
