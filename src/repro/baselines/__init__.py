"""Baseline load-distribution schemes the paper compares against."""

from repro.baselines.consistent_hashing import ConsistentHashingBalancer

__all__ = ["ConsistentHashingBalancer"]
