"""The consistent-hashing baseline balancer (Experiment 2's comparator).

This is "the standard load balancing technique" the paper measures
Dynamoth against: channels are always placed by a consistent-hashing ring
over the *currently rented* servers.  When any server overloads, the only
remedy the scheme has is to rent one more server and let the ring shed
~1/N of every server's channels onto it -- irrespective of the actual load
of each channel or server.  Consequently (section V-D):

* "highly loaded servers do not loose significant load and tend to
  overload again soon", and
* "this technique has to spawn a new server every time a rebalancing
  occurs, which is not cost efficient".

The baseline reuses the whole reconfiguration machinery (plans pushed to
dispatchers, lazy client updates, forwarding) so the comparison isolates
the *placement policy*, exactly as in the paper where both systems run on
the same middleware.
"""

from __future__ import annotations

from random import Random
from typing import Any, List

from repro.core.balancer import BalancerEvent, CloudOperations
from repro.core.config import DynamothConfig
from repro.core.dispatcher import dispatcher_id
from repro.core.hashing import ConsistentHashRing
from repro.core.messages import LoadReport, NoMoreSubscribers, PlanPush, ServerSpawned
from repro.core.metrics import ClusterLoadView
from repro.core.plan import ChannelMapping, Plan, ReplicationMode
from repro.core.stragglers import StragglerTracker
from repro.obs.trace import (
    NULL_TRACER,
    LoadReportEvent,
    LoadSnapshotEvent,
    MigrationSettledEvent,
    MigrationStartEvent,
    PlanGeneratedEvent,
    PlanPushedEvent,
    ServerReadyEvent,
    SpawnRequestEvent,
    Tracer,
)
from repro.sim.actor import Actor
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTask


class ConsistentHashingBalancer(Actor):
    """Scale-out via consistent hashing only: no migration, no replication."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: DynamothConfig,
        initial_plan: Plan,
        cloud: CloudOperations,
        default_nominal_bps: float,
        rng: Random,
        *,
        tracer: Tracer = NULL_TRACER,
    ):
        super().__init__(sim, node_id, is_infra=True)
        self.config = config
        self.plan = initial_plan
        self._cloud = cloud
        self._rng = rng
        self._tracer = tracer

        self.view = ClusterLoadView(config.load_window_s)
        self.active_servers: List[str] = list(initial_plan.active_servers)
        #: ring over the *active* pool; grows as servers are rented
        self.ring = ConsistentHashRing(
            initial_plan.active_servers, vnodes=config.vnodes_per_server
        )
        self.pending_spawns = 0
        self._last_plan_time = -float("inf")

        self.events: List[BalancerEvent] = []
        self.load_history: List[tuple] = []
        self._stragglers = StragglerTracker(config.plan_entry_timeout_s)

        self._task = PeriodicTask(sim, config.lb_eval_interval_s, self._evaluate)

    def start(self) -> None:
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    # ------------------------------------------------------------------
    def receive(self, message: Any, src_id: str) -> None:
        if isinstance(message, LoadReport):
            self.view.add_report(message)
            if self._tracer.enabled:
                self._tracer.emit(
                    LoadReportEvent(
                        self.sim.now,
                        message.server_id,
                        message.load_ratio,
                        message.cpu_utilization,
                        len(message.channels),
                    )
                )
        elif isinstance(message, ServerSpawned):
            self._on_server_ready(message.server_id)
        elif isinstance(message, NoMoreSubscribers):
            self._stragglers.drain(message.channel, message.server_id)
            if self._tracer.enabled:
                self._tracer.emit(
                    MigrationSettledEvent(self.sim.now, message.channel, message.server_id)
                )
        else:
            raise TypeError(f"{self.node_id}: unexpected message {type(message).__name__}")

    def _on_server_ready(self, server_id: str) -> None:
        self.pending_spawns = max(0, self.pending_spawns - 1)
        if server_id in self.active_servers:
            return
        self.active_servers.append(server_id)
        self.ring.add_server(server_id)
        self.events.append(BalancerEvent(self.sim.now, "server-ready", server_id))
        if self._tracer.enabled:
            self._tracer.emit(ServerReadyEvent(self.sim.now, server_id))
        self._rehash(f"server {server_id} joined the ring")

    # ------------------------------------------------------------------
    def _evaluate(self, now: float) -> None:
        self.view.prune(now)
        ratios = {s: self.view.load_ratio(s) for s in self.active_servers}
        self.load_history.append((now, ratios))
        if self._tracer.enabled:
            self._tracer.emit(LoadSnapshotEvent(now, dict(ratios)))
        if (now - self._last_plan_time) < self.config.t_wait_s:
            return
        if self.pending_spawns > 0:
            return
        overloaded = any(
            self.view.load_ratio(s) >= self.config.lr_high for s in self.active_servers
        )
        if not overloaded:
            return
        # The only lever consistent hashing has: rent another server.
        total = len(self.active_servers) + self.pending_spawns
        if total >= self.config.max_servers:
            return
        self.pending_spawns += 1
        self._last_plan_time = now
        self.events.append(BalancerEvent(now, "spawn-request"))
        if self._tracer.enabled:
            self._tracer.emit(SpawnRequestEvent(now))
        self._cloud.request_spawn()

    def _rehash(self, reason: str) -> None:
        """Re-place every observed channel according to the current ring."""
        channels = set(self.plan.explicit_channels())
        for server_id in self.active_servers:
            channels.update(self.view.channel_loads(server_id))
        mappings = {
            channel: ChannelMapping(ReplicationMode.SINGLE, (self.ring.lookup(channel),))
            for channel in sorted(channels)
        }
        previous_plan = self.plan
        self.plan = self.plan.evolve(
            mappings=mappings, active_servers=tuple(self.active_servers)
        )
        self._stragglers.record_plan_change(previous_plan, self.plan, self.sim.now)
        self._stragglers.prune(self.sim.now)
        self._last_plan_time = self.sim.now
        self.events.append(
            BalancerEvent(self.sim.now, "rebalance", f"v{self.plan.version}: {reason}")
        )
        tracer = self._tracer
        if tracer.enabled:
            changed = previous_plan.diff(self.plan)
            tracer.emit(
                PlanGeneratedEvent(
                    self.sim.now, self.plan.version, tuple(changed), (), False
                )
            )
            for channel, (old, new) in changed.items():
                tracer.emit(
                    MigrationStartEvent(
                        self.sim.now,
                        self.plan.version,
                        channel,
                        tuple(old.servers),
                        tuple(new.servers),
                        new.mode.value,
                    )
                )
        push = PlanPush(self.plan, self._stragglers.snapshot())
        size = PlanPush.WIRE_SIZE + 32 * len(self.plan.explicit_channels())
        for server_id in self.active_servers:
            self.send(dispatcher_id(server_id), push, size)
        if tracer.enabled:
            tracer.emit(
                PlanPushedEvent(self.sim.now, self.plan.version, tuple(self.active_servers))
            )

    # ------------------------------------------------------------------
    def rebalance_times(self) -> List[float]:
        return [e.time for e in self.events if e.kind == "rebalance"]

    def average_load_ratio(self) -> float:
        return self.view.average_load_ratio(self.active_servers)
