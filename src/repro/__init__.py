"""Dynamoth reproduction: scalable channel-based pub/sub for the cloud.

A from-scratch Python implementation of *Dynamoth: A Scalable Pub/Sub
Middleware for Latency-Constrained Applications in the Cloud* (ICDCS 2015),
including every substrate the paper depends on:

* a deterministic discrete-event simulator (:mod:`repro.sim`),
* a WAN/LAN network model with King-dataset-like latencies and
  bandwidth-limited egress (:mod:`repro.net`),
* a Redis-like channel pub/sub server (:mod:`repro.broker`),
* the Dynamoth middleware itself -- plans, hierarchical load balancing,
  channel replication and lazy reconfiguration (:mod:`repro.core`),
* the consistent-hashing baseline (:mod:`repro.baselines`),
* the RGame massively-multiplayer workload and micro-benchmark workloads
  (:mod:`repro.workload`),
* the experiment harness regenerating every figure of the paper's
  evaluation (:mod:`repro.experiments`).
"""

from repro.core import (
    ChannelMapping,
    ConsistentHashRing,
    DynamothClient,
    DynamothCluster,
    DynamothConfig,
    Plan,
    ReplicationMode,
)
from repro.broker import BrokerConfig

__version__ = "1.0.0"

__all__ = [
    "BrokerConfig",
    "ChannelMapping",
    "ConsistentHashRing",
    "DynamothClient",
    "DynamothCluster",
    "DynamothConfig",
    "Plan",
    "ReplicationMode",
    "__version__",
]
