"""Fan tasks over a process pool; merge results in task order.

The orchestrator's one hard promise is *byte-stable merging*: the
merged document depends only on the task list and each task's result,
never on completion order or worker count.  ``ProcessPoolExecutor.map``
yields results in submission order, and single-process mode is a plain
in-order loop, so ``--procs 8`` and ``--procs 1`` produce identical
reports (bench wall-time fields excepted).

The pool always uses the ``spawn`` start method: workers re-import
:mod:`repro` from scratch, which keeps them honest (no inherited
module state) and matches the only start method available everywhere.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

from repro.sweep.workers import (
    BenchTask,
    CheckTask,
    LabTask,
    bench_worker,
    check_worker,
    lab_worker,
)

SWEEP_SCHEMA = 1

_T = TypeVar("_T")


def run_tasks(
    worker: Callable[[_T], Dict[str, Any]],
    tasks: Sequence[_T],
    *,
    procs: int = 1,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> List[Dict[str, Any]]:
    """Run ``worker`` over ``tasks``; results always in task order."""
    results: List[Dict[str, Any]] = []
    if procs <= 1 or len(tasks) <= 1:
        for task in tasks:
            result = worker(task)
            if progress is not None:
                progress(result)
            results.append(result)
        return results
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=procs, mp_context=context) as pool:
        # chunksize=1 so a slow task never delays unrelated chunks; map
        # still yields strictly in submission order.
        for result in pool.map(worker, tasks, chunksize=1):
            if progress is not None:
                progress(result)
            results.append(result)
    return results


# ----------------------------------------------------------------------
# check soak
# ----------------------------------------------------------------------
def check_sweep(
    iterations: int,
    *,
    seeds: Optional[Iterable[int]] = None,
    delivery_tier: Optional[str] = None,
    causal_order: Optional[bool] = None,
    procs: int = 1,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Soak ``iterations`` generated scenario seeds through the oracles.

    The returned document intentionally omits the process count and any
    wall-clock data: a soak's report is byte-identical however it was
    parallelized.
    """
    seed_list = list(seeds) if seeds is not None else list(range(iterations))
    tasks = [
        CheckTask(seed=s, delivery_tier=delivery_tier, causal_order=causal_order)
        for s in seed_list
    ]
    results = run_tasks(check_worker, tasks, procs=procs, progress=progress)
    failed = [r["seed"] for r in results if not r["ok"]]
    return {
        "schema": SWEEP_SCHEMA,
        "mode": "check",
        "results": results,
        "summary": {
            "total": len(results),
            "passed": len(results) - len(failed),
            "failed": len(failed),
            "failed_seeds": failed,
        },
    }


def check_markdown(doc: Dict[str, Any]) -> str:
    summary = doc["summary"]
    lines = [
        "# Check soak",
        "",
        f"{summary['passed']}/{summary['total']} seeds passed every oracle.",
        "",
        "| seed | tier | causal | events | deliveries | status |",
        "|---:|---|---|---:|---:|---|",
    ]
    for r in doc["results"]:
        status = "ok" if r["ok"] else f"FAIL ({len(r['violations'])})"
        lines.append(
            f"| {r['seed']} | {r['delivery_tier']} | {r['causal_order']} "
            f"| {r['events']} | {r['deliveries']} | {status} |"
        )
    if summary["failed"]:
        lines.append("")
        lines.append("Replay a failing seed (with shrinking):")
        lines.append("")
        for seed in summary["failed_seeds"]:
            lines.append(f"    python -m repro.check --seed {seed}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# bench matrix
# ----------------------------------------------------------------------
def bench_sweep(
    scenarios: Sequence[str],
    *,
    profile: str = "full",
    scheduler: str = "heap",
    seed: int = 0,
    repeat: int = 1,
    procs: int = 1,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Run each bench scenario as its own work unit.

    The merged document keeps the harness's ``{"scenarios": {...}}``
    shape so :func:`repro.experiments.bench.extract_headline` and
    ``compare_to_baseline`` work on it unchanged.
    """
    import platform

    tasks = [
        BenchTask(
            scenario=name,
            profile=profile,
            scheduler=scheduler,
            seed=seed,
            repeat=repeat,
        )
        for name in scenarios
    ]
    results = run_tasks(bench_worker, tasks, procs=procs, progress=progress)
    return {
        "schema": SWEEP_SCHEMA,
        "mode": "bench",
        "profile": profile,
        "scheduler": scheduler,
        "python": platform.python_version(),
        "scenarios": {r["scenario"]: r["result"] for r in results},
    }


def bench_markdown(doc: Dict[str, Any]) -> str:
    lines = [
        "# Bench sweep",
        "",
        f"Profile `{doc['profile']}`, scheduler `{doc['scheduler']}`, "
        f"Python {doc['python']}.",
        "",
        "| scenario | events | wall s | events/s | deliveries/s | peak RSS MB |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for name in sorted(doc["scenarios"]):
        r = doc["scenarios"][name]
        lines.append(
            f"| {name} | {r['events']} | {r['wall_s']:.2f} "
            f"| {r['events_per_s']:.0f} | {r['deliveries_per_s']:.0f} "
            f"| {r['peak_rss_kb'] / 1024.0:.1f} |"
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# policy lab
# ----------------------------------------------------------------------
def lab_sweep(
    scenarios: Sequence[str],
    *,
    seed: int = 0,
    policies: Sequence[str] = (),
    sla_threshold_s: Optional[float] = None,
    procs: int = 1,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Record each live lab scenario and compare every policy over it."""
    tasks = [
        LabTask(
            scenario=name,
            seed=seed,
            policies=tuple(policies),
            sla_threshold_s=sla_threshold_s,
        )
        for name in scenarios
    ]
    results = run_tasks(lab_worker, tasks, procs=procs, progress=progress)
    return {
        "schema": SWEEP_SCHEMA,
        "mode": "lab",
        "seed": seed,
        "scenarios": {r["scenario"]: r["report"] for r in results},
    }


def lab_markdown(doc: Dict[str, Any]) -> str:
    lines = ["# Policy lab sweep", ""]
    for name in sorted(doc["scenarios"]):
        report = doc["scenarios"][name]
        lines.append(
            f"## `{name}` (seed {report['seed']}, {report['ticks']} ticks, "
            f"SLA {report['sla_threshold_s'] * 1000:.0f} ms)"
        )
        lines.append("")
        lines.append("| policy | SLA viol. | SLA sec | pushes | migrations | server-h |")
        lines.append("|---|---:|---:|---:|---:|---:|")
        for m in report["policies"]:
            lines.append(
                f"| {m['policy']} | {m['sla_violations']} "
                f"| {m['sla_violation_seconds']:.1f} | {m['plan_pushes']} "
                f"| {m['migrations']} | {m['server_hours']:.3f} |"
            )
        lines.append("")
    return "\n".join(lines) + "\n"
