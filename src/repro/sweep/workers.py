"""Spawn-safe sweep work units and their worker functions.

Each task is a frozen dataclass of primitives (hashable, picklable under
the ``spawn`` start method) and each worker is a plain module-level
function mapping one task to one JSON-serializable dict.  Workers never
read the wall clock themselves (DET001 scope): any host-time numbers in
a bench result come from :mod:`repro.experiments.bench`, which owns
measurement.

Pool worker processes are reused across tasks, and single-process mode
runs every task in the orchestrating interpreter -- so each worker ends
by calling :meth:`Simulator.gc_release`.  The kernel's managed GC
policy freezes each run's object graph; without the release, back-to-
back simulations in one process pin every dead topology permanently
(hundreds of MB over a long soak).
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple

from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class CheckTask:
    """One property-test scenario seed."""

    seed: int
    delivery_tier: Optional[str] = None
    causal_order: Optional[bool] = None


@dataclass(frozen=True)
class BenchTask:
    """One bench scenario (with its own repeat-keep-fastest loop)."""

    scenario: str
    profile: str = "full"
    scheduler: str = "heap"
    seed: int = 0
    repeat: int = 1


@dataclass(frozen=True)
class LabTask:
    """Record one live lab scenario, then replay it against policies."""

    scenario: str
    seed: int = 0
    policies: Tuple[str, ...] = ()
    sla_threshold_s: Optional[float] = None


def check_worker(task: CheckTask) -> Dict[str, Any]:
    """Run one generated scenario through every oracle.

    The ``trace_sha256`` digest covers the full schema-2 trace body --
    the strongest per-seed determinism witness we have: two runs of the
    same seed (any process count, any machine) must agree on it.
    """
    from repro.check.generate import generate_scenario
    from repro.check.oracles import check_result
    from repro.check.scenario import run_scenario

    scenario = generate_scenario(
        task.seed,
        delivery_tier=task.delivery_tier,
        causal_order=task.causal_order,
    )
    result = run_scenario(scenario)
    violations = check_result(result)
    digest = hashlib.sha256(result.trace_bytes()).hexdigest()
    out: Dict[str, Any] = {
        "seed": task.seed,
        "label": scenario.label,
        "delivery_tier": scenario.delivery_tier,
        "causal_order": scenario.causal_order,
        "ok": not violations,
        "events": len(result.tracer.events),
        "deliveries": len(result.ledger.deliveries),
        "trace_sha256": digest,
        "violations": [str(v) for v in violations],
    }
    Simulator.gc_release()
    return out


def bench_worker(task: BenchTask) -> Dict[str, Any]:
    """Run one bench scenario; ``run_bench`` keeps the fastest repeat."""
    from repro.experiments.bench import PROFILES, run_bench

    profile = PROFILES[task.profile]
    results = run_bench(
        profile,
        seed=task.seed,
        scenarios=[task.scenario],
        scheduler=task.scheduler,
        repeat=task.repeat,
    )
    # run_bench already released the GC freeze after each repeat.
    return {
        "scenario": task.scenario,
        "seed": task.seed,
        "result": asdict(results[task.scenario]),
    }


def lab_worker(task: LabTask) -> Dict[str, Any]:
    """Record one live scenario and compare every policy over it."""
    from repro.lab.cli import _scenarios, record_scenario
    from repro.lab.compare import compare_policies

    scenario = _scenarios()[task.scenario]
    history = record_scenario(scenario, task.seed)
    report = compare_policies(
        history,
        list(task.policies) or None,
        sla_threshold_s=task.sla_threshold_s,
    )
    out = {
        "scenario": task.scenario,
        "seed": task.seed,
        "report": report.to_dict(),
    }
    Simulator.gc_release()
    return out
