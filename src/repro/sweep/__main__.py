"""Entry point: ``python -m repro.sweep``."""

from repro.sweep.cli import main

raise SystemExit(main())
