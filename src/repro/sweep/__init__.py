"""``repro.sweep`` -- multiprocess sweep orchestrator.

Fans deterministic per-seed work units out over a process pool and
merges the results into byte-stable JSON / markdown reports:

* ``check``  -- property-test soak: N generated scenario seeds through
  the :mod:`repro.check` oracles;
* ``bench``  -- the :mod:`repro.experiments.bench` scenario matrix,
  one scenario per work unit (each in a fresh interpreter when
  ``--procs`` > 1, which doubles as GC/RSS isolation);
* ``lab``    -- record each :mod:`repro.lab` live scenario and replay
  its history against every registered rebalancing policy.

Every work unit is a frozen dataclass of primitives (spawn-picklable)
and every worker is a module-level function, so the pool works under
the ``spawn`` start method.  Results are merged in task order -- never
completion order -- so a sweep's report is byte-identical whether it
ran on one process or eight (timing fields excepted for ``bench``).

This package is deliberately inside the determinism sanitizer's DET001
scope (it is *not* in ``wallclock-allowed``): sweep code must not read
the wall clock.  Host-time measurement belongs to the harnesses it
drives (``repro.experiments`` / ``repro.obs``).
"""

from repro.sweep.orchestrator import (
    SWEEP_SCHEMA,
    bench_sweep,
    check_sweep,
    lab_sweep,
    run_tasks,
)
from repro.sweep.workers import (
    BenchTask,
    CheckTask,
    LabTask,
    bench_worker,
    check_worker,
    lab_worker,
)

__all__ = [
    "SWEEP_SCHEMA",
    "BenchTask",
    "CheckTask",
    "LabTask",
    "bench_sweep",
    "bench_worker",
    "check_sweep",
    "check_worker",
    "lab_sweep",
    "lab_worker",
    "run_tasks",
]
