"""``python -m repro.sweep`` -- multiprocess soak / bench / lab sweeps.

Subcommands::

    check   soak N generated check-scenario seeds through every oracle
    bench   run the bench scenario matrix, one scenario per work unit
    lab     record each live lab scenario and compare every policy

All three fan work over a ``spawn`` process pool (``--procs``) and
merge results in task order, so the JSON/markdown reports are
byte-stable across process counts (bench wall-time fields excepted).
``bench`` can gate on a committed baseline exactly like
``python -m repro.experiments bench --baseline``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sweep.orchestrator import (
    bench_markdown,
    bench_sweep,
    check_markdown,
    check_sweep,
    lab_markdown,
    lab_sweep,
)

_Out = Callable[[str], None]


def _write_outputs(
    doc: Dict[str, Any],
    markdown: str,
    args: argparse.Namespace,
    out: _Out,
) -> None:
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        out(f"JSON report written to {args.output}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(markdown)
        out(f"markdown report written to {args.markdown}")
    if not args.output and not args.markdown:
        out(markdown.rstrip("\n"))


def _cmd_check(args: argparse.Namespace, out: _Out) -> int:
    def progress(result: Dict[str, Any]) -> None:
        status = "ok  " if result["ok"] else "FAIL"
        out(
            f"{status} seed={result['seed']} label={result['label']} "
            f"({result['events']} events, {result['deliveries']} deliveries)"
        )

    doc = check_sweep(
        args.iterations,
        delivery_tier=args.tier,
        causal_order=args.causal,
        procs=args.procs,
        progress=progress,
    )
    _write_outputs(doc, check_markdown(doc), args, out)
    summary = doc["summary"]
    if summary["failed"]:
        out(
            f"{summary['failed']}/{summary['total']} seed(s) FAILED; "
            f"replay with: python -m repro.check --seed "
            f"{summary['failed_seeds'][0]}"
        )
        return 1
    out(f"all {summary['total']} seed(s) passed every oracle")
    return 0


def _cmd_bench(args: argparse.Namespace, out: _Out) -> int:
    from repro.experiments.bench import SCENARIOS, compare_to_baseline

    names = args.scenario or list(SCENARIOS)

    def progress(result: Dict[str, Any]) -> None:
        r = result["result"]
        out(
            f"{result['scenario']}: {r['events']} events in "
            f"{r['wall_s']:.2f}s ({r['events_per_s']:.0f} events/s)"
        )

    doc = bench_sweep(
        names,
        profile=args.profile,
        scheduler=args.scheduler,
        seed=args.seed,
        repeat=args.repeat,
        procs=args.procs,
        progress=progress,
    )
    _write_outputs(doc, bench_markdown(doc), args, out)
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        error = compare_to_baseline(doc, baseline, args.max_regression)
        if error is not None:
            out(f"REGRESSION: {error}")
            return 1
        out(f"headline within {args.max_regression:.0%} of baseline")
    return 0


def _cmd_lab(args: argparse.Namespace, out: _Out) -> int:
    def progress(result: Dict[str, Any]) -> None:
        report = result["report"]
        out(
            f"{result['scenario']}: {report['ticks']} ticks, "
            f"{len(report['policies'])} policies compared"
        )

    doc = lab_sweep(
        args.scenario,
        seed=args.seed,
        policies=[p.strip() for p in args.policies.split(",") if p.strip()],
        sla_threshold_s=args.sla_threshold,
        procs=args.procs,
        progress=progress,
    )
    _write_outputs(doc, lab_markdown(doc), args, out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Multiprocess sweeps over check soaks, bench "
        "scenarios, and policy-lab comparisons.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--procs", type=int, default=1,
                       help="worker processes (default: 1 = in-process)")
        p.add_argument("--output", default="",
                       help="write the merged JSON report to this file")
        p.add_argument("--markdown", default="",
                       help="write the markdown report to this file")

    check = sub.add_parser("check", help="soak generated check seeds")
    check.add_argument("--iterations", type=int, default=50,
                       help="seeds 0..N-1 to soak (default: 50)")
    check.add_argument("--tier", default=None,
                       help="pin the delivery tier instead of sampling it")
    check.add_argument("--causal", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="pin causal-order mode instead of sampling it")
    common(check)
    check.set_defaults(func=_cmd_check)

    bench = sub.add_parser("bench", help="run the bench scenario matrix")
    bench.add_argument("--profile", default="full",
                       help="bench profile name (default: full)")
    bench.add_argument("--scheduler", default="heap",
                       choices=["heap", "calendar"])
    bench.add_argument("--scenario", action="append", default=[],
                       help="scenario to run (repeatable; default: all)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--repeat", type=int, default=1,
                       help="repeats per scenario, keep the fastest")
    bench.add_argument("--baseline", default="",
                       help="bench JSON to gate the headline metric against")
    bench.add_argument("--max-regression", type=float, default=0.2,
                       help="allowed headline regression vs baseline "
                            "(default: 0.2)")
    common(bench)
    bench.set_defaults(func=_cmd_bench)

    lab = sub.add_parser("lab", help="record lab scenarios, compare policies")
    lab.add_argument("--scenario", action="append",
                     default=None,
                     help="live scenario to record (repeatable; "
                          "default: steady, flash-crowd, crash)")
    lab.add_argument("--seed", type=int, default=0)
    lab.add_argument("--policies", default="",
                     help="comma-separated policy names (default: all)")
    lab.add_argument("--sla-threshold", type=float, default=None)
    common(lab)
    lab.set_defaults(func=_cmd_lab)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "command", "") == "lab" and args.scenario is None:
        args.scenario = ["steady", "flash-crowd", "crash"]
    handler: Callable[[argparse.Namespace, _Out], int] = args.func
    return handler(args, lambda line: print(line, file=sys.stdout))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
