"""Deterministic discrete-event simulation kernel.

This package is the substrate that replaces the paper's 80-machine testbed.
It provides:

* :class:`~repro.sim.kernel.Simulator` -- a heap-based event loop with a
  virtual clock and cancellable scheduled events.
* :class:`~repro.sim.timers.Timer` -- a resettable one-shot timer, used by
  the Dynamoth client library and dispatchers for plan-entry expiry.
* :class:`~repro.sim.rng.RngRegistry` -- named, independently seeded random
  streams so that every experiment is reproducible bit-for-bit.
* :class:`~repro.sim.actor.Actor` -- the base class for every simulated node
  (clients, pub/sub servers, load balancer, ...).
"""

from repro.sim.actor import Actor
from repro.sim.kernel import ScheduledEvent, Simulator
from repro.sim.rng import RngRegistry
from repro.sim.timers import PeriodicTask, Timer

__all__ = [
    "Actor",
    "PeriodicTask",
    "RngRegistry",
    "ScheduledEvent",
    "Simulator",
    "Timer",
]
