"""Named, independently seeded random streams.

Every source of randomness in the reproduction (WAN latency sampling, player
movement, random replica selection, arrival schedules, ...) draws from its
own named stream derived from a single root seed.  This gives two
properties the experiments depend on:

* **Reproducibility** -- the same root seed yields the same run.
* **Isolation** -- adding a new consumer of randomness does not perturb the
  draws seen by existing consumers, so results stay comparable across code
  versions.
"""

from __future__ import annotations

import hashlib
from random import Random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``root_seed``.

    Uses SHA-256 rather than ``hash()`` because Python's string hashing is
    randomized per-process.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of named :class:`random.Random` streams.

    Streams are created lazily and cached, so two calls to
    :meth:`stream` with the same name return the same generator object.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, Random] = {}

    def stream(self, name: str) -> Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose streams are independent of ours."""
        return RngRegistry(derive_seed(self.root_seed, f"fork:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
