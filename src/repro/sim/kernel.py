"""The discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock (a float, in seconds) and a binary
heap of pending events.  Components schedule callbacks at future points in
time; :meth:`Simulator.run_until` pops events in timestamp order and invokes
them.  Ties are broken by insertion order, which makes runs fully
deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class ScheduledEvent:
    """Handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule`; calling :meth:`cancel` prevents
    the callback from firing (cancellation is O(1) -- the event stays in the
    heap but is skipped when popped).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., None]] = fn
        self.args = args
        self.cancelled = False
        #: back-reference to the owning simulator while the event is in its
        #: heap, so cancellations can be counted for heap compaction.
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled events do not pin large objects in
        # memory while they wait to be popped from the heap.
        self.fn = None
        self.args = ()
        sim = self._sim
        self._sim = None
        if sim is not None:
            sim._note_cancelled()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second in"))
        sim.run_until(10.0)

    The clock unit is seconds.  Events scheduled for the same instant fire in
    the order they were scheduled.
    """

    #: Compaction floor: heaps smaller than this are never compacted (the
    #: rebuild would cost more than the memory it frees).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[ScheduledEvent] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._cancelled_pending: int = 0
        self._compactions: int = 0
        self._running = False
        #: Optional observability hook ``(now, events_processed) -> None``,
        #: invoked after each executed event.  ``None`` (the default) costs
        #: one attribute check per event; the hook must not schedule events
        #: or touch any RNG so instrumented runs stay deterministic.
        self.event_hook: Optional[Callable[[float, int], None]] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (diagnostic)."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of events still in the heap, including cancelled ones."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots (diagnostic)."""
        return self._cancelled_pending

    @property
    def compactions(self) -> int:
        """Number of heap compactions performed so far (diagnostic)."""
        return self._compactions

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback after
        all events already scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        event = ScheduledEvent(time, self._seq, fn, args)
        event._sim = self
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Heap compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`ScheduledEvent.cancel` while the event is heaped.

        Long chaos runs cancel timers constantly (heartbeats, retry
        backoffs); without compaction those tombstones accumulate until
        they are popped, which for far-future deadlines can take the whole
        run.  Once cancelled events outnumber live ones (and the heap is
        big enough to matter), rebuild the heap without them.
        """
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        Cancelled events are discarded silently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = event.time
            fn, args = event.fn, event.args
            # Release the handle's references before running, so an event
            # rescheduling itself does not grow memory.  The back-reference
            # is dropped first: this event already left the heap, so its
            # self-cancel must not count toward the compaction trigger.
            event._sim = None
            event.cancel()
            self._events_processed += 1
            assert fn is not None
            fn(*args)
            hook = self.event_hook
            if hook is not None:
                hook(self._now, self._events_processed)
            return True
        return False

    def run_until(self, time: float) -> None:
        """Run all events with timestamp <= ``time``; advance clock to ``time``.

        The clock always ends exactly at ``time`` even if the heap drains
        early, so periodic processes can be resumed from a known instant.
        """
        if time < self._now:
            raise ValueError(f"cannot run backwards: {time} < {self._now}")
        self._running = True
        try:
            while self._heap:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    self._cancelled_pending -= 1
                    continue
                if head.time > time:
                    break
                self.step()
        finally:
            self._running = False
        self._now = time

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event heap is exhausted.

        ``max_events`` bounds the number of events executed -- a safety net
        against accidental infinite self-rescheduling loops.
        """
        executed = 0
        self._running = True
        try:
            while self.step():
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded max_events={max_events}; "
                        "likely a runaway periodic process"
                    )
        finally:
            self._running = False
