"""The discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock (a float, in seconds) and a queue
of pending events.  Components schedule callbacks at future points in time;
:meth:`Simulator.run_until` pops events in timestamp order and invokes
them.  Ties are broken by insertion order, which makes runs fully
deterministic for a fixed seed.

Two interchangeable event-queue implementations are provided:

* ``scheduler="heap"`` (the default): a binary heap of ``(time, seq,
  event)`` tuples.  Tuple entries keep every comparison inside C -- the
  ``(time, seq)`` prefix is unique, so the event object itself is never
  compared.
* ``scheduler="calendar"``: a calendar queue -- events are appended O(1)
  into fixed-width time buckets and each bucket is sorted once when the
  clock enters it.  Profitable for workloads that schedule dense bursts of
  near-simultaneous events (large fan-out batches); ordering semantics are
  byte-identical to the heap.

Both queues share the *fire-and-forget entry* representation used by
:meth:`Simulator.schedule_batch`: bulk callers that never need a cancel
handle (the transport's fan-out path) enqueue plain ``(time, seq, None,
fn, args)`` tuples instead of allocating a ``ScheduledEvent`` per
message -- the run loop skips all handle bookkeeping for them.
"""

from __future__ import annotations

import gc
import heapq
from bisect import insort
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Queue entry.  Two shapes share every queue:
#:
#: * ``(time, seq, event)`` -- a cancellable :class:`ScheduledEvent` handle
#:   created by :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`.
#: * ``(time, seq, None, fn, args)`` -- a *fire-and-forget* entry created by
#:   :meth:`Simulator.schedule_batch`; no handle object exists at all.
#:
#: The ``(time, seq)`` prefix is unique, so tuple comparison never falls
#: through to the third element and the two shapes order consistently.
_Entry = Tuple[Any, ...]


class ScheduledEvent:
    """Handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule`; calling :meth:`cancel` prevents
    the callback from firing (cancellation is O(1) -- the event stays in the
    queue but is skipped when popped).

    :meth:`Simulator.schedule_batch` never creates these at all: batch
    events are enqueued as plain fire-and-forget tuples with no handle.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self, time: float, seq: int, fn: Callable[..., None], args: Tuple[Any, ...]
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., None]] = fn
        self.args = args
        self.cancelled = False
        #: back-reference to the owning simulator while the event is in its
        #: queue, so cancellations can be counted for compaction.
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled events do not pin large objects in
        # memory while they wait to be popped from the queue.
        self.fn = None
        self.args = ()
        sim = self._sim
        self._sim = None
        if sim is not None:
            sim._note_cancelled()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second in"))
        sim.run_until(10.0)

    The clock unit is seconds.  Events scheduled for the same instant fire in
    the order they were scheduled, regardless of the queue implementation.
    """

    #: Compaction floor: queues smaller than this are never compacted (the
    #: rebuild would cost more than the memory it frees).
    COMPACT_MIN_CANCELLED = 64

    #: Executed events between explicit young-generation collections while
    #: the managed GC policy is active.
    GC_MAINTENANCE_EVENTS = 1_000_000

    def __init__(
        self,
        *,
        scheduler: str = "heap",
        calendar_bucket_s: float = 0.01,
        gc_managed: bool = False,
    ) -> None:
        if scheduler not in ("heap", "calendar"):
            raise ValueError(f"unknown scheduler: {scheduler!r}")
        if calendar_bucket_s <= 0:
            raise ValueError(f"calendar_bucket_s must be positive: {calendar_bucket_s!r}")
        self.scheduler = scheduler
        #: Managed GC policy (opt-in): on first entry into a run loop the
        #: long-lived object graph built so far (topology: actors, clients,
        #: connections) is collected once and frozen into the permanent
        #: generation, and automatic collection is suspended while events
        #: execute -- CPython's default full-heap collections otherwise
        #: re-scan the entire static topology every ~70k allocations, which
        #: dominates large fan-out runs.  Explicit young-generation
        #: collections every :data:`GC_MAINTENANCE_EVENTS` events keep
        #: cyclic garbage bounded.  Automatic GC is re-enabled whenever the
        #: run loop returns.  The policy never affects simulation results,
        #: only wall-clock time.
        self.gc_managed = gc_managed
        self._gc_frozen = False
        self._now: float = 0.0
        self._seq: int = 0
        self._events_processed: int = 0
        self._cancelled_pending: int = 0
        self._compactions: int = 0
        self._running = False
        # --- heap scheduler state ---
        self._heap: List[_Entry] = []
        # --- calendar scheduler state ---
        self._use_calendar = scheduler == "calendar"
        self._bucket_s = calendar_bucket_s
        #: bucket index -> unsorted list of entries (sorted lazily when the
        #: clock enters the bucket)
        self._buckets: Dict[int, List[_Entry]] = {}
        #: min-heap of bucket indices with (possibly stale) pending entries
        self._bucket_heap: List[int] = []
        #: bucket currently being drained: sorted entries + read cursor
        self._current: List[_Entry] = []
        self._current_idx: int = 0
        self._current_key: Optional[int] = None
        self._cal_count: int = 0
        #: set whenever an insert lands in a bucket *earlier* than the one
        #: being drained -- the run loop then re-checks bucket order once
        #: instead of probing the bucket heap on every event.
        self._cal_earlier: bool = False
        #: Optional observability hook ``(now, events_processed) -> None``,
        #: invoked after each executed event.  Hoisted into a local at run
        #: entry (``None`` then costs nothing per event), so it must be
        #: installed *before* entering a run loop, never from inside an
        #: executing event; the hook must not schedule events or touch any
        #: RNG so instrumented runs stay deterministic.
        self.event_hook: Optional[Callable[[float, int], None]] = None
        #: Optional sim-profiler (``repro.obs.profile.SimProfiler``-shaped:
        #: anything with ``record_event(fn, now)``).  Fed the executed
        #: callback after each event; same determinism contract as
        #: :attr:`event_hook` (counts and virtual time only, no wall clock).
        self.profiler: Optional[Any] = None
        #: Low-frequency sampling hook installed via :meth:`set_sample_hook`;
        #: unlike :attr:`event_hook` it fires only every ``sample_every``
        #: executed events, so per-event cost is one integer compare.
        self.sample_hook: Optional[Callable[[float, int], None]] = None
        self.sample_every: int = 0
        self._sample_next: float = float("inf")

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (diagnostic)."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of events still queued, including cancelled ones."""
        if self._use_calendar:
            return self._cal_count
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying queue slots (diagnostic)."""
        return self._cancelled_pending

    @property
    def compactions(self) -> int:
        """Number of queue compactions performed so far (diagnostic)."""
        return self._compactions

    @property
    def running(self) -> bool:
        """True while :meth:`run` / :meth:`run_until` is executing events."""
        return self._running

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback after
        all events already scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time, seq, fn, args)
        event._sim = self
        if self._use_calendar:
            self._cal_insert((time, seq, event))
        else:
            heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule_batch(
        self,
        fn: Callable[..., None],
        times: Sequence[float],
        args_seq: Sequence[Tuple[Any, ...]],
    ) -> int:
        """Bulk-schedule ``fn(*args)`` at many absolute times.

        ``times`` and ``args_seq`` are parallel sequences (kept separate so
        bulk callers need not build a pair tuple per event).  Batch events
        are enqueued as fire-and-forget ``(time, seq, None, fn, args)``
        tuples: no :class:`ScheduledEvent` is allocated, no handle is
        returned, and batch events cannot be cancelled by callers -- in
        exchange the run loop pays zero handle bookkeeping for them.
        Returns the number of events scheduled.
        """
        now = self._now
        seq = self._seq
        heap = self._heap
        push = heapq.heappush
        count = 0
        if self._use_calendar:
            # Inlined _cal_insert with a same-bucket fast path: fan-out
            # batches land overwhelmingly in one bucket (near-identical
            # delivery times), so after the first insert each event is a
            # single compare + append instead of a method call, a divide,
            # and a dict probe.
            bucket_s = self._bucket_s
            buckets = self._buckets
            current_key = self._current_key
            last_key: Optional[int] = None
            last_bucket: Optional[List[_Entry]] = None
            for time, args in zip(times, args_seq):
                if time < now:
                    raise ValueError(f"cannot schedule in the past: {time} < {now}")
                entry = (time, seq, None, fn, args)
                key = int(time / bucket_s)
                if key == last_key:
                    last_bucket.append(entry)  # type: ignore[union-attr]
                elif current_key is not None and key == current_key:
                    insort(self._current, entry, lo=self._current_idx)
                else:
                    if current_key is not None and key < current_key:
                        self._cal_earlier = True
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = bucket = [entry]
                        push(self._bucket_heap, key)
                    else:
                        bucket.append(entry)
                    last_key = key
                    last_bucket = bucket
                seq += 1
                count += 1
            self._cal_count += count
        else:
            for time, args in zip(times, args_seq):
                if time < now:
                    raise ValueError(f"cannot schedule in the past: {time} < {now}")
                push(heap, (time, seq, None, fn, args))
                seq += 1
                count += 1
        self._seq = seq
        return count

    # ------------------------------------------------------------------
    # Calendar queue internals
    # ------------------------------------------------------------------
    def _cal_insert(self, entry: _Entry) -> None:
        key = int(entry[0] / self._bucket_s)
        current_key = self._current_key
        if current_key is not None and key == current_key:
            # The bucket being drained: keep the not-yet-consumed tail
            # sorted.  ``lo`` bounds the bisect to the unread portion.
            insort(self._current, entry, lo=self._current_idx)
        else:
            if current_key is not None and key < current_key:
                self._cal_earlier = True
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = [entry]
                heapq.heappush(self._bucket_heap, key)
            else:
                bucket.append(entry)
        self._cal_count += 1

    def _cal_stash_current(self) -> None:
        """Push the unread remainder of the current bucket back."""
        remainder = self._current[self._current_idx:]
        key = self._current_key
        self._current = []
        self._current_idx = 0
        self._current_key = None
        if remainder and key is not None:
            existing = self._buckets.get(key)
            if existing is None:
                self._buckets[key] = remainder
                heapq.heappush(self._bucket_heap, key)
            else:
                existing.extend(remainder)

    def _cal_head(self) -> Optional[_Entry]:
        """The next entry in (time, seq) order, without consuming it."""
        while True:
            if self._current_idx < len(self._current):
                # A schedule_at into an *earlier* bucket (possible when the
                # clock idles behind the drained bucket) must win over the
                # current bucket's remainder.
                bucket_heap = self._bucket_heap
                current_key = self._current_key
                if (
                    bucket_heap
                    and current_key is not None
                    and bucket_heap[0] < current_key
                    and self._buckets.get(bucket_heap[0])
                ):
                    self._cal_stash_current()
                    continue
                return self._current[self._current_idx]
            # Current bucket exhausted: load the next non-empty one.
            self._current = []
            self._current_idx = 0
            self._current_key = None
            while self._bucket_heap:
                key = self._bucket_heap[0]
                bucket = self._buckets.get(key)
                if not bucket:
                    heapq.heappop(self._bucket_heap)  # stale index
                    self._buckets.pop(key, None)
                    continue
                heapq.heappop(self._bucket_heap)
                del self._buckets[key]
                bucket.sort()
                self._current = bucket
                self._current_key = key
                break
            else:
                return None

    def _cal_pop(self) -> _Entry:
        entry = self._current[self._current_idx]
        self._current_idx += 1
        self._cal_count -= 1
        if self._current_idx >= len(self._current):
            self._current = []
            self._current_idx = 0
            self._current_key = None
        return entry

    # ------------------------------------------------------------------
    # Queue compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`ScheduledEvent.cancel` while the event is queued.

        Long chaos runs cancel timers constantly (heartbeats, retry
        backoffs); without compaction those tombstones accumulate until
        they are popped, which for far-future deadlines can take the whole
        run.  Once cancelled events outnumber live ones (and the queue is
        big enough to matter), rebuild the queue without them.
        """
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_pending * 2 > self.pending_count
        ):
            self._compact()

    def _compact(self) -> None:
        if self._use_calendar:
            self._cal_stash_current()
            compacted: Dict[int, List[_Entry]] = {}
            count = 0
            for key, bucket in self._buckets.items():
                live = []
                for entry in bucket:
                    event = entry[2]
                    # Fire-and-forget entries (event is None) cannot be
                    # cancelled; only ScheduledEvent tombstones are dropped.
                    if event is None or not event.cancelled:
                        live.append(entry)
                if live:
                    compacted[key] = live
                    count += len(live)
            self._buckets = compacted
            self._bucket_heap = list(compacted)
            heapq.heapify(self._bucket_heap)
            self._cal_count = count
        else:
            live_entries = []
            for entry in self._heap:
                event = entry[2]
                if event is None or not event.cancelled:
                    live_entries.append(entry)
            self._heap = live_entries
            heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def set_sample_hook(
        self, fn: Optional[Callable[[float, int], None]], every: int = 100_000
    ) -> None:
        """Install (or clear, with ``fn=None``) the periodic sampling hook.

        ``fn(now, events_processed)`` fires after every ``every`` executed
        events -- used by the bench harness for RSS time series.  The hook
        must follow the :attr:`event_hook` determinism contract.
        """
        if fn is None:
            self.sample_hook = None
            self.sample_every = 0
            self._sample_next = float("inf")
            return
        if every < 1:
            raise ValueError(f"sample_every must be >= 1: {every!r}")
        self.sample_hook = fn
        self.sample_every = every
        self._sample_next = self._events_processed + every

    def _execute(self, entry: _Entry) -> None:
        """Run one queue entry's callback and fire the instrumentation hooks.

        For :class:`ScheduledEvent` entries the handle state is released
        *before* running so an event rescheduling itself does not grow
        memory; fire-and-forget entries carry no handle to release.
        """
        event = entry[2]
        if event is None:
            fn = entry[3]
            args = entry[4]
        else:
            fn = event.fn
            args = event.args
            assert fn is not None  # non-cancelled events carry a callback
            # This event already left the queue, so its self-cancel must
            # not count toward the compaction trigger.
            event._sim = None
            event.cancelled = True
            event.fn = None
            event.args = ()
        self._events_processed += 1
        fn(*args)
        hook = self.event_hook
        if hook is not None:
            hook(self._now, self._events_processed)
        profiler = self.profiler
        if profiler is not None:
            profiler.record_event(fn, self._now)
        if self._events_processed >= self._sample_next:
            self._sample_next = self._events_processed + self.sample_every
            sample = self.sample_hook
            if sample is not None:
                sample(self._now, self._events_processed)

    def _gc_suspend(self) -> bool:
        """Apply the managed GC policy on run-loop entry.

        Returns ``True`` when automatic collection was disabled here and
        must be re-enabled when the loop exits.  Re-entrant runs are safe:
        the nested call sees collection already disabled and does nothing.
        """
        if not self.gc_managed or not gc.isenabled():
            return False
        if not self._gc_frozen:
            # One full collection before the very first freeze, so dead
            # setup-time cycles do not get pinned forever.
            gc.collect()
            self._gc_frozen = True
        # Freeze on *every* entry, not just the first: topology wired during
        # an earlier run (e.g. a subscription storm inside the warm-up
        # ``run_until``) would otherwise sit in the young generations for
        # the whole process -- automatic collection is disabled while events
        # execute, so nothing ever promotes it -- and every mid-run
        # maintenance collection would re-scan all of it.  Freezing is a
        # cheap list splice; anything alive right now is long-lived by
        # construction.  Cycles alive at a freeze point stay uncollectable
        # for the process lifetime, which is acceptable for bounded
        # simulation runs and never affects results.
        gc.freeze()
        gc.disable()
        return True

    @staticmethod
    def gc_release() -> None:
        """Undo the managed policy's freezes and reclaim dead cycles.

        ``gc.freeze`` is process-global: once a managed run froze its
        topology, that graph stays uncollectable even after the simulation
        is dropped.  A harness running several independent simulations in
        one process (bench repeats, sweep workers) calls this between runs
        so each finished topology's cycles are actually reclaimed.
        """
        gc.unfreeze()
        gc.collect()

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        Cancelled events are discarded silently.
        """
        if self._use_calendar:
            while True:
                entry = self._cal_head()
                if entry is None:
                    return False
                self._cal_pop()
                event = entry[2]
                if event is not None and event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._now = entry[0]
                self._execute(entry)
                return True
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            event = entry[2]
            if event is not None and event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = entry[0]
            self._execute(entry)
            return True
        return False

    def run_until(self, time: float) -> None:
        """Run all events with timestamp <= ``time``; advance clock to ``time``.

        The clock always ends exactly at ``time`` even if the queue drains
        early, so periodic processes can be resumed from a known instant.
        """
        if time < self._now:
            raise ValueError(f"cannot run backwards: {time} < {self._now}")
        gc_restore = self._gc_suspend()
        gc_next = (
            self._events_processed + self.GC_MAINTENANCE_EVENTS
            if gc_restore
            else float("inf")
        )
        self._running = True
        try:
            # Instrumentation hooks are hoisted into locals once per run
            # entry: a None hook costs nothing per event instead of an
            # attribute load + test.  Hooks must therefore be installed
            # before the run loop starts (Tracer.attach_kernel and the
            # bench harness both do), never from inside an executing
            # event.
            hook = self.event_hook
            profiler = self.profiler
            pause_next = self._sample_next if self._sample_next < gc_next else gc_next
            if self._use_calendar:
                # Like the heap loop below, the calendar loop inlines
                # _cal_head()/_cal_pop()/_execute() for the common case
                # (next entry comes from the already-sorted current
                # bucket); bucket transitions fall back to _cal_head().
                while True:
                    current = self._current
                    idx = self._current_idx
                    if idx < len(current):
                        if self._cal_earlier:
                            # An insert landed in a bucket earlier than the
                            # one being drained: re-check bucket order.  The
                            # flag is set at insert time so the steady-state
                            # loop pays one attribute test instead of a
                            # bucket-heap probe per event.
                            self._cal_earlier = False
                            bucket_heap = self._bucket_heap
                            current_key = self._current_key
                            if (
                                bucket_heap
                                and current_key is not None
                                and bucket_heap[0] < current_key
                                and self._buckets.get(bucket_heap[0])
                            ):
                                self._cal_stash_current()
                                continue
                        entry = current[idx]
                    else:
                        entry = self._cal_head()
                        if entry is None:
                            break
                        current = self._current
                        idx = self._current_idx
                    if entry[0] > time:
                        break
                    # -- inline _cal_pop --
                    idx += 1
                    self._cal_count -= 1
                    if idx >= len(current):
                        self._current = []
                        self._current_idx = 0
                        self._current_key = None
                    else:
                        self._current_idx = idx
                    event = entry[2]
                    if event is None:
                        # Fire-and-forget batch entry: no handle state to
                        # release, cannot be cancelled.
                        fn = entry[3]
                        args = entry[4]
                    elif event.cancelled:
                        self._cancelled_pending -= 1
                        continue
                    else:
                        fn = event.fn
                        args = event.args
                        # Already out of the queue: the self-cancel marker
                        # must not count toward the compaction trigger.
                        event._sim = None
                        event.cancelled = True
                        event.fn = None
                        event.args = ()
                    self._now = entry[0]
                    self._events_processed += 1
                    fn(*args)
                    if hook is not None:
                        hook(self._now, self._events_processed)
                    if profiler is not None:
                        profiler.record_event(fn, self._now)
                    if self._events_processed >= pause_next:
                        # Combined threshold: one compare per event covers
                        # both the sampling hook and GC maintenance.
                        if self._events_processed >= self._sample_next:
                            self._sample_next = (
                                self._events_processed + self.sample_every
                            )
                            sample = self.sample_hook
                            if sample is not None:
                                sample(self._now, self._events_processed)
                        if self._events_processed >= gc_next:
                            gc.collect(1)
                            gc_next = (
                                self._events_processed + self.GC_MAINTENANCE_EVENTS
                            )
                        pause_next = (
                            self._sample_next
                            if self._sample_next < gc_next
                            else gc_next
                        )
            else:
                # The heap loop is the simulator's hottest code: _execute()
                # is inlined to shave per-event call overhead (identical
                # observable behaviour).
                heap = self._heap
                pop = heapq.heappop
                while heap:
                    entry = heap[0]
                    event = entry[2]
                    if event is not None and event.cancelled:
                        pop(heap)
                        self._cancelled_pending -= 1
                        continue
                    if entry[0] > time:
                        break
                    pop(heap)
                    self._now = entry[0]
                    if event is None:
                        # Fire-and-forget batch entry: no handle state to
                        # release, cannot be cancelled.
                        fn = entry[3]
                        args = entry[4]
                    else:
                        fn = event.fn
                        args = event.args
                        # Already out of the queue: the self-cancel marker
                        # must not count toward the compaction trigger.
                        event._sim = None
                        event.cancelled = True
                        event.fn = None
                        event.args = ()
                    self._events_processed += 1
                    fn(*args)
                    if hook is not None:
                        hook(self._now, self._events_processed)
                    if profiler is not None:
                        profiler.record_event(fn, self._now)
                    if heap is not self._heap:
                        heap = self._heap  # compaction rebuilt it
                    if self._events_processed >= pause_next:
                        # Combined threshold: one compare per event covers
                        # both the sampling hook and GC maintenance.
                        if self._events_processed >= self._sample_next:
                            self._sample_next = (
                                self._events_processed + self.sample_every
                            )
                            sample = self.sample_hook
                            if sample is not None:
                                sample(self._now, self._events_processed)
                        if self._events_processed >= gc_next:
                            gc.collect(1)
                            gc_next = (
                                self._events_processed + self.GC_MAINTENANCE_EVENTS
                            )
                        pause_next = (
                            self._sample_next
                            if self._sample_next < gc_next
                            else gc_next
                        )
        finally:
            self._running = False
            if gc_restore:
                gc.enable()
        self._now = time

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue is exhausted.

        ``max_events`` bounds the number of events executed -- a safety net
        against accidental infinite self-rescheduling loops.  When the bound
        trips, a ``RuntimeError`` is raised with the simulator left in a
        clean, resumable state: :attr:`running` is ``False``, the clock
        stays at the last executed event, and the remaining queue is intact.
        """
        executed = 0
        gc_restore = self._gc_suspend()
        self._running = True
        try:
            while self.step():
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded max_events={max_events}; "
                        "likely a runaway periodic process"
                    )
        finally:
            self._running = False
            if gc_restore:
                gc.enable()
