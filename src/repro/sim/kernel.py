"""The discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock (a float, in seconds) and a queue
of pending events.  Components schedule callbacks at future points in time;
:meth:`Simulator.run_until` pops events in timestamp order and invokes
them.  Ties are broken by insertion order, which makes runs fully
deterministic for a fixed seed.

Two interchangeable event-queue implementations are provided:

* ``scheduler="heap"`` (the default): a binary heap of ``(time, seq,
  event)`` tuples.  Tuple entries keep every comparison inside C -- the
  ``(time, seq)`` prefix is unique, so the event object itself is never
  compared.
* ``scheduler="calendar"``: a calendar queue -- events are appended O(1)
  into fixed-width time buckets and each bucket is sorted once when the
  clock enters it.  Profitable for workloads that schedule dense bursts of
  near-simultaneous events (large fan-out batches); ordering semantics are
  byte-identical to the heap.

Both queues share the free-list *event pool* used by
:meth:`Simulator.schedule_batch`: bulk callers that never need a cancel
handle (the transport's fan-out path) recycle ``ScheduledEvent`` objects
instead of allocating one per message.
"""

from __future__ import annotations

import gc
import heapq
from bisect import insort
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Queue entry: ``(time, seq, event)``.  The (time, seq) prefix is unique,
#: so tuple comparison never falls through to the event object.
_Entry = Tuple[float, int, "ScheduledEvent"]


class ScheduledEvent:
    """Handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule`; calling :meth:`cancel` prevents
    the callback from firing (cancellation is O(1) -- the event stays in the
    queue but is skipped when popped).

    Events created through :meth:`Simulator.schedule_batch` are *pooled*:
    no handle escapes, and the object is recycled once it leaves the queue.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim", "_pooled")

    def __init__(
        self, time: float, seq: int, fn: Callable[..., None], args: Tuple[Any, ...]
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., None]] = fn
        self.args = args
        self.cancelled = False
        #: back-reference to the owning simulator while the event is in its
        #: queue, so cancellations can be counted for compaction.
        self._sim: Optional["Simulator"] = None
        #: pooled events are recycled when they leave the queue; they must
        #: never hand a handle to external code.
        self._pooled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled events do not pin large objects in
        # memory while they wait to be popped from the queue.
        self.fn = None
        self.args = ()
        sim = self._sim
        self._sim = None
        if sim is not None:
            sim._note_cancelled()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second in"))
        sim.run_until(10.0)

    The clock unit is seconds.  Events scheduled for the same instant fire in
    the order they were scheduled, regardless of the queue implementation.
    """

    #: Compaction floor: queues smaller than this are never compacted (the
    #: rebuild would cost more than the memory it frees).
    COMPACT_MIN_CANCELLED = 64

    #: Maximum recycled events kept in the free list.
    POOL_MAX = 8192

    #: Executed events between explicit young-generation collections while
    #: the managed GC policy is active.
    GC_MAINTENANCE_EVENTS = 1_000_000

    def __init__(
        self,
        *,
        scheduler: str = "heap",
        calendar_bucket_s: float = 0.01,
        gc_managed: bool = False,
    ) -> None:
        if scheduler not in ("heap", "calendar"):
            raise ValueError(f"unknown scheduler: {scheduler!r}")
        if calendar_bucket_s <= 0:
            raise ValueError(f"calendar_bucket_s must be positive: {calendar_bucket_s!r}")
        self.scheduler = scheduler
        #: Managed GC policy (opt-in): on first entry into a run loop the
        #: long-lived object graph built so far (topology: actors, clients,
        #: connections) is collected once and frozen into the permanent
        #: generation, and automatic collection is suspended while events
        #: execute -- CPython's default full-heap collections otherwise
        #: re-scan the entire static topology every ~70k allocations, which
        #: dominates large fan-out runs.  Explicit young-generation
        #: collections every :data:`GC_MAINTENANCE_EVENTS` events keep
        #: cyclic garbage bounded.  Automatic GC is re-enabled whenever the
        #: run loop returns.  The policy never affects simulation results,
        #: only wall-clock time.
        self.gc_managed = gc_managed
        self._gc_frozen = False
        self._now: float = 0.0
        self._seq: int = 0
        self._events_processed: int = 0
        self._cancelled_pending: int = 0
        self._compactions: int = 0
        self._running = False
        self._pool: List[ScheduledEvent] = []
        # --- heap scheduler state ---
        self._heap: List[_Entry] = []
        # --- calendar scheduler state ---
        self._use_calendar = scheduler == "calendar"
        self._bucket_s = calendar_bucket_s
        #: bucket index -> unsorted list of entries (sorted lazily when the
        #: clock enters the bucket)
        self._buckets: Dict[int, List[_Entry]] = {}
        #: min-heap of bucket indices with (possibly stale) pending entries
        self._bucket_heap: List[int] = []
        #: bucket currently being drained: sorted entries + read cursor
        self._current: List[_Entry] = []
        self._current_idx: int = 0
        self._current_key: Optional[int] = None
        self._cal_count: int = 0
        #: Optional observability hook ``(now, events_processed) -> None``,
        #: invoked after each executed event.  ``None`` (the default) costs
        #: one attribute check per event; the hook must not schedule events
        #: or touch any RNG so instrumented runs stay deterministic.
        self.event_hook: Optional[Callable[[float, int], None]] = None
        #: Optional sim-profiler (``repro.obs.profile.SimProfiler``-shaped:
        #: anything with ``record_event(fn, now)``).  Fed the executed
        #: callback after each event; same determinism contract as
        #: :attr:`event_hook` (counts and virtual time only, no wall clock).
        self.profiler: Optional[Any] = None
        #: Low-frequency sampling hook installed via :meth:`set_sample_hook`;
        #: unlike :attr:`event_hook` it fires only every ``sample_every``
        #: executed events, so per-event cost is one integer compare.
        self.sample_hook: Optional[Callable[[float, int], None]] = None
        self.sample_every: int = 0
        self._sample_next: float = float("inf")

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (diagnostic)."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of events still queued, including cancelled ones."""
        if self._use_calendar:
            return self._cal_count
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying queue slots (diagnostic)."""
        return self._cancelled_pending

    @property
    def compactions(self) -> int:
        """Number of queue compactions performed so far (diagnostic)."""
        return self._compactions

    @property
    def running(self) -> bool:
        """True while :meth:`run` / :meth:`run_until` is executing events."""
        return self._running

    @property
    def pooled_free(self) -> int:
        """Recycled events currently in the free list (diagnostic)."""
        return len(self._pool)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback after
        all events already scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time, seq, fn, args)
        event._sim = self
        if self._use_calendar:
            self._cal_insert((time, seq, event))
        else:
            heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule_batch(
        self,
        fn: Callable[..., None],
        times: Sequence[float],
        args_seq: Sequence[Tuple[Any, ...]],
    ) -> int:
        """Bulk-schedule ``fn(*args)`` at many absolute times.

        ``times`` and ``args_seq`` are parallel sequences (kept separate so
        bulk callers need not build a pair tuple per event).  Events are
        drawn from the free-list pool and recycled when they leave the
        queue, so no handle is returned -- batch events cannot be cancelled
        by callers.  Returns the number of events scheduled.
        """
        now = self._now
        seq = self._seq
        pool = self._pool
        use_calendar = self._use_calendar
        heap = self._heap
        push = heapq.heappush
        count = 0
        for time, args in zip(times, args_seq):
            if time < now:
                raise ValueError(f"cannot schedule in the past: {time} < {now}")
            if pool:
                event = pool.pop()
                event.time = time
                event.seq = seq
                event.fn = fn
                event.args = args
            else:
                event = ScheduledEvent(time, seq, fn, args)
                event._pooled = True
            event._sim = self
            if use_calendar:
                self._cal_insert((time, seq, event))
            else:
                push(heap, (time, seq, event))
            seq += 1
            count += 1
        self._seq = seq
        return count

    def _recycle(self, event: ScheduledEvent) -> None:
        """Return a pooled event that left the queue to the free list."""
        event.fn = None
        event.args = ()
        event._sim = None
        event.cancelled = False
        if len(self._pool) < self.POOL_MAX:
            self._pool.append(event)

    # ------------------------------------------------------------------
    # Calendar queue internals
    # ------------------------------------------------------------------
    def _cal_insert(self, entry: _Entry) -> None:
        key = int(entry[0] / self._bucket_s)
        current_key = self._current_key
        if current_key is not None and key == current_key:
            # The bucket being drained: keep the not-yet-consumed tail
            # sorted.  ``lo`` bounds the bisect to the unread portion.
            insort(self._current, entry, lo=self._current_idx)
        else:
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = [entry]
                heapq.heappush(self._bucket_heap, key)
            else:
                bucket.append(entry)
        self._cal_count += 1

    def _cal_stash_current(self) -> None:
        """Push the unread remainder of the current bucket back."""
        remainder = self._current[self._current_idx:]
        key = self._current_key
        self._current = []
        self._current_idx = 0
        self._current_key = None
        if remainder and key is not None:
            existing = self._buckets.get(key)
            if existing is None:
                self._buckets[key] = remainder
                heapq.heappush(self._bucket_heap, key)
            else:
                existing.extend(remainder)

    def _cal_head(self) -> Optional[_Entry]:
        """The next entry in (time, seq) order, without consuming it."""
        while True:
            if self._current_idx < len(self._current):
                # A schedule_at into an *earlier* bucket (possible when the
                # clock idles behind the drained bucket) must win over the
                # current bucket's remainder.
                bucket_heap = self._bucket_heap
                current_key = self._current_key
                if (
                    bucket_heap
                    and current_key is not None
                    and bucket_heap[0] < current_key
                    and self._buckets.get(bucket_heap[0])
                ):
                    self._cal_stash_current()
                    continue
                return self._current[self._current_idx]
            # Current bucket exhausted: load the next non-empty one.
            self._current = []
            self._current_idx = 0
            self._current_key = None
            while self._bucket_heap:
                key = self._bucket_heap[0]
                bucket = self._buckets.get(key)
                if not bucket:
                    heapq.heappop(self._bucket_heap)  # stale index
                    self._buckets.pop(key, None)
                    continue
                heapq.heappop(self._bucket_heap)
                del self._buckets[key]
                bucket.sort()
                self._current = bucket
                self._current_key = key
                break
            else:
                return None

    def _cal_pop(self) -> _Entry:
        entry = self._current[self._current_idx]
        self._current_idx += 1
        self._cal_count -= 1
        if self._current_idx >= len(self._current):
            self._current = []
            self._current_idx = 0
            self._current_key = None
        return entry

    # ------------------------------------------------------------------
    # Queue compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`ScheduledEvent.cancel` while the event is queued.

        Long chaos runs cancel timers constantly (heartbeats, retry
        backoffs); without compaction those tombstones accumulate until
        they are popped, which for far-future deadlines can take the whole
        run.  Once cancelled events outnumber live ones (and the queue is
        big enough to matter), rebuild the queue without them.
        """
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_pending * 2 > self.pending_count
        ):
            self._compact()

    def _compact(self) -> None:
        if self._use_calendar:
            self._cal_stash_current()
            compacted: Dict[int, List[_Entry]] = {}
            count = 0
            for key, bucket in self._buckets.items():
                live = []
                for entry in bucket:
                    event = entry[2]
                    if event.cancelled:
                        if event._pooled:
                            self._recycle(event)
                    else:
                        live.append(entry)
                if live:
                    compacted[key] = live
                    count += len(live)
            self._buckets = compacted
            self._bucket_heap = list(compacted)
            heapq.heapify(self._bucket_heap)
            self._cal_count = count
        else:
            live_entries = []
            for entry in self._heap:
                event = entry[2]
                if event.cancelled:
                    if event._pooled:
                        self._recycle(event)
                else:
                    live_entries.append(entry)
            self._heap = live_entries
            heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def set_sample_hook(
        self, fn: Optional[Callable[[float, int], None]], every: int = 100_000
    ) -> None:
        """Install (or clear, with ``fn=None``) the periodic sampling hook.

        ``fn(now, events_processed)`` fires after every ``every`` executed
        events -- used by the bench harness for RSS time series.  The hook
        must follow the :attr:`event_hook` determinism contract.
        """
        if fn is None:
            self.sample_hook = None
            self.sample_every = 0
            self._sample_next = float("inf")
            return
        if every < 1:
            raise ValueError(f"sample_every must be >= 1: {every!r}")
        self.sample_hook = fn
        self.sample_every = every
        self._sample_next = self._events_processed + every

    def _execute(self, event: ScheduledEvent) -> None:
        """Release ``event``'s handle state, run its callback, fire the hook.

        The handle is released *before* running so an event rescheduling
        itself does not grow memory; pooled events go straight back to the
        free list (their args are captured in locals first).
        """
        fn = event.fn
        args = event.args
        assert fn is not None  # non-cancelled events always carry a callback
        if event._pooled:
            self._recycle(event)
        else:
            # This event already left the queue, so its self-cancel must
            # not count toward the compaction trigger.
            event._sim = None
            event.cancelled = True
            event.fn = None
            event.args = ()
        self._events_processed += 1
        fn(*args)
        hook = self.event_hook
        if hook is not None:
            hook(self._now, self._events_processed)
        profiler = self.profiler
        if profiler is not None:
            profiler.record_event(fn, self._now)
        if self._events_processed >= self._sample_next:
            self._sample_next = self._events_processed + self.sample_every
            sample = self.sample_hook
            if sample is not None:
                sample(self._now, self._events_processed)

    def _gc_suspend(self) -> bool:
        """Apply the managed GC policy on run-loop entry.

        Returns ``True`` when automatic collection was disabled here and
        must be re-enabled when the loop exits.  Re-entrant runs are safe:
        the nested call sees collection already disabled and does nothing.
        """
        if not self.gc_managed or not gc.isenabled():
            return False
        if not self._gc_frozen:
            # One full collection, then freeze the surviving long-lived
            # graph so later collections never re-scan it.
            gc.collect()
            gc.freeze()
            self._gc_frozen = True
        gc.disable()
        return True

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        Cancelled events are discarded silently.
        """
        if self._use_calendar:
            while True:
                entry = self._cal_head()
                if entry is None:
                    return False
                self._cal_pop()
                event = entry[2]
                if event.cancelled:
                    self._cancelled_pending -= 1
                    if event._pooled:
                        self._recycle(event)
                    continue
                self._now = entry[0]
                self._execute(event)
                return True
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            event = entry[2]
            if event.cancelled:
                self._cancelled_pending -= 1
                if event._pooled:
                    self._recycle(event)
                continue
            self._now = entry[0]
            self._execute(event)
            return True
        return False

    def run_until(self, time: float) -> None:
        """Run all events with timestamp <= ``time``; advance clock to ``time``.

        The clock always ends exactly at ``time`` even if the queue drains
        early, so periodic processes can be resumed from a known instant.
        """
        if time < self._now:
            raise ValueError(f"cannot run backwards: {time} < {self._now}")
        gc_restore = self._gc_suspend()
        gc_next = (
            self._events_processed + self.GC_MAINTENANCE_EVENTS
            if gc_restore
            else float("inf")
        )
        self._running = True
        try:
            if self._use_calendar:
                # Like the heap loop below, the calendar loop inlines
                # _cal_head()/_cal_pop()/_execute() for the common case
                # (next entry comes from the already-sorted current
                # bucket); bucket transitions fall back to _cal_head().
                pool = self._pool
                pool_max = self.POOL_MAX
                while True:
                    current = self._current
                    idx = self._current_idx
                    if idx < len(current):
                        bucket_heap = self._bucket_heap
                        current_key = self._current_key
                        if (
                            bucket_heap
                            and current_key is not None
                            and bucket_heap[0] < current_key
                            and self._buckets.get(bucket_heap[0])
                        ):
                            # An insert landed in an earlier bucket.
                            self._cal_stash_current()
                            continue
                        entry = current[idx]
                    else:
                        entry = self._cal_head()
                        if entry is None:
                            break
                        current = self._current
                        idx = self._current_idx
                    if entry[0] > time:
                        break
                    # -- inline _cal_pop --
                    idx += 1
                    self._cal_count -= 1
                    if idx >= len(current):
                        self._current = []
                        self._current_idx = 0
                        self._current_key = None
                    else:
                        self._current_idx = idx
                    event = entry[2]
                    if event.cancelled:
                        self._cancelled_pending -= 1
                        if event._pooled:
                            self._recycle(event)
                        continue
                    self._now = entry[0]
                    fn = event.fn
                    args = event.args
                    assert fn is not None  # non-cancelled => callback present
                    if event._pooled:
                        event.fn = None
                        event.args = ()
                        event._sim = None
                        if len(pool) < pool_max:
                            pool.append(event)
                    else:
                        # Already out of the queue: the self-cancel marker
                        # must not count toward the compaction trigger.
                        event._sim = None
                        event.cancelled = True
                        event.fn = None
                        event.args = ()
                    self._events_processed += 1
                    fn(*args)
                    hook = self.event_hook
                    if hook is not None:
                        hook(self._now, self._events_processed)
                    profiler = self.profiler
                    if profiler is not None:
                        profiler.record_event(fn, self._now)
                    if self._events_processed >= self._sample_next:
                        self._sample_next = self._events_processed + self.sample_every
                        sample = self.sample_hook
                        if sample is not None:
                            sample(self._now, self._events_processed)
                    if self._events_processed >= gc_next:
                        gc.collect(1)
                        gc_next = self._events_processed + self.GC_MAINTENANCE_EVENTS
            else:
                # The heap loop is the simulator's hottest code: _execute()
                # and _recycle() are inlined to shave per-event call
                # overhead (identical observable behaviour).
                heap = self._heap
                pop = heapq.heappop
                pool = self._pool
                pool_max = self.POOL_MAX
                while heap:
                    entry = heap[0]
                    event = entry[2]
                    if event.cancelled:
                        pop(heap)
                        self._cancelled_pending -= 1
                        if event._pooled:
                            self._recycle(event)
                        continue
                    if entry[0] > time:
                        break
                    pop(heap)
                    self._now = entry[0]
                    fn = event.fn
                    args = event.args
                    assert fn is not None  # non-cancelled => callback present
                    if event._pooled:
                        event.fn = None
                        event.args = ()
                        event._sim = None
                        if len(pool) < pool_max:
                            pool.append(event)
                    else:
                        # Already out of the queue: the self-cancel marker
                        # must not count toward the compaction trigger.
                        event._sim = None
                        event.cancelled = True
                        event.fn = None
                        event.args = ()
                    self._events_processed += 1
                    fn(*args)
                    hook = self.event_hook
                    if hook is not None:
                        hook(self._now, self._events_processed)
                    profiler = self.profiler
                    if profiler is not None:
                        profiler.record_event(fn, self._now)
                    if self._events_processed >= self._sample_next:
                        self._sample_next = self._events_processed + self.sample_every
                        sample = self.sample_hook
                        if sample is not None:
                            sample(self._now, self._events_processed)
                    if heap is not self._heap:
                        heap = self._heap  # compaction rebuilt it
                    if self._events_processed >= gc_next:
                        gc.collect(1)
                        gc_next = self._events_processed + self.GC_MAINTENANCE_EVENTS
        finally:
            self._running = False
            if gc_restore:
                gc.enable()
        self._now = time

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue is exhausted.

        ``max_events`` bounds the number of events executed -- a safety net
        against accidental infinite self-rescheduling loops.  When the bound
        trips, a ``RuntimeError`` is raised with the simulator left in a
        clean, resumable state: :attr:`running` is ``False``, the clock
        stays at the last executed event, and the remaining queue is intact.
        """
        executed = 0
        gc_restore = self._gc_suspend()
        self._running = True
        try:
            while self.step():
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded max_events={max_events}; "
                        "likely a runaway periodic process"
                    )
        finally:
            self._running = False
            if gc_restore:
                gc.enable()
