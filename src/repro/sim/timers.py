"""Resettable timers and periodic tasks on top of the event kernel.

Dynamoth relies on timers in two places (paper section IV-A.5):

* every client associates a timer with each entry of its local plan -- the
  entry is dropped when the timer expires without traffic on the channel;
* the dispatcher of an old server keeps forwarding publications for a moved
  channel until the same timeout elapses.

:class:`Timer` models exactly that resettable one-shot behaviour, and
:class:`PeriodicTask` drives recurring work such as LLA reports, load
balancer evaluations and player position updates.
"""

from __future__ import annotations

from random import Random
from typing import Callable, Optional

from repro.sim.kernel import ScheduledEvent, Simulator


class Timer:
    """A resettable one-shot timer.

    The callback fires ``interval`` seconds after the most recent
    :meth:`start` or :meth:`reset`.  Resetting an expired or stopped timer
    re-arms it.
    """

    def __init__(self, sim: Simulator, interval: float, callback: Callable[[], None]) -> None:
        if interval <= 0:
            raise ValueError(f"timer interval must be positive: {interval!r}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._event: Optional[ScheduledEvent] = None

    @property
    def armed(self) -> bool:
        """Whether the timer is currently counting down."""
        return self._event is not None and not self._event.cancelled

    def start(self) -> None:
        """Arm (or re-arm) the timer for a full interval from now."""
        self.reset()

    def reset(self) -> None:
        """Restart the countdown from now."""
        if self._event is not None:
            self._event.cancel()
        self._event = self._sim.schedule(self.interval, self._fire)

    def cancel(self) -> None:
        """Disarm the timer without firing."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTask:
    """Invokes a callback every ``period`` seconds until stopped.

    The first invocation happens at ``start_delay`` (default: one full
    period) after :meth:`start`.  The callback receives the current virtual
    time; returning is all it must do -- rescheduling is automatic.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[float], None],
        *,
        jitter: float = 0.0,
        rng: Optional[Random] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive: {period!r}")
        if jitter < 0 or jitter >= period:
            raise ValueError(f"jitter must be in [0, period): {jitter!r}")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._jitter = jitter
        self._rng = rng
        self._event: Optional[ScheduledEvent] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self, start_delay: Optional[float] = None) -> None:
        """Begin the periodic schedule.  Idempotent while running."""
        if self._running:
            return
        self._running = True
        delay = self.period if start_delay is None else start_delay
        self._event = self._sim.schedule(delay, self._tick)

    def stop(self) -> None:
        """Stop future invocations.  Idempotent."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _next_delay(self) -> float:
        if self._jitter > 0:
            assert self._rng is not None  # enforced by __init__
            return self.period + self._rng.uniform(-self._jitter, self._jitter)
        return self.period

    def _tick(self) -> None:
        if not self._running:
            return
        self._event = self._sim.schedule(self._next_delay(), self._tick)
        self._callback(self._sim.now)
