"""Actor base class for simulated nodes.

Every participant in the system -- game clients, Redis-like pub/sub servers,
local load analyzers, dispatchers, the load balancer -- is an actor: it has
a globally unique ``node_id``, lives on the shared simulator clock, and
receives messages through :meth:`Actor.receive` after the network substrate
has applied transmission and propagation delays.

Actors are tagged as *infrastructure* or *client* nodes.  The distinction
drives latency sampling exactly as in the paper (section V-B): messages
between two infrastructure nodes travel over the cloud LAN, messages
between a client and an infrastructure node take one WAN sample.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.kernel import Simulator


class Actor:
    """Base class for all simulated nodes."""

    #: Optional message tap ``(src, dst, message, size_bytes) -> None``,
    #: fired on every outbound send.  A class-level ``None`` default keeps
    #: the untapped cost at one attribute check; the cluster assigns the
    #: tracer's tap per instance when tracing is enabled.
    tap: Optional[Any] = None

    def __init__(self, sim: Simulator, node_id: str, *, is_infra: bool) -> None:
        self.sim = sim
        self.node_id = node_id
        self.is_infra = is_infra
        #: Set by the transport when the actor is registered.
        self.transport: Optional[Any] = None
        #: Whether the node is up.  Messages to a down node are dropped.
        self.alive = True

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst_id: str, message: Any, size_bytes: int) -> None:
        """Send ``message`` to actor ``dst_id`` through the network."""
        if self.transport is None:
            raise RuntimeError(f"actor {self.node_id} is not attached to a transport")
        if self.tap is not None:
            self.tap(self.node_id, dst_id, message, size_bytes)
        self.transport.send(self.node_id, dst_id, message, size_bytes)

    def receive(self, message: Any, src_id: str) -> None:
        """Handle a delivered message.  Subclasses override this."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Mark the node as down; the transport stops delivering to it."""
        self.alive = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "infra" if self.is_infra else "client"
        return f"<{type(self).__name__} {self.node_id} ({kind})>"
