"""Population schedules: how many clients should be active at time t.

Experiments 2 and 3 drive the system with a time-varying player count --
a slow ramp for the scalability experiment, an up/down/up step pattern for
the elasticity experiment.  A :class:`PopulationSchedule` is simply a
piecewise-linear function of time; the workload driver periodically
compares the target with the live population and adds/removes players.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple


class PopulationSchedule:
    """Piecewise-linear target population over time.

    Built from ``(time, population)`` breakpoints; values are linearly
    interpolated between breakpoints and clamped at the ends.
    """

    def __init__(self, breakpoints: Sequence[Tuple[float, int]]):
        if not breakpoints:
            raise ValueError("schedule needs at least one breakpoint")
        times = [t for t, __ in breakpoints]
        if sorted(times) != times:
            raise ValueError("breakpoints must be sorted by time")
        if any(p < 0 for __, p in breakpoints):
            raise ValueError("populations must be non-negative")
        self._times: List[float] = list(times)
        self._pops: List[int] = [p for __, p in breakpoints]

    def target(self, time: float) -> int:
        """Target population at ``time`` (linear interpolation)."""
        times, pops = self._times, self._pops
        if time <= times[0]:
            return pops[0]
        if time >= times[-1]:
            return pops[-1]
        index = bisect.bisect_right(times, time)
        t0, t1 = times[index - 1], times[index]
        p0, p1 = pops[index - 1], pops[index]
        fraction = (time - t0) / (t1 - t0)
        return round(p0 + fraction * (p1 - p0))

    @property
    def end_time(self) -> float:
        return self._times[-1]

    @property
    def peak(self) -> int:
        return max(self._pops)


def ramp(start_pop: int, end_pop: int, duration: float, *, t0: float = 0.0) -> PopulationSchedule:
    """A linear ramp, e.g. Experiment 2's slow join of players."""
    return PopulationSchedule([(t0, start_pop), (t0 + duration, end_pop)])


def steps(segments: Sequence[Tuple[float, int]]) -> PopulationSchedule:
    """Convenience alias: a schedule straight from breakpoints.

    Experiment 3's pattern is e.g.::

        steps([(0, 0), (200, 800), (260, 800), (330, 200),
               (390, 200), (470, 580), (600, 580)])
    """
    return PopulationSchedule(segments)
