"""RGame: the paper's multiplayer-game workload (section V-A).

The game world is a square split into a grid of square tiles.  Each player
is "controlled by a simple AI that repeatedly chooses a random point on the
map, moves the player towards that point and then takes a short break".
Players subscribe to the channel of the tile they are located in, publish
their own state updates on that tile at a fixed rate (3 per second in
Experiment 2), and therefore continuously generate subscriptions,
unsubscriptions and publications as they roam.

Response time is measured exactly as the paper defines it: "the time that
elapses between the client publishing a state update and receiving the
corresponding notification back from the pub/sub server".
"""

from __future__ import annotations

import math
from random import Random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.client import DynamothClient
from repro.core.cluster import DynamothCluster
from repro.sim.timers import PeriodicTask
from repro.workload.schedules import PopulationSchedule

#: hook: (rtt_seconds, now) -> None
RttSink = Callable[[float, float], None]


@dataclass
class RGameConfig:
    """Parameters of the game world and player behaviour."""

    world_size: float = 1000.0
    tiles_per_side: int = 6
    #: state updates per second per player (3 in Experiment 2)
    updates_per_s: float = 3.0
    #: bytes of one position/state update
    payload_size: int = 200
    #: player movement speed, world units per second
    move_speed: float = 40.0
    #: pause after reaching a waypoint, seconds (min, max)
    pause_range: Tuple[float, float] = (1.0, 4.0)

    def __post_init__(self) -> None:
        if self.world_size <= 0 or self.tiles_per_side < 1:
            raise ValueError("invalid world dimensions")
        if self.updates_per_s <= 0:
            raise ValueError("updates_per_s must be positive")
        if self.move_speed <= 0:
            raise ValueError("move_speed must be positive")
        if self.pause_range[0] < 0 or self.pause_range[1] < self.pause_range[0]:
            raise ValueError("invalid pause_range")


class TileWorld:
    """The square game map split into a grid of tiles."""

    def __init__(self, world_size: float, tiles_per_side: int):
        self.world_size = world_size
        self.tiles_per_side = tiles_per_side
        self.tile_size = world_size / tiles_per_side

    def tile_of(self, x: float, y: float) -> Tuple[int, int]:
        """Grid coordinates of the tile containing ``(x, y)``."""
        last = self.tiles_per_side - 1
        i = min(last, max(0, int(x / self.tile_size)))
        j = min(last, max(0, int(y / self.tile_size)))
        return i, j

    def channel_of(self, x: float, y: float) -> str:
        i, j = self.tile_of(x, y)
        return self.tile_channel(i, j)

    @staticmethod
    def tile_channel(i: int, j: int) -> str:
        return f"tile:{i}:{j}"

    def all_channels(self) -> List[str]:
        return [
            self.tile_channel(i, j)
            for i in range(self.tiles_per_side)
            for j in range(self.tiles_per_side)
        ]

    def random_point(self, rng: Random) -> Tuple[float, float]:
        return rng.uniform(0, self.world_size), rng.uniform(0, self.world_size)


class Player:
    """One AI-controlled avatar: random-waypoint movement + tile pub/sub."""

    def __init__(
        self,
        client: DynamothClient,
        world: TileWorld,
        config: RGameConfig,
        rng: Random,
        rtt_sink: Optional[RttSink] = None,
    ):
        self.client = client
        self.world = world
        self.config = config
        self._rng = rng
        self.x, self.y = world.random_point(rng)
        self._target = world.random_point(rng)
        self._paused_until = 0.0
        self.current_channel: Optional[str] = None
        self.updates_sent = 0
        self.updates_received = 0

        if rtt_sink is not None:
            client.on_response_time = lambda ch, rtt, now: rtt_sink(rtt, now)

        sim = client.sim
        self._task = PeriodicTask(
            sim,
            1.0 / config.updates_per_s,
            self._tick,
            jitter=0.2 / config.updates_per_s,
            rng=rng,
        )

    # ------------------------------------------------------------------
    def join(self) -> None:
        """Enter the world: subscribe to the current tile, start ticking."""
        self._enter_tile(self.world.channel_of(self.x, self.y))
        # Desynchronize players: first tick after a random fraction of the
        # update period.
        self._task.start(start_delay=self._rng.random() / self.config.updates_per_s)

    def leave(self) -> None:
        """Exit the world: stop ticking, drop the tile subscription."""
        self._task.stop()
        if self.current_channel is not None:
            self.client.unsubscribe(self.current_channel)
            self.current_channel = None
        self.client.disconnect()

    # ------------------------------------------------------------------
    def _on_delivery(self, channel: str, body: object, envelope: object) -> None:
        self.updates_received += 1

    def _enter_tile(self, channel: str) -> None:
        if channel == self.current_channel:
            return
        if self.current_channel is not None:
            self.client.unsubscribe(self.current_channel)
        self.client.subscribe(channel, self._on_delivery)
        self.current_channel = channel

    def _move(self, dt: float, now: float) -> None:
        if now < self._paused_until:
            return
        tx, ty = self._target
        dx, dy = tx - self.x, ty - self.y
        distance = math.hypot(dx, dy)
        step = self.config.move_speed * dt
        if distance <= step:
            # Waypoint reached: take a short break, then pick a new one.
            self.x, self.y = tx, ty
            low, high = self.config.pause_range
            self._paused_until = now + self._rng.uniform(low, high)
            self._target = self.world.random_point(self._rng)
        else:
            self.x += dx / distance * step
            self.y += dy / distance * step

    def _tick(self, now: float) -> None:
        self._move(1.0 / self.config.updates_per_s, now)
        self._enter_tile(self.world.channel_of(self.x, self.y))
        body = ("pos", round(self.x, 1), round(self.y, 1))
        self.client.publish(self.current_channel, body, self.config.payload_size)
        self.updates_sent += 1


class RGameWorkload:
    """Manages the player population of one RGame run.

    Players can be added/removed directly, or driven by a
    :class:`~repro.workload.schedules.PopulationSchedule` (checked once per
    second), which is how Experiments 2 and 3 inject and remove clients.
    """

    def __init__(
        self,
        cluster: DynamothCluster,
        config: Optional[RGameConfig] = None,
        *,
        rtt_sink: Optional[RttSink] = None,
    ):
        self.cluster = cluster
        self.config = config if config is not None else RGameConfig()
        self.world = TileWorld(self.config.world_size, self.config.tiles_per_side)
        self.rtt_sink = rtt_sink
        self._players: Dict[str, Player] = {}
        self._player_counter = 0
        self._schedule: Optional[PopulationSchedule] = None
        self._driver = PeriodicTask(cluster.sim, 1.0, self._follow_schedule)
        self._rng = cluster.rng.stream("rgame")

    # ------------------------------------------------------------------
    @property
    def population(self) -> int:
        return len(self._players)

    def players(self) -> List[Player]:
        return list(self._players.values())

    def add_players(self, count: int) -> List[Player]:
        added = []
        for __ in range(count):
            self._player_counter += 1
            client_id = f"player{self._player_counter}"
            client = self.cluster.create_client(client_id)
            player = Player(
                client,
                self.world,
                self.config,
                self.cluster.rng.stream(f"player:{client_id}"),
                rtt_sink=self.rtt_sink,
            )
            player.join()
            self._players[client_id] = player
            added.append(player)
        return added

    def remove_players(self, count: int) -> None:
        victims = list(self._players)[:count]
        for client_id in victims:
            player = self._players.pop(client_id)
            player.leave()
            self.cluster.remove_client(client_id)

    # ------------------------------------------------------------------
    def follow(self, schedule: PopulationSchedule) -> None:
        """Drive the population to track ``schedule`` (checked every 1 s)."""
        self._schedule = schedule
        self._driver.start(start_delay=0.0)

    def stop(self) -> None:
        self._driver.stop()

    def _follow_schedule(self, now: float) -> None:
        if self._schedule is None:
            return
        target = self._schedule.target(now)
        current = self.population
        if target > current:
            self.add_players(target - current)
        elif target < current:
            self.remove_players(current - target)

    # ------------------------------------------------------------------
    def total_updates_sent(self) -> int:
        return sum(p.updates_sent for p in self._players.values())
