"""Single-channel micro-benchmark workloads (Experiment 1).

Two fleets exercising one deliberately overloaded channel:

* :class:`FanOutWorkload` -- Experiment 1's *all-publishers* scenario: one
  publisher sending at a fixed rate, N subscribers.  The bottleneck is the
  fan-out work on the server (CPU + egress), relieved by replicating the
  channel under the all-publishers scheme.
* :class:`FanInWorkload` -- the *all-subscribers* scenario: N publishers
  sending at a fixed rate, one subscriber.  The bottleneck is the single
  subscriber connection (Redis output buffer overflow), relieved by the
  all-subscribers scheme.

Both record one-way delivery latency samples (publisher timestamp ->
subscriber receipt) and delivery success counts, which the Experiment 1
harness turns into the curves of Figure 4.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.client import DynamothClient
from repro.core.cluster import DynamothCluster
from repro.core.messages import AppEnvelope
from repro.sim.timers import PeriodicTask


class _LatencyCollector:
    """Collects one-way delivery latency samples after a warmup cutoff."""

    def __init__(self, cluster: DynamothCluster):
        self._cluster = cluster
        self.samples: List[Tuple[float, float]] = []
        self.measure_from = 0.0
        self.deliveries = 0

    def on_delivery(self, channel: str, body: object, envelope: AppEnvelope) -> None:
        now = self._cluster.sim.now
        self.deliveries += 1
        if now >= self.measure_from:
            self.samples.append((now, now - envelope.sent_at))

    def latencies(self) -> List[float]:
        return [latency for __, latency in self.samples]


class FanOutWorkload:
    """One publisher, many subscribers, one channel (Figure 4a setup)."""

    def __init__(
        self,
        cluster: DynamothCluster,
        channel: str,
        n_subscribers: int,
        publications_per_s: float = 10.0,
        payload_size: int = 250,
    ):
        self.cluster = cluster
        self.channel = channel
        self.payload_size = payload_size
        self.collector = _LatencyCollector(cluster)
        self.published = 0
        self.published_measured = 0
        self._measure_from = 0.0

        self.subscribers: List[DynamothClient] = []
        for i in range(n_subscribers):
            client = cluster.create_client(f"subscriber{i}")
            client.subscribe(channel, self.collector.on_delivery)
            self.subscribers.append(client)

        self.publisher = cluster.create_client("fanout-pub")
        self._task = PeriodicTask(cluster.sim, 1.0 / publications_per_s, self._tick)

    def start(self, measure_from: float) -> None:
        self.collector.measure_from = measure_from
        self._measure_from = measure_from
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    def _tick(self, now: float) -> None:
        self.publisher.publish(self.channel, ("broadcast", self.published), self.payload_size)
        self.published += 1
        if now >= self._measure_from:
            self.published_measured += 1


class FanInWorkload:
    """Many publishers, one subscriber, one channel (Figure 4b setup)."""

    def __init__(
        self,
        cluster: DynamothCluster,
        channel: str,
        n_publishers: int,
        publications_per_s: float = 10.0,
        payload_size: int = 250,
    ):
        self.cluster = cluster
        self.channel = channel
        self.payload_size = payload_size
        self.collector = _LatencyCollector(cluster)
        self.published = 0
        self.published_measured = 0

        self.subscriber = cluster.create_client("fanin-sub")
        self.subscriber.subscribe(channel, self.collector.on_delivery)

        rng = cluster.rng.stream("fanin")
        self.publishers: List[DynamothClient] = []
        self._tasks: List[PeriodicTask] = []
        period = 1.0 / publications_per_s
        for i in range(n_publishers):
            client = cluster.create_client(f"publisher{i}")
            task = PeriodicTask(
                cluster.sim,
                period,
                self._make_tick(client),
                jitter=0.4 * period,
                rng=rng,
            )
            self.publishers.append(client)
            self._tasks.append(task)
        self._measure_from = 0.0
        self._stagger_rng = rng

    def _make_tick(self, client: DynamothClient):
        def tick(now: float) -> None:
            client.publish(self.channel, ("update", client.node_id), self.payload_size)
            self.published += 1
            if now >= self._measure_from:
                self.published_measured += 1

        return tick

    def start(self, measure_from: float) -> None:
        self.collector.measure_from = measure_from
        self._measure_from = measure_from
        for task in self._tasks:
            # Stagger publishers uniformly over one period.
            task.start(start_delay=self._stagger_rng.random() * task.period)

    def stop(self) -> None:
        for task in self._tasks:
            task.stop()

    def delivery_rate(self) -> float:
        """Fraction of measured-window publications actually delivered."""
        if self.published_measured == 0:
            return 1.0
        delivered = len(self.collector.samples)
        return min(1.0, delivered / self.published_measured)
