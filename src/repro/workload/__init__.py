"""Workload generators driving the experiments.

* :mod:`repro.workload.rgame` -- the paper's evaluation application: a
  massively-multiplayer game world split into square tiles, with AI players
  doing random-waypoint movement, subscribing to their current tile channel
  and publishing position updates on it (section V-A).
* :mod:`repro.workload.microbench` -- the single-channel micro-benchmarks
  of Experiment 1: many publishers / one subscriber ("all subscribers"
  scheme) and one publisher / many subscribers ("all publishers" scheme).
* :mod:`repro.workload.schedules` -- client arrival/departure schedules
  (ramps and step patterns) used by Experiments 2 and 3.
"""

from repro.workload.microbench import FanInWorkload, FanOutWorkload
from repro.workload.rgame import RGameConfig, RGameWorkload, TileWorld
from repro.workload.schedules import PopulationSchedule, ramp, steps

__all__ = [
    "FanInWorkload",
    "FanOutWorkload",
    "PopulationSchedule",
    "RGameConfig",
    "RGameWorkload",
    "TileWorld",
    "ramp",
    "steps",
]
