"""Randomized scenario generation for the property suite.

One seed maps deterministically to one :class:`Scenario`: a workload
shape (steady, hot-channel skew, flash crowd, churny subscribers) crossed
with a fault profile (none, single crash, crash+restart, double crash,
partition, degraded link, LLA stall).  All fault activity lands well
before the settle window so every run ends with a fault-free convergence
phase for the consistency oracles to assert over.

The generator RNG is local to this module and keyed off the seed alone --
the run itself draws every decision from the cluster's seeded registry,
so ``generate_scenario(s)`` plus ``run_scenario`` is fully reproducible
from ``s``.
"""

from __future__ import annotations

from random import Random
from typing import List, Tuple

from repro.check.scenario import Scenario
from repro.faults.schedule import (
    CrashServer,
    DegradeLink,
    FaultAction,
    PartitionNodes,
    RestartServer,
    StallLla,
)

WORKLOAD_SHAPES = ("steady", "hot-skew", "flash-crowd", "churny")
FAULT_PROFILES = (
    "none",
    "crash",
    "crash-restart",
    "double-crash",
    "partition",
    "degrade",
    "stall",
)

HORIZON_S = 30.0
SETTLE_S = 12.0
#: injected faults fire inside this window, clear of the settle phase
FAULT_WINDOW = (6.0, HORIZON_S - SETTLE_S - 4.0)


def _round(value: float) -> float:
    """Keep generated times human-readable in scenario JSON."""
    return round(value, 1)


def _fault_schedule(
    rng: Random, profile: str, server_ids: List[str]
) -> Tuple[FaultAction, ...]:
    lo, hi = FAULT_WINDOW
    at = _round(rng.uniform(lo, hi))
    if profile == "none":
        return ()
    if profile == "crash":
        return (CrashServer(at, rng.choice(server_ids)),)
    if profile == "crash-restart":
        victim = rng.choice(server_ids)
        restart_at = _round(min(at + rng.uniform(4.0, 7.0), hi + 3.0))
        return (CrashServer(at, victim), RestartServer(restart_at, victim))
    if profile == "double-crash":
        first, second = rng.sample(server_ids, 2)
        gap = _round(rng.uniform(1.0, 3.0))
        return (CrashServer(at, first), CrashServer(_round(at + gap), second))
    if profile == "partition":
        a = rng.choice(server_ids)
        b = rng.choice([s for s in server_ids if s != a] + ["load-balancer"])
        until = _round(min(at + rng.uniform(2.0, 4.0), hi + 2.0))
        return (PartitionNodes(at, a, b, until=until),)
    if profile == "degrade":
        a, b = rng.sample(server_ids, 2)
        until = _round(min(at + rng.uniform(2.0, 4.0), hi + 2.0))
        return (
            DegradeLink(
                at,
                a,
                b,
                loss=round(rng.uniform(0.2, 0.6), 2),
                jitter_s=0.05,
                until=until,
            ),
        )
    if profile == "stall":
        return (
            StallLla(at, rng.choice(server_ids), duration_s=_round(rng.uniform(3.0, 6.0))),
        )
    raise ValueError(f"unknown fault profile: {profile!r}")


def generate_scenario(seed: int, *, break_repair_replay: bool = False) -> Scenario:
    """Deterministically derive one scenario from ``seed``."""
    rng = Random(f"repro-check:{seed}")
    shape = WORKLOAD_SHAPES[rng.randrange(len(WORKLOAD_SHAPES))]
    profile = FAULT_PROFILES[rng.randrange(len(FAULT_PROFILES))]

    initial_servers = rng.randint(2, 4)
    if profile == "double-crash":
        initial_servers = max(initial_servers, 3)  # keep a survivor
    server_ids = [f"pub{i + 1}" for i in range(initial_servers)]

    hot_channel_bias = 0.0
    flash_crowd_at_s = 0.0
    churn_interval_s = 0.0
    if shape == "hot-skew":
        hot_channel_bias = round(rng.uniform(0.5, 0.8), 2)
    elif shape == "flash-crowd":
        flash_crowd_at_s = _round(rng.uniform(8.0, 12.0))
    elif shape == "churny":
        churn_interval_s = _round(rng.uniform(1.0, 2.0))

    return Scenario(
        seed=seed,
        label=f"{shape}+{profile}",
        horizon_s=HORIZON_S,
        settle_s=SETTLE_S,
        initial_servers=initial_servers,
        channels=rng.randint(2, 6),
        subscribers=rng.randint(3, 8),
        publishers=rng.randint(2, 4),
        publish_interval_s=rng.choice([0.4, 0.6, 0.8]),
        payload_size=rng.choice([48, 64, 128]),
        hot_channel_bias=hot_channel_bias,
        flash_crowd_at_s=flash_crowd_at_s,
        churn_interval_s=churn_interval_s,
        faults=_fault_schedule(rng, profile, server_ids),
        break_repair_replay=break_repair_replay,
    )
