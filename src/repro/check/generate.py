"""Randomized scenario generation for the property suite.

One seed maps deterministically to one :class:`Scenario`: a workload
shape (steady, hot-channel skew, flash crowd, churny subscribers) crossed
with a fault profile (none, single crash, crash+restart, double crash,
partition, degraded link, LLA stall, client-side partition, client-side
loss) and a delivery tier (plus an optional causal-order mode).  All
fault activity lands well before the settle window so every run ends
with a fault-free convergence phase for the consistency oracles to
assert over.

The two client-side profiles degrade the subscriber--broker edge rather
than an inter-server link: they are the profiles that exercise the
reliable tier's gap detection and sequenced replay (a lossy client link
drops deliveries mid-stream, which at-least-once/exactly-once must
repair via ReplayRequest).

The generator RNG is local to this module and keyed off the seed alone --
the run itself draws every decision from the cluster's seeded registry,
so ``generate_scenario(s)`` plus ``run_scenario`` is fully reproducible
from ``s``.
"""

from __future__ import annotations

from random import Random
from typing import List, Optional, Tuple

from repro.check.scenario import Scenario
from repro.core.config import DELIVERY_TIERS
from repro.faults.schedule import (
    CrashServer,
    DegradeLink,
    FaultAction,
    PartitionNodes,
    RestartServer,
    StallLla,
)

WORKLOAD_SHAPES = ("steady", "hot-skew", "flash-crowd", "churny")
FAULT_PROFILES = (
    "none",
    "crash",
    "crash-restart",
    "double-crash",
    "partition",
    "degrade",
    "stall",
    "client-partition",
    "client-loss",
)

#: probability that a generated scenario turns causal ordering on
CAUSAL_PROBABILITY = 0.25

HORIZON_S = 30.0
SETTLE_S = 12.0
#: injected faults fire inside this window, clear of the settle phase
FAULT_WINDOW = (6.0, HORIZON_S - SETTLE_S - 4.0)


def _round(value: float) -> float:
    """Keep generated times human-readable in scenario JSON."""
    return round(value, 1)


def _fault_schedule(
    rng: Random, profile: str, server_ids: List[str], client_ids: List[str]
) -> Tuple[FaultAction, ...]:
    lo, hi = FAULT_WINDOW
    at = _round(rng.uniform(lo, hi))
    if profile == "none":
        return ()
    if profile == "crash":
        return (CrashServer(at, rng.choice(server_ids)),)
    if profile == "crash-restart":
        victim = rng.choice(server_ids)
        restart_at = _round(min(at + rng.uniform(4.0, 7.0), hi + 3.0))
        return (CrashServer(at, victim), RestartServer(restart_at, victim))
    if profile == "double-crash":
        first, second = rng.sample(server_ids, 2)
        gap = _round(rng.uniform(1.0, 3.0))
        return (CrashServer(at, first), CrashServer(_round(at + gap), second))
    if profile == "partition":
        a = rng.choice(server_ids)
        b = rng.choice([s for s in server_ids if s != a] + ["load-balancer"])
        until = _round(min(at + rng.uniform(2.0, 4.0), hi + 2.0))
        return (PartitionNodes(at, a, b, until=until),)
    if profile == "degrade":
        a, b = rng.sample(server_ids, 2)
        until = _round(min(at + rng.uniform(2.0, 4.0), hi + 2.0))
        return (
            DegradeLink(
                at,
                a,
                b,
                loss=round(rng.uniform(0.2, 0.6), 2),
                jitter_s=0.05,
                until=until,
            ),
        )
    if profile == "stall":
        return (
            StallLla(at, rng.choice(server_ids), duration_s=_round(rng.uniform(3.0, 6.0))),
        )
    if profile == "client-partition":
        # Briefly isolate one subscriber from one broker: short enough
        # that the client's ping failover usually does not abandon the
        # server, so the heal is followed by gap replay on that link.
        client = rng.choice(client_ids)
        server = rng.choice(server_ids)
        until = _round(min(at + rng.uniform(1.5, 2.5), hi + 2.0))
        return (PartitionNodes(at, client, server, until=until),)
    if profile == "client-loss":
        # A lossy subscriber--broker edge: deliveries drop mid-stream but
        # the connection survives, the canonical sequenced-replay case.
        client = rng.choice(client_ids)
        server = rng.choice(server_ids)
        until = _round(min(at + rng.uniform(2.0, 4.0), hi + 2.0))
        return (
            DegradeLink(
                at,
                client,
                server,
                loss=round(rng.uniform(0.3, 0.6), 2),
                jitter_s=0.02,
                until=until,
            ),
        )
    raise ValueError(f"unknown fault profile: {profile!r}")


def generate_scenario(
    seed: int,
    *,
    break_repair_replay: bool = False,
    break_reliable_replay: bool = False,
    delivery_tier: Optional[str] = None,
    causal_order: Optional[bool] = None,
) -> Scenario:
    """Deterministically derive one scenario from ``seed``.

    ``delivery_tier`` / ``causal_order`` override the sampled values
    without perturbing any other draw: the generator always consumes the
    same RNG stream, so overriding the tier yields the *same* workload
    and fault timeline under a different delivery guarantee.
    """
    rng = Random(f"repro-check:{seed}")
    shape = WORKLOAD_SHAPES[rng.randrange(len(WORKLOAD_SHAPES))]
    profile = FAULT_PROFILES[rng.randrange(len(FAULT_PROFILES))]

    initial_servers = rng.randint(2, 4)
    if profile == "double-crash":
        initial_servers = max(initial_servers, 3)  # keep a survivor
    server_ids = [f"pub{i + 1}" for i in range(initial_servers)]

    hot_channel_bias = 0.0
    flash_crowd_at_s = 0.0
    churn_interval_s = 0.0
    if shape == "hot-skew":
        hot_channel_bias = round(rng.uniform(0.5, 0.8), 2)
    elif shape == "flash-crowd":
        flash_crowd_at_s = _round(rng.uniform(8.0, 12.0))
    elif shape == "churny":
        churn_interval_s = _round(rng.uniform(1.0, 2.0))

    channels = rng.randint(2, 6)
    subscribers = rng.randint(3, 8)
    publishers = rng.randint(2, 4)
    publish_interval_s = rng.choice([0.4, 0.6, 0.8])
    payload_size = rng.choice([48, 64, 128])
    client_ids = [f"reader{i}" for i in range(subscribers)]
    faults = _fault_schedule(rng, profile, server_ids, client_ids)

    # Tier and causal mode are drawn unconditionally so that overriding
    # them never shifts the stream consumed by the draws above.
    tier = DELIVERY_TIERS[rng.randrange(len(DELIVERY_TIERS))]
    causal = rng.random() < CAUSAL_PROBABILITY
    if delivery_tier is not None:
        tier = delivery_tier
    if causal_order is not None:
        causal = causal_order

    return Scenario(
        seed=seed,
        label=f"{shape}+{profile}",
        horizon_s=HORIZON_S,
        settle_s=SETTLE_S,
        initial_servers=initial_servers,
        channels=channels,
        subscribers=subscribers,
        publishers=publishers,
        publish_interval_s=publish_interval_s,
        payload_size=payload_size,
        hot_channel_bias=hot_channel_bias,
        flash_crowd_at_s=flash_crowd_at_s,
        churn_interval_s=churn_interval_s,
        faults=faults,
        break_repair_replay=break_repair_replay,
        delivery_tier=tier,
        causal_order=causal,
        break_reliable_replay=break_reliable_replay,
    )
