"""``python -m repro.check``: run, replay, and shrink property scenarios.

Modes:

* default -- run ``--iterations`` generated scenarios (seeds 0..N-1),
  stop at the first violation, shrink it and print the minimal
  reproducer (exit 1), or report all-clear (exit 0);
* ``--seed S`` -- run exactly one generated scenario, shrinking on
  violation; this is the replay command printed with every failure;
* ``--scenario FILE`` -- run a scenario from its JSON (e.g. a minimized
  reproducer artifact) without regenerating from the seed.

``--break-repair-replay`` flips the dispatcher's test-only kill switch so
the suite's own detection power can be demonstrated end to end;
``--break-reliable-replay`` does the same for the reliable tier's gap
replay (the gap-free oracle must catch it).  ``--tier`` and
``--causal``/``--no-causal`` pin the delivery tier and causal mode
instead of letting the generator sample them.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Sequence

from repro.check.generate import generate_scenario
from repro.check.oracles import Violation, check_result
from repro.check.scenario import Scenario, run_scenario, with_break, with_reliable_break
from repro.check.shrink import shrink
from repro.core.config import DELIVERY_TIERS
from repro.obs.sink import StreamingJsonlSink
from repro.obs.trace import Tracer


def _report_violations(scenario: Scenario, violations: Sequence[Violation]) -> None:
    print(f"FAIL seed={scenario.seed} label={scenario.label}: "
          f"{len(violations)} violation(s)")
    for violation in violations:
        print(f"  {violation}")


def _write_artifact(directory: Path, scenario: Scenario) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"seed{scenario.seed}-minimized.json"
    path.write_text(scenario.to_json() + "\n", encoding="utf-8")
    return path


def _handle_failure(
    scenario: Scenario,
    violations: Sequence[Violation],
    args: argparse.Namespace,
) -> int:
    _report_violations(scenario, violations)
    minimal = scenario
    if not args.no_shrink:
        minimal, violations, runs = shrink(
            scenario, violations, max_runs=args.shrink_budget
        )
        print(f"\nshrunk in {runs} candidate run(s):")
        _report_violations(minimal, violations)
    print("\nminimal scenario JSON:")
    print(minimal.to_json())
    if args.artifacts is not None:
        path = _write_artifact(args.artifacts, minimal)
        print(f"\nreproducer written to {path}")
        print(f"replay file : python -m repro.check --scenario {path}")
    extra = " --break-repair-replay" if scenario.break_repair_replay else ""
    if scenario.break_reliable_replay:
        extra += " --break-reliable-replay"
    # Pin the tier/causal axis explicitly: the replay must not depend on
    # whether the original run sampled or overrode them.
    extra += f" --tier {scenario.delivery_tier}"
    extra += " --causal" if scenario.causal_order else " --no-causal"
    print(f"replay seed : python -m repro.check --seed {scenario.seed}{extra}")
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Property-test the Dynamoth reproduction with "
        "randomized fault scenarios and invariant oracles.",
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="run exactly this generated scenario seed")
    parser.add_argument("--iterations", type=int, default=20,
                        help="number of seeds to sweep when no --seed/"
                             "--scenario is given (default: 20)")
    parser.add_argument("--scenario", type=Path, default=None,
                        help="run a scenario from its JSON file")
    parser.add_argument("--break-repair-replay", action="store_true",
                        help="disable the dispatcher's repair-buffer replay "
                             "(test-only fault to demo oracle detection)")
    parser.add_argument("--break-reliable-replay", action="store_true",
                        help="disable the reliable tier's gap replay "
                             "(test-only fault: the gap-free oracle must "
                             "catch it)")
    parser.add_argument("--tier", choices=DELIVERY_TIERS, default=None,
                        help="pin the delivery tier instead of sampling it")
    parser.add_argument("--causal", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="pin causal-order mode on (--causal) or off "
                             "(--no-causal) instead of sampling it")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report the first violation without shrinking")
    parser.add_argument("--shrink-budget", type=int, default=32,
                        help="max candidate runs during shrinking (default: 32)")
    parser.add_argument("--artifacts", type=Path, default=None,
                        help="directory to write minimized reproducer JSON to")
    parser.add_argument("--trace", type=Path, default=None,
                        help="stream each run's trace to this JSONL file "
                             "(overwritten per scenario, so it holds the "
                             "failing -- or last -- run)")
    args = parser.parse_args(argv)

    if args.scenario is not None:
        scenario = Scenario.from_json(args.scenario.read_text(encoding="utf-8"))
        if args.break_repair_replay:
            scenario = with_break(scenario)
        if args.break_reliable_replay:
            scenario = with_reliable_break(scenario)
        if args.tier is not None:
            scenario = replace(scenario, delivery_tier=args.tier)
        if args.causal is not None:
            scenario = replace(scenario, causal_order=args.causal)
        scenarios = [scenario]
    else:
        seeds = [args.seed] if args.seed is not None else range(args.iterations)
        scenarios = [
            generate_scenario(
                seed,
                break_repair_replay=args.break_repair_replay,
                break_reliable_replay=args.break_reliable_replay,
                delivery_tier=args.tier,
                causal_order=args.causal,
            )
            for seed in seeds
        ]

    for scenario in scenarios:
        tracer = None
        if args.trace is not None:
            # Tee mode: stream to disk while also buffering, because the
            # oracles read result.tracer.events after the run.
            sink = StreamingJsonlSink(str(args.trace))
            tracer = Tracer(sink=sink, keep_events=True)
        result = run_scenario(scenario, tracer=tracer)
        if tracer is not None and tracer.sink is not None:
            tracer.sink.finalize(tracer)
        violations = check_result(result)
        if violations:
            return _handle_failure(scenario, violations, args)
        print(f"ok   seed={scenario.seed} label={scenario.label} "
              f"({len(result.tracer.events)} events, "
              f"{len(result.ledger.deliveries)} deliveries)")
    print(f"\nall {len(scenarios)} scenario(s) passed every oracle")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
