"""Deterministic-simulation property testing (the ``repro.check`` subsystem).

FoundationDB-style testing for the Dynamoth reproduction: randomized
scenarios compose workload shapes (flash crowds, hot-channel skew, churny
subscribers) with :mod:`repro.faults` chaos schedules, run them under the
deterministic simulator with the flight recorder attached, and check the
resulting trace plus final state against invariant *oracles*:

* loss-free reconfiguration -- publications outside fault turbulence
  windows reach every stable subscriber;
* repair-window bridging -- publications a repaired channel's new home
  accepted before the recovering subscriber re-attached are replayed;
* at-most-once delivery -- the application never sees a message id twice;
* plan consistency -- client partial plans converge to the balancer's
  plan, with the consistent-hashing fallback only for unmapped channels;
* replication soundness -- Algorithm 1's schemes never activate below
  their thresholds and respect the replication-server cap;
* ring load bounds -- the consistent-hashing fallback spreads channels
  evenly and its exclusion walk is deterministic;
* gap-free sequenced delivery -- under the reliable tiers, every
  sequence hole a client demonstrably noticed is repaired via replay
  (even through fault turbulence), unless the broker truthfully declared
  it unrecoverable;
* causal order -- with causal mode on, the application never sees a
  visible FIFO or dependency inversion it did not explicitly time out on.

Scenarios also carry a delivery-guarantee axis (``delivery_tier`` in
{at_most_once, at_least_once, exactly_once}, plus ``causal_order``),
sampled by the generator and pinnable from the CLI via ``--tier`` /
``--causal``.

Violations shrink to minimal reproducers (fewer faults, fewer channels
and clients, shorter horizons) and replay from a printed seed::

    python -m repro.check --seed 17

See ``DESIGN.md`` ("Testing strategy") for the oracle semantics and the
documented at-most-once carve-out during the repair window.
"""

from repro.check.generate import FAULT_PROFILES, WORKLOAD_SHAPES, generate_scenario
from repro.check.oracles import Violation, check_result
from repro.check.scenario import (
    DeliveryRecord,
    Ledger,
    RunResult,
    Scenario,
    run_scenario,
    with_reliable_break,
)
from repro.check.shrink import shrink

__all__ = [
    "DeliveryRecord",
    "FAULT_PROFILES",
    "Ledger",
    "RunResult",
    "Scenario",
    "Violation",
    "WORKLOAD_SHAPES",
    "check_result",
    "generate_scenario",
    "run_scenario",
    "shrink",
    "with_reliable_break",
]
