"""Invariant oracles over one finished scenario run.

Each oracle consumes the schema-2 trace plus the harness ledgers of a
:class:`~repro.check.scenario.RunResult` and returns zero or more
:class:`Violation` records.  The oracles deliberately carve out the
windows where the documented semantics are weaker:

* **loss-free** holds outside fault *turbulence windows* (the interval
  around each injected fault plus a recovery margin) -- during those
  windows delivery is at-most-once by design (DESIGN.md section 6d);
* **repair bridging** is the precise check *inside* a crash window: what
  the repaired channel's new home accepted before the recovering
  subscriber re-attached must still reach it, via the dispatcher's
  repair buffer, as long as the buffer's documented time/size bounds and
  a clean single-crash context hold;
* **at-most-once** has no carve-out (the application never sees one
  message id twice) except under the ``at_least_once`` delivery tier,
  which does not promise it;
* **gap-free** and **causal-order** assert the reliable delivery tier's
  contracts: noticed sequence holes get replayed (even through fault
  turbulence -- that is the tier's job), and causal mode never shows the
  application a visible inversion it did not explicitly time out on.

All margins here are deliberately conservative: a property suite that
cries wolf on scheduling jitter is worse than one that checks less.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.check.scenario import RunResult
from repro.core.dispatcher import dispatcher_id
from repro.core.plan import ReplicationMode
from repro.core.policy import policy_class
from repro.faults.schedule import (
    CrashServer,
    DegradeLink,
    HealPartition,
    PartitionNodes,
    RestartServer,
    StallLla,
)
from repro.obs.trace import (
    CausalTimeoutEvent,
    FanoutEvent,
    PlanAppliedEvent,
    PlanRepairDoneEvent,
    PlanRepairStartEvent,
    PublishEvent,
    ReplayGapEvent,
    ServerCrashEvent,
)

#: how long after a fault's effect ends the system may still be settling
RECOVERY_MARGIN_S = 25.0
#: publications get this long to reach every stable subscriber
DELIVERY_GRACE_S = 5.0
#: a subscriber counts as "stable" for a publication only if it was
#: already subscribed this long before the publication left the client
PRE_SUB_MARGIN_S = 1.5
#: slack subtracted from the repair-buffer window before the bridging
#: oracle considers a publication guaranteed
REPAIR_WINDOW_SLACK_S = 0.5
#: a sequence gap first noticed this close to the horizon is not asserted
#: repaired (the replay request + retransmission needs round trips)
GAP_SETTLE_GRACE_S = 4.0


@dataclass(frozen=True)
class Violation:
    """One oracle failure, with enough context to debug from the trace."""

    oracle: str
    detail: str
    t: Optional[float] = None

    def __str__(self) -> str:
        stamp = f" @t={self.t:.3f}" if self.t is not None else ""
        return f"[{self.oracle}]{stamp} {self.detail}"


# ----------------------------------------------------------------------
# Turbulence windows
# ----------------------------------------------------------------------
def _merge_windows(windows: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    if not windows:
        return []
    windows = sorted(windows)
    merged = [list(windows[0])]
    for lo, hi in windows[1:]:
        if lo <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    return [(lo, hi) for lo, hi in merged]


def turbulence_windows(result: RunResult) -> List[Tuple[float, float]]:
    """Intervals during which loss-free delivery is *not* asserted.

    Each injected fault contributes a window from just before it fires to
    the end of its effect plus a recovery margin (failure detection, plan
    repair, client backoff and resubscription all take time).
    """
    scenario = result.scenario
    settle_start = scenario.settle_start_s
    windows: List[Tuple[float, float]] = []
    for action in result.fault_timeline:
        if isinstance(action, CrashServer):
            windows.append((action.at - 1.0, action.at + RECOVERY_MARGIN_S))
        elif isinstance(action, RestartServer):
            # A comeback re-pushes plans and rebalances onto the server.
            windows.append((action.at - 1.0, action.at + 15.0))
        elif isinstance(action, PartitionNodes):
            end = action.until if action.until is not None else settle_start
            windows.append((action.at - 1.0, end + 15.0))
        elif isinstance(action, HealPartition):
            windows.append((action.at - 1.0, action.at + 15.0))
        elif isinstance(action, DegradeLink):
            end = action.until if action.until is not None else settle_start
            windows.append((action.at - 1.0, end + 10.0))
        elif isinstance(action, StallLla):
            duration = (
                action.duration_s
                if action.duration_s is not None
                else scenario.horizon_s
            )
            # A stall can trigger false failure detection, plan repair and
            # a resurrection re-push once reports resume.
            windows.append((action.at - 1.0, action.at + duration + RECOVERY_MARGIN_S))
    return _merge_windows(windows)


def _intersects(
    windows: List[Tuple[float, float]], start: float, end: float
) -> bool:
    for lo, hi in windows:
        if lo < end and start < hi:
            return True
    return False


# ----------------------------------------------------------------------
# O1: loss-free delivery outside turbulence
# ----------------------------------------------------------------------
def oracle_loss_free(result: RunResult) -> List[Violation]:
    """Every calm-window publication reaches every stable subscriber.

    This is the paper's core claim -- lazy reconfiguration is loss-free --
    so the check intentionally spans plan migrations; only fault windows
    (where semantics are documented at-most-once) are exempt.
    """
    violations: List[Violation] = []
    windows = turbulence_windows(result)
    ledger = result.ledger
    delivered = ledger.delivered_pairs
    horizon = result.scenario.horizon_s
    subscribers_by_channel: Dict[str, List[str]] = {}
    for client, channel in ledger.sub_intervals:
        subscribers_by_channel.setdefault(channel, []).append(client)

    for event in result.tracer.events_of(PublishEvent):
        tp = event.t
        if tp + DELIVERY_GRACE_S > horizon:
            continue  # too close to the end to assert delivery
        if _intersects(windows, tp - PRE_SUB_MARGIN_S, tp + DELIVERY_GRACE_S):
            continue
        for client in subscribers_by_channel.get(event.channel, ()):
            if not ledger.covers(
                client, event.channel, tp - PRE_SUB_MARGIN_S, tp + DELIVERY_GRACE_S
            ):
                continue  # not a stable subscriber for this publication
            if (client, event.msg_id) not in delivered:
                violations.append(
                    Violation(
                        "loss-free",
                        f"publication {event.msg_id} on {event.channel} "
                        f"(sender {event.sender}, targets {list(event.targets)}) "
                        f"never reached stable subscriber {client}",
                        t=tp,
                    )
                )
    return violations


# ----------------------------------------------------------------------
# O2: repair-window bridging (the repair buffer works)
# ----------------------------------------------------------------------
def oracle_repair_bridging(result: RunResult) -> List[Violation]:
    """Publications accepted by a repaired channel's new home before the
    first recovering subscriber re-attached must be replayed to it.

    Only asserted in a clean context: a crash-induced repair, no other
    fault overlapping the window, the attach inside the repair buffer's
    time bound, and no more candidate publications than the buffer holds.
    """
    violations: List[Violation] = []
    ledger = result.ledger
    cluster = result.cluster
    config = cluster.config
    if config.repair_buffer_s <= 0.0 or config.repair_buffer_max_msgs <= 0:
        return violations

    crash_times = {
        e.server: e.t for e in result.tracer.events_of(ServerCrashEvent)
    }
    repairs = result.tracer.events_of(PlanRepairStartEvent)
    repair_done = {
        (e.server, e.t): e.version
        for e in result.tracer.events_of(PlanRepairDoneEvent)
    }
    plan_applied = result.tracer.events_of(PlanAppliedEvent)
    fanouts = result.tracer.events_of(FanoutEvent)
    #: client-originated message ids (excludes dispatcher switch notices)
    app_msg_ids = {e.msg_id for e in result.tracer.events_of(PublishEvent)}
    delivered = ledger.delivered_pairs
    fault_times = sorted(a.at for a in result.fault_timeline)

    for repair in repairs:
        dead = repair.server
        crash_t = crash_times.get(dead)
        if crash_t is None or not (crash_t <= repair.t <= crash_t + 15.0):
            continue  # stall-induced or unmatched repair: skip
        version = repair_done.get((dead, repair.t))
        if version is None:
            continue
        plan = next(
            (p for t, p in result.plan_history if p.version == version), None
        )
        if plan is None:
            continue
        for channel in repair.channels:
            mapping = plan.mapping(channel)
            for home in mapping.servers:
                if home == dead:
                    continue
                applied_t = next(
                    (
                        e.t
                        for e in plan_applied
                        if e.node == dispatcher_id(home)
                        and e.version == version
                        and e.t >= repair.t
                    ),
                    None,
                )
                if applied_t is None:
                    continue  # the push never landed (home died too)
                attach = next(
                    (
                        (t, client)
                        for t, server, ch, client in ledger.server_subs
                        if server == home and ch == channel and t > applied_t
                    ),
                    None,
                )
                if attach is None:
                    continue  # no recovering subscriber showed up
                attach_t, client = attach
                window_end = attach_t
                if attach_t - applied_t > config.repair_buffer_s - REPAIR_WINDOW_SLACK_S:
                    continue  # buffer legitimately expired first
                # Any other fault firing inside the window muddies causality.
                if any(
                    crash_t < ft <= window_end + 2.0 and ft != crash_t
                    for ft in fault_times
                ):
                    continue
                # The subscriber must stay attached long enough to receive.
                if not ledger.covers(
                    client, channel, attach_t, attach_t + DELIVERY_GRACE_S
                ):
                    continue
                parked = [
                    e
                    for e in fanouts
                    if e.server == home
                    and e.channel == channel
                    and e.msg_id in app_msg_ids
                    and applied_t < e.t <= attach_t - 0.01
                ]
                if len(parked) > config.repair_buffer_max_msgs:
                    continue  # overflow drops oldest: not guaranteed
                violations.extend(
                    Violation(
                        "repair-bridging",
                        f"{event.msg_id} on {channel} reached repaired "
                        f"home {home} at t={event.t:.3f} (window "
                        f"[{applied_t:.3f}, {attach_t:.3f}]) but was "
                        f"never replayed to recovering subscriber "
                        f"{client}",
                        t=event.t,
                    )
                    for event in parked
                    if (client, event.msg_id) not in delivered
                )
    return violations


# ----------------------------------------------------------------------
# O3: at-most-once delivery (no carve-out, tier permitting)
# ----------------------------------------------------------------------
def oracle_at_most_once(result: RunResult) -> List[Violation]:
    """The application never sees one message id twice.

    Asserted under ``at_most_once`` (no replay to duplicate anything) and
    ``exactly_once`` (replay deduplicated by message id).  The
    ``at_least_once`` tier explicitly does not promise this -- a replayed
    message past the dedup window may legally surface twice -- so the
    oracle stands down there.
    """
    if result.scenario.delivery_tier == "at_least_once":
        return []
    return [
        Violation(
            "at-most-once",
            f"client {client} saw {msg_id} {count} times",
        )
        for (client, msg_id), count in result.ledger.delivery_counts.items()
        if count > 1
    ]


# ----------------------------------------------------------------------
# O4: plan consistency after the settle window
# ----------------------------------------------------------------------
def oracle_plan_consistency(result: RunResult) -> List[Violation]:
    """After settling, client partial plans agree with the balancer.

    Checks, for every still-subscribed (client, channel) pair: the held
    subscription servers are live, they form a valid subscription set for
    the balancer's mapping, and any explicit client plan entry matches
    the balancer's assignment.  Consistent-hashing fallback (a version-0
    or absent entry) is legal only for channels the balancer never mapped
    explicitly.
    """
    violations: List[Violation] = []
    cluster = result.cluster
    plan = result.final_plan
    live = set(cluster.servers)

    for (client_id, channel), intervals in sorted(result.ledger.sub_intervals.items()):
        if not intervals or intervals[-1][1] != result.scenario.horizon_s:
            continue  # not subscribed when the run ended
        client = cluster.clients.get(client_id)
        if client is None or not client.is_subscribed(channel):
            continue
        held = client.subscription_servers(channel)
        mapping = plan.mapping(channel)
        if not held:
            violations.append(
                Violation(
                    "plan-consistency",
                    f"{client_id} subscribed to {channel} but holds no server",
                )
            )
            continue
        dead_held = held - live
        if dead_held:
            violations.append(
                Violation(
                    "plan-consistency",
                    f"{client_id} still holds {channel} on dead/removed "
                    f"server(s) {sorted(dead_held)}",
                )
            )
            continue
        known = client.known_mapping(channel)
        if known is not None and known.version > 0:
            if not known.same_assignment(mapping):
                violations.append(
                    Violation(
                        "plan-consistency",
                        f"{client_id}'s entry for {channel} "
                        f"({known.mode.value} v{known.version} on "
                        f"{sorted(known.servers)}) diverges from the "
                        f"balancer's ({mapping.mode.value} v{mapping.version} "
                        f"on {sorted(mapping.servers)})",
                    )
                )
                continue
        if plan.explicit_mapping(channel) is not None:
            if not mapping.is_valid_subscription_set(held):
                violations.append(
                    Violation(
                        "plan-consistency",
                        f"{client_id} holds {channel} on {sorted(held)}, not a "
                        f"valid {mapping.mode.value} subscription set of "
                        f"{sorted(mapping.servers)}",
                    )
                )
        else:
            # CH fallback: exactly one live server; without any crash the
            # ring determines it exactly.
            if len(held) != 1:
                violations.append(
                    Violation(
                        "plan-consistency",
                        f"{client_id} holds CH-fallback channel {channel} on "
                        f"{len(held)} servers {sorted(held)}",
                    )
                )
            elif not result.fault_timeline and held != {plan.ring.lookup(channel)}:
                violations.append(
                    Violation(
                        "plan-consistency",
                        f"{client_id} holds CH-fallback channel {channel} on "
                        f"{sorted(held)} instead of ring home "
                        f"{plan.ring.lookup(channel)}",
                    )
                )
    return violations


# ----------------------------------------------------------------------
# O5: replication-scheme soundness (Algorithm 1)
# ----------------------------------------------------------------------
def oracle_replication_soundness(result: RunResult) -> List[Violation]:
    """Replication never activates below Algorithm 1's thresholds and
    never exceeds the configured server cap, across every pushed plan.

    The threshold rule is Algorithm 1's contract, so it is only asserted
    against policies that claim it (``algorithm1_replication``); the
    replication-server cap is universal.
    """
    violations: List[Violation] = []
    scenario = result.scenario
    config = result.cluster.config
    follows_algorithm1 = policy_class(
        config.rebalance_policy
    ).algorithm1_replication
    # Conservative upper bound on the scenario's aggregate publication
    # rate (flash crowds quarter the interval; jitter floor is 0.8x).
    max_pub_rate = scenario.publishers / (scenario.publish_interval_s * 0.8)
    if scenario.flash_crowd_at_s > 0.0:
        max_pub_rate *= 4.0
    below_thresholds = follows_algorithm1 and (
        max_pub_rate < config.publication_threshold
        and scenario.subscribers < config.subscriber_threshold
    )
    for t, plan in result.plan_history:
        for channel in plan.explicit_channels():
            mapping = plan.explicit_mapping(channel)
            if len(mapping.servers) > config.max_replication_servers:
                violations.append(
                    Violation(
                        "replication-soundness",
                        f"plan v{plan.version} replicates {channel} on "
                        f"{len(mapping.servers)} servers "
                        f"(cap {config.max_replication_servers})",
                        t=t,
                    )
                )
            if below_thresholds and mapping.mode is not ReplicationMode.SINGLE:
                violations.append(
                    Violation(
                        "replication-soundness",
                        f"plan v{plan.version} put {channel} in "
                        f"{mapping.mode.value} although the workload is below "
                        f"Algorithm 1's activation thresholds "
                        f"(max pub rate {max_pub_rate:.0f}/s < "
                        f"{config.publication_threshold:.0f}, "
                        f"{scenario.subscribers} subs < "
                        f"{config.subscriber_threshold:.0f})",
                        t=t,
                    )
                )
    return violations


# ----------------------------------------------------------------------
# O6: consistent-hashing ring load bounds and exclusion determinism
# ----------------------------------------------------------------------
def oracle_ring_bounds(result: RunResult) -> List[Violation]:
    violations: List[Violation] = []
    ring = result.cluster.plan.ring
    servers = list(ring.servers)
    if len(servers) < 2:
        return violations
    probe_count = 64 * len(servers)
    counts = Counter(
        ring.lookup(f"check-ring:{i}") for i in range(probe_count)
    )
    average = probe_count / len(servers)
    heaviest, load = counts.most_common(1)[0]
    if load > 2.5 * average + 4:
        violations.append(
            Violation(
                "ring-bounds",
                f"CH fallback ring is skewed: {heaviest} got {load} of "
                f"{probe_count} channels (average {average:.1f})",
            )
        )
    for i in range(16):
        channel = f"check-ring:{i}"
        home = ring.lookup(channel)
        alt = ring.lookup(channel, exclude=(home,))
        if alt == home or alt not in servers:
            violations.append(
                Violation(
                    "ring-bounds",
                    f"exclusion walk for {channel} returned {alt} "
                    f"(home {home})",
                )
            )
        elif ring.lookup(channel, exclude=(home,)) != alt:
            violations.append(
                Violation(
                    "ring-bounds",
                    f"exclusion walk for {channel} is nondeterministic",
                )
            )
    return violations


# ----------------------------------------------------------------------
# O7: gap-free sequenced delivery (reliable tiers)
# ----------------------------------------------------------------------
def oracle_gap_free(result: RunResult) -> List[Violation]:
    """Under a reliable tier, every *interior* sequence hole gets repaired.

    Per (client, broker, boot epoch, channel) stream: if the client
    delivered seq ``a`` and later delivered some seq ``b > a + 1``, it
    demonstrably noticed the hole ``(a, b)`` -- the reliable tier must
    have filled it via replay by the end of the run.  Tail holes (nothing
    delivered past them) are unobservable to the client and not asserted.

    A hole is excused only when repair was legitimately impossible:

    * the broker truthfully reported it unrecoverable (cache eviction,
      a ``gap_unrecoverable`` trace event covering those seqs);
    * the broker crashed once the hole was noticed (replay source gone);
    * the client's subscription lapsed across the hole (mid-stream
      rejoin adopts the current seq rather than chasing history);
    * the hole was first noticed within :data:`GAP_SETTLE_GRACE_S` of
      the horizon (the repair round trips had no time to land).

    Deliberately *not* excused: fault turbulence.  Repairing the gaps
    that faults tear open is the reliable tier's entire job, and this is
    what lets the oracle catch a disabled replay path.
    """
    scenario = result.scenario
    if scenario.delivery_tier == "at_most_once":
        return []
    violations: List[Violation] = []
    ledger = result.ledger
    horizon = scenario.horizon_s

    crash_times: Dict[str, List[float]] = {}
    for event in result.tracer.events_of(ServerCrashEvent):
        crash_times.setdefault(event.server, []).append(event.t)
    #: (client, server, epoch, channel) -> seqs reported evicted through
    evicted_through: Dict[Tuple[str, str, int, str], int] = {}
    for event in result.tracer.events_of(ReplayGapEvent):
        key = (event.client, event.server, event.epoch, event.channel)
        evicted_through[key] = max(evicted_through.get(key, 0), event.to_seq)

    streams: Dict[Tuple[str, str, int, str], Dict[int, float]] = {}
    for t, client, server, channel, epoch, seq in ledger.seq_observations:
        key = (client, server, epoch, channel)
        first_t = streams.setdefault(key, {})
        if seq not in first_t:
            first_t[seq] = t

    for key in sorted(streams):
        client, server, epoch, channel = key
        first_t = streams[key]
        seqs = sorted(first_t)
        floor = evicted_through.get(key, 0)
        for prev, nxt in zip(seqs, seqs[1:]):
            if nxt == prev + 1:
                continue
            if nxt - 1 <= floor:
                continue  # broker reported these seqs evicted
            # When did the client first see past the hole?
            t_known = min(t for s, t in first_t.items() if s > prev)
            if t_known > horizon - GAP_SETTLE_GRACE_S:
                continue
            if any(t >= t_known - 1.0 for t in crash_times.get(server, ())):
                continue  # replay source died
            if not ledger.covers(client, channel, first_t[prev], t_known):
                continue  # subscription lapsed across the hole
            violations.append(
                Violation(
                    "gap-free",
                    f"{client} delivered seq {prev} then {nxt} from "
                    f"{server} (epoch {epoch}) on {channel} but seqs "
                    f"{prev + 1}..{nxt - 1} were never replayed "
                    f"({scenario.delivery_tier} tier)",
                    t=t_known,
                )
            )
    return violations


# ----------------------------------------------------------------------
# O8: causal order per channel (causal mode)
# ----------------------------------------------------------------------
def oracle_causal_order(result: RunResult) -> List[Violation]:
    """With causal mode on, app-level delivery never inverts causality.

    Per (client, channel), two invariants over the delivery sequence:
    sender FIFO (no message from a sender delivered after a later one
    from the same sender) and dependency order (a message is never
    delivered before a dependency that the client *does* eventually
    deliver).  Losses are not violations -- only visible inversions are.

    Excused inversions: the late-arriving side came in via gap replay
    (``replayed`` deliveries recover history, they cannot retroactively
    reorder it), and anything at or after the client's first causal park
    timeout on that channel (the flush deliberately abandons ordering
    and force-advances the delivered vector).
    """
    if not result.scenario.causal_order:
        return []
    violations: List[Violation] = []
    ledger = result.ledger

    flush_t: Dict[Tuple[str, str], float] = {}
    for event in result.tracer.events_of(CausalTimeoutEvent):
        key = (event.client, event.channel)
        flush_t[key] = min(flush_t.get(key, event.t), event.t)

    per_pair: Dict[Tuple[str, str], List] = {}
    for record in ledger.records:
        if record.pub_seq <= 0:
            continue
        per_pair.setdefault((record.client, record.channel), []).append(record)

    for pair in sorted(per_pair):
        client, channel = pair
        cutoff = flush_t.get(pair, float("inf"))
        records = per_pair[pair]
        # First-delivery index per (sender, pub_seq); dups are ignored.
        first_index: Dict[Tuple[str, int], int] = {}
        for i, record in enumerate(records):
            first_index.setdefault((record.sender, record.pub_seq), i)
        #: per sender: delivered pub_seqs sorted, with first index
        by_sender: Dict[str, List[Tuple[int, int]]] = {}
        for (sender, pub_seq), i in first_index.items():
            by_sender.setdefault(sender, []).append((pub_seq, i))
        for entries in by_sender.values():
            entries.sort()

        max_seen: Dict[str, int] = {}
        for i, record in enumerate(records):
            if first_index[(record.sender, record.pub_seq)] != i:
                continue  # duplicate delivery (at-least-once)
            # Sender FIFO inversion.
            prior_max = max_seen.get(record.sender, 0)
            if (
                record.pub_seq < prior_max
                and not record.replayed
                and record.t < cutoff
            ):
                violations.append(
                    Violation(
                        "causal-order",
                        f"{client} delivered {record.sender}'s pub_seq "
                        f"{record.pub_seq} on {channel} after already "
                        f"seeing pub_seq {prior_max} (FIFO inversion)",
                        t=record.t,
                    )
                )
            max_seen[record.sender] = max(prior_max, record.pub_seq)
            # Dependency inversions: a dep delivered *later* than the
            # message that depended on it.
            for dep_sender, dep_seq in record.deps:
                for pub_seq, j in by_sender.get(dep_sender, ()):
                    if pub_seq > dep_seq:
                        break
                    if j <= i:
                        continue
                    late = records[j]
                    if late.replayed or late.t >= cutoff:
                        continue
                    violations.append(
                        Violation(
                            "causal-order",
                            f"{client} delivered {record.sender}'s pub_seq "
                            f"{record.pub_seq} on {channel} before its "
                            f"dependency {dep_sender}:{pub_seq} "
                            f"(delivered later at t={late.t:.3f})",
                            t=record.t,
                        )
                    )
    return violations


#: every oracle, in report order
ORACLES = (
    oracle_loss_free,
    oracle_repair_bridging,
    oracle_at_most_once,
    oracle_plan_consistency,
    oracle_replication_soundness,
    oracle_ring_bounds,
    oracle_gap_free,
    oracle_causal_order,
)


def check_result(result: RunResult) -> List[Violation]:
    """Run every oracle over one finished scenario run."""
    violations: List[Violation] = []
    for oracle in ORACLES:
        violations.extend(oracle(result))
    return violations
