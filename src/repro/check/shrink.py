"""Greedy scenario shrinking: bisect a violation to a minimal reproducer.

Given a violating scenario, try progressively smaller variants -- fewer
faults, fewer channels/subscribers/publishers, no workload spice, a
shorter horizon -- and keep any variant that still trips the *same*
oracle(s).  Every candidate run is a full deterministic replay, so the
shrunk scenario is guaranteed to reproduce from its own JSON alone.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Sequence, Set, Tuple

from repro.check.oracles import Violation, check_result
from repro.check.scenario import RunResult, Scenario, run_scenario
from repro.faults.schedule import CrashServer, RestartServer

#: hard cap on candidate runs per shrink (each is a full simulation)
DEFAULT_MAX_RUNS = 32


def _drop_fault(scenario: Scenario, index: int) -> Scenario:
    """Remove one fault action (plus restarts orphaned by a crash drop)."""
    dropped = scenario.faults[index]
    remaining = [a for i, a in enumerate(scenario.faults) if i != index]
    if isinstance(dropped, CrashServer):
        remaining = [
            a
            for a in remaining
            if not (isinstance(a, RestartServer) and a.server == dropped.server)
        ]
    return replace(scenario, faults=tuple(remaining))


def _candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Smaller variants, most aggressive first."""
    for index in range(len(scenario.faults)):
        yield _drop_fault(scenario, index)
    if scenario.channels > 1:
        yield replace(scenario, channels=max(1, scenario.channels // 2))
        yield replace(scenario, channels=scenario.channels - 1)
    if scenario.subscribers > 1:
        yield replace(scenario, subscribers=max(1, scenario.subscribers // 2))
        yield replace(scenario, subscribers=scenario.subscribers - 1)
    if scenario.publishers > 1:
        yield replace(scenario, publishers=max(1, scenario.publishers // 2))
    if scenario.hot_channel_bias > 0.0:
        yield replace(scenario, hot_channel_bias=0.0)
    if scenario.flash_crowd_at_s > 0.0:
        yield replace(scenario, flash_crowd_at_s=0.0)
    if scenario.churn_interval_s > 0.0:
        yield replace(scenario, churn_interval_s=0.0)
    # Reliability-axis shrinks: a candidate only survives if the same
    # oracle still trips, so downgrades that stand an oracle down (e.g.
    # causal off for causal-order) are simply rejected by the runner.
    if scenario.causal_order:
        yield replace(scenario, causal_order=False)
    if scenario.delivery_tier == "exactly_once":
        yield replace(scenario, delivery_tier="at_least_once")
    last_fault = max((a.at for a in scenario.faults), default=0.0)
    shorter = scenario.horizon_s - 5.0
    if shorter >= scenario.settle_s + 6.0 and shorter >= last_fault + scenario.settle_s + 4.0:
        yield replace(scenario, horizon_s=shorter)


def shrink(
    scenario: Scenario,
    violations: Sequence[Violation],
    *,
    max_runs: int = DEFAULT_MAX_RUNS,
    runner: Callable[[Scenario], RunResult] = run_scenario,
) -> Tuple[Scenario, List[Violation], int]:
    """Shrink ``scenario`` while it still trips one of ``violations``'s oracles.

    Returns ``(minimal_scenario, its_violations, runs_used)``.  The input
    scenario is returned unchanged when no smaller variant reproduces.
    """
    target_oracles: Set[str] = {v.oracle for v in violations}
    current = scenario
    current_violations = list(violations)
    runs = 0
    progress = True
    while progress and runs < max_runs:
        progress = False
        for candidate in _candidates(current):
            if runs >= max_runs:
                break
            runs += 1
            try:
                result = runner(candidate)
            except Exception:  # noqa: PERF203 - per-candidate isolation is the point
                continue  # an invalid shrink (e.g. empty fault schedule edge)
            found = [v for v in check_result(result) if v.oracle in target_oracles]
            if found:
                current = candidate
                current_violations = found
                progress = True
                break
    return current, current_violations, runs
