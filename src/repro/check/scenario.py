"""Scenario definition and the deterministic harness that runs one.

A :class:`Scenario` is a frozen, JSON-serializable value: everything a run
needs -- workload shape, fault schedule, tunables and the seed -- lives in
it, so the same scenario always produces the byte-identical trace.  The
harness drives all workload decisions from the cluster's own RNG registry
(stream ``"check-workload"``) and keeps ground-truth ledgers on the side:

* every application-level delivery, via the client's ``on_delivery`` hook
  (fires once per non-duplicate delivery, before the callback);
* every server-side subscribe, via broker subscribe listeners (attached to
  late-spawned and restarted servers too);
* the exact intervals each (client, channel) pair was subscribed, as
  driven by the harness (initial subscriptions, churn, flash crowds).

Runs end with a *settle phase*: faults stop, the network heals, churn
stops, and publishers rotate one publication over every channel so plan
knowledge propagates -- the window the convergence oracles assert over.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.cluster import DynamothCluster
from repro.core.config import DELIVERY_TIERS, DynamothConfig
from repro.core.plan import Plan
from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    ChaosSchedule,
    ConcreteAction,
    FaultAction,
    action_from_dict,
    action_to_dict,
)
from repro.obs.export import event_to_json
from repro.obs.trace import Tracer

#: grace before the end of the run during which nothing publishes, so the
#: last publications can still be delivered inside the horizon.
PUBLISH_TAIL_S = 3.0
#: how long a churned-out subscriber stays away before resubscribing.
CHURN_OFF_S = 1.5


@dataclass(frozen=True)
class Scenario:
    """One self-contained property-test scenario (JSON round-trippable)."""

    seed: int
    label: str = "manual"
    horizon_s: float = 30.0
    #: length of the fault-free convergence window ending the run
    settle_s: float = 12.0
    initial_servers: int = 3
    channels: int = 4
    subscribers: int = 6
    publishers: int = 3
    publish_interval_s: float = 0.5
    payload_size: int = 64
    #: extra probability mass on channel 0 (0 = uniform)
    hot_channel_bias: float = 0.0
    #: time everyone floods channel 0 (0 = no flash crowd)
    flash_crowd_at_s: float = 0.0
    #: subscriber churn period (0 = no churn); churn stops at settle
    churn_interval_s: float = 0.0
    t_wait_s: float = 6.0
    plan_entry_timeout_s: float = 8.0
    faults: Tuple[FaultAction, ...] = ()
    #: test-only: disable the dispatcher's repair-buffer replay so the
    #: oracles can be shown to catch a real loss bug
    break_repair_replay: bool = False
    #: delivery guarantee the run executes under (the scenario-grid axis
    #: of the delivery-guarantee testbed)
    delivery_tier: str = "at_most_once"
    #: per-channel causal ordering (only meaningful on reliable tiers)
    causal_order: bool = False
    #: test-only: disable the broker's replay path (sequencing stays on)
    #: so the gap-free oracle can be shown to catch silent loss
    break_reliable_replay: bool = False

    def __post_init__(self) -> None:
        if self.horizon_s <= self.settle_s:
            raise ValueError("horizon_s must exceed settle_s")
        if min(self.channels, self.subscribers, self.publishers) < 1:
            raise ValueError("need at least one channel, subscriber and publisher")
        if self.publish_interval_s <= 0:
            raise ValueError("publish_interval_s must be positive")
        if self.delivery_tier not in DELIVERY_TIERS:
            raise ValueError(f"delivery_tier must be one of {DELIVERY_TIERS}")

    # ------------------------------------------------------------------
    # Derived naming (client ids must not collide with "pubN" servers)
    # ------------------------------------------------------------------
    @property
    def settle_start_s(self) -> float:
        return self.horizon_s - self.settle_s

    def channel_names(self) -> List[str]:
        return [f"room:{i}" for i in range(self.channels)]

    def subscriber_ids(self) -> List[str]:
        return [f"reader{i}" for i in range(self.subscribers)]

    def publisher_ids(self) -> List[str]:
        return [f"writer{i}" for i in range(self.publishers)]

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seed": self.seed,
            "label": self.label,
            "horizon_s": self.horizon_s,
            "settle_s": self.settle_s,
            "initial_servers": self.initial_servers,
            "channels": self.channels,
            "subscribers": self.subscribers,
            "publishers": self.publishers,
            "publish_interval_s": self.publish_interval_s,
            "payload_size": self.payload_size,
            "hot_channel_bias": self.hot_channel_bias,
            "flash_crowd_at_s": self.flash_crowd_at_s,
            "churn_interval_s": self.churn_interval_s,
            "t_wait_s": self.t_wait_s,
            "plan_entry_timeout_s": self.plan_entry_timeout_s,
            "faults": [action_to_dict(a) for a in self.faults],
            "break_repair_replay": self.break_repair_replay,
            "delivery_tier": self.delivery_tier,
            "causal_order": self.causal_order,
            "break_reliable_replay": self.break_reliable_replay,
        }
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Scenario":
        kwargs = dict(data)
        kwargs["faults"] = tuple(action_from_dict(a) for a in data.get("faults", []))
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Ground-truth ledgers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeliveryRecord:
    """One application-level delivery with its reliability metadata.

    Recorded outside the SUT via the client's ``on_delivery`` hook; the
    gap-free and causal-order oracles read these instead of trusting any
    broker-side state.
    """

    t: float
    client: str
    channel: str
    msg_id: str
    sender: str
    #: broker that fanned the delivery out
    server: str
    #: broker-stamped sequence number (None on at_most_once / control)
    seq: Optional[int]
    #: broker boot epoch the seq belongs to
    epoch: int
    #: whether this arrived via gap/resume replay
    replayed: bool
    #: causal metadata (0 / () when causal mode is off)
    pub_seq: int
    deps: Tuple[Tuple[str, int], ...]


@dataclass
class Ledger:
    """What actually happened, recorded outside the system under test."""

    #: (t, client, channel, msg_id) per application-level delivery
    deliveries: List[Tuple[float, str, str, str]] = field(default_factory=list)
    #: app-visible delivery multiplicity (at-most-once oracle input)
    delivery_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: full per-delivery records including seq/dep metadata (reliability
    #: oracles); same order as :attr:`deliveries`
    records: List[DeliveryRecord] = field(default_factory=list)
    #: (t, client, server, channel, epoch, seq) per *wire-level* sequenced
    #: delivery, recorded before dedup/stale suppression -- the gap-free
    #: oracle's input (a hole filled by a cross-stream duplicate that the
    #: app never sees is still a filled hole)
    seq_observations: List[Tuple[float, str, str, str, int, int]] = field(
        default_factory=list
    )
    #: (t, server, channel, client) per server-side SUBSCRIBE processed
    server_subs: List[Tuple[float, str, str, str]] = field(default_factory=list)
    #: (client, channel) -> closed/open [start, end] subscription intervals
    sub_intervals: Dict[Tuple[str, str], List[List[float]]] = field(default_factory=dict)

    def note_delivery(
        self, t: float, client: str, channel: str, msg_id: str,
        record: Optional[DeliveryRecord] = None,
    ) -> None:
        self.deliveries.append((t, client, channel, msg_id))
        key = (client, msg_id)
        self.delivery_counts[key] = self.delivery_counts.get(key, 0) + 1
        if record is not None:
            self.records.append(record)

    @property
    def delivered_pairs(self) -> Set[Tuple[str, str]]:
        return set(self.delivery_counts)

    def open_interval(self, t: float, client: str, channel: str) -> None:
        self.sub_intervals.setdefault((client, channel), []).append([t, math.inf])

    def close_interval(self, t: float, client: str, channel: str) -> None:
        intervals = self.sub_intervals.get((client, channel))
        if intervals and intervals[-1][1] == math.inf:
            intervals[-1][1] = t

    def close_all(self, t: float) -> None:
        for intervals in self.sub_intervals.values():
            if intervals and intervals[-1][1] == math.inf:
                intervals[-1][1] = t

    def covers(self, client: str, channel: str, start: float, end: float) -> bool:
        """Whether the pair was continuously subscribed over [start, end]."""
        for lo, hi in self.sub_intervals.get((client, channel), ()):
            if lo <= start and end <= hi:
                return True
        return False


@dataclass
class RunResult:
    """Everything the oracles need from one finished scenario run."""

    scenario: Scenario
    cluster: DynamothCluster
    tracer: Tracer
    ledger: Ledger
    #: the injector's concrete (expanded) fault timeline
    fault_timeline: Tuple[ConcreteAction, ...]

    @property
    def plan_history(self) -> List[Tuple[float, Plan]]:
        if self.cluster.balancer is not None:
            return self.cluster.balancer.plan_history
        return [(0.0, self.cluster.plan)]

    @property
    def final_plan(self) -> Plan:
        return self.cluster.current_plan()

    def trace_bytes(self) -> bytes:
        """The schema-2 JSONL body; byte-identical across replays."""
        lines = [event_to_json(e) for e in self.tracer.events]
        return ("\n".join(lines) + "\n").encode("utf-8")


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class _Workload:
    """Mutable driver state for one run (all decisions from ``wl`` RNG)."""

    def __init__(self, scenario: Scenario, cluster: DynamothCluster, ledger: Ledger):
        self.scenario = scenario
        self.cluster = cluster
        self.ledger = ledger
        self.sim = cluster.sim
        self.wl = cluster.rng.stream("check-workload")
        self.channels = scenario.channel_names()
        self.clients: Dict[str, object] = {}
        self.flash_active = False
        self.churn_cursor = 0
        self.settle_cursor: Dict[str, int] = {}
        self.stop_publish_at = scenario.horizon_s - PUBLISH_TAIL_S

    # --- subscription bookkeeping -------------------------------------
    def subscribe(self, client_id: str, channel: str) -> None:
        client = self.cluster.clients[client_id]
        client.subscribe(channel, _noop_callback)
        self.ledger.open_interval(self.sim.now, client_id, channel)

    def unsubscribe(self, client_id: str, channel: str) -> None:
        client = self.cluster.clients[client_id]
        client.unsubscribe(channel)
        self.ledger.close_interval(self.sim.now, client_id, channel)

    def subscribed_channels(self, client_id: str) -> List[str]:
        client = self.cluster.clients[client_id]
        return sorted(c for c in self.channels if client.is_subscribed(c))

    # --- publishing ---------------------------------------------------
    def pick_channel(self) -> str:
        if self.flash_active:
            if self.wl.random() < 0.9:
                return self.channels[0]
        elif self.scenario.hot_channel_bias > 0.0:
            if self.wl.random() < self.scenario.hot_channel_bias:
                return self.channels[0]
        return self.channels[self.wl.randrange(len(self.channels))]

    def publish_tick(self, writer_id: str) -> None:
        now = self.sim.now
        if now >= self.stop_publish_at:
            return
        client = self.cluster.clients.get(writer_id)
        if client is None:
            return
        if now >= self.scenario.settle_start_s:
            # Settle rotation: every channel gets fresh traffic so plan
            # entries refresh and convergence notices reach everyone.
            cursor = self.settle_cursor.get(writer_id, 0)
            channel = self.channels[cursor % len(self.channels)]
            self.settle_cursor[writer_id] = cursor + 1
        else:
            channel = self.pick_channel()
        client.publish(channel, f"{writer_id}@{now:.3f}", self.scenario.payload_size)
        interval = self.scenario.publish_interval_s
        if self.flash_active and now < self.scenario.settle_start_s:
            interval *= 0.25
        delay = interval * (0.8 + 0.4 * self.wl.random())
        self.sim.schedule(delay, self.publish_tick, writer_id)

    # --- workload shape events ----------------------------------------
    def flash_crowd(self) -> None:
        self.flash_active = True
        for reader_id in self.scenario.subscriber_ids():
            client = self.cluster.clients.get(reader_id)
            if client is not None and not client.is_subscribed(self.channels[0]):
                self.subscribe(reader_id, self.channels[0])

    def churn_tick(self) -> None:
        now = self.sim.now
        if now >= self.scenario.settle_start_s - CHURN_OFF_S - 0.5:
            return  # churned-out readers must be back before settle
        readers = self.scenario.subscriber_ids()
        reader_id = readers[self.churn_cursor % len(readers)]
        self.churn_cursor += 1
        held = self.subscribed_channels(reader_id)
        if held:
            channel = held[self.wl.randrange(len(held))]
            self.unsubscribe(reader_id, channel)
            self.sim.schedule(CHURN_OFF_S, self.churn_rejoin, reader_id, channel)
        self.sim.schedule(self.scenario.churn_interval_s, self.churn_tick)

    def churn_rejoin(self, reader_id: str, channel: str) -> None:
        client = self.cluster.clients.get(reader_id)
        if client is not None and not client.is_subscribed(channel):
            self.subscribe(reader_id, channel)


def _noop_callback(channel: str, body: object, envelope: object) -> None:
    pass


def run_scenario(
    scenario: Scenario, *, tracer: Optional[Tracer] = None
) -> RunResult:
    """Run one scenario deterministically and return its ground truth.

    A caller-supplied ``tracer`` (e.g. one teeing into a streaming sink)
    must keep event buffering on: the oracles read ``tracer.events``.
    """
    config = DynamothConfig(
        t_wait_s=scenario.t_wait_s,
        plan_entry_timeout_s=scenario.plan_entry_timeout_s,
        # Recovery needs client-side liveness probing; the mark TTL must
        # outlive the run so a failed-over client never walks back into a
        # dead server mid-scenario.
        client_ping_interval_s=1.0,
        failed_server_ttl_s=600.0,
        # The load window must outlive the heartbeat confirmation delay
        # (suspect + confirm = 5s): otherwise a dead server's channel
        # loads are pruned before the repair plan is generated, and
        # repair never re-homes anything (nor arms the repair buffer).
        load_window_s=8.0,
        repair_replay_enabled=not scenario.break_repair_replay,
        delivery_tier=scenario.delivery_tier,
        causal_order=scenario.causal_order,
        reliable_replay_enabled=not scenario.break_reliable_replay,
    )
    if tracer is None:
        tracer = Tracer()
    elif not tracer.events_kept:
        raise ValueError("run_scenario needs a buffering tracer (oracles read events)")
    cluster = DynamothCluster(
        seed=scenario.seed,
        config=config,
        initial_servers=scenario.initial_servers,
        tracer=tracer,
    )
    ledger = Ledger()

    # Server-side subscribe ledger, on every broker -- including servers
    # spawned or restarted later, via the materialize wrapper.
    def attach_listener(server: object) -> None:
        server_id = server.node_id

        def listener(channel: str, client_id: str, plan_version: int) -> None:
            ledger.server_subs.append((cluster.sim.now, server_id, channel, client_id))

        server.add_subscribe_listener(listener)

    for server in cluster.servers.values():
        attach_listener(server)
    original_materialize = cluster._materialize_server

    def materialize_and_attach(server_id: str):
        server = original_materialize(server_id)
        attach_listener(server)
        return server

    cluster._materialize_server = materialize_and_attach

    injector: Optional[FaultInjector] = None
    timeline: Tuple[ConcreteAction, ...] = ()
    if scenario.faults:
        injector = FaultInjector(cluster, ChaosSchedule(tuple(scenario.faults)))
        injector.arm()
        timeline = tuple(injector.timeline)

    workload = _Workload(scenario, cluster, ledger)

    def delivery_hook(client_id: str):
        def hook(channel: str, envelope, delivery) -> None:
            now = cluster.sim.now
            record = DeliveryRecord(
                t=now,
                client=client_id,
                channel=channel,
                msg_id=envelope.msg_id,
                sender=envelope.sender,
                server=delivery.server_id,
                seq=delivery.seq,
                epoch=delivery.epoch,
                replayed=delivery.replayed,
                pub_seq=envelope.pub_seq,
                deps=envelope.deps,
            )
            ledger.note_delivery(now, client_id, channel, envelope.msg_id, record)

        return hook

    def wire_hook(client_id: str):
        def hook(channel: str, delivery) -> None:
            if delivery.seq is not None:
                ledger.seq_observations.append((
                    cluster.sim.now,
                    client_id,
                    delivery.server_id,
                    channel,
                    delivery.epoch,
                    delivery.seq,
                ))

        return hook

    for reader_id in scenario.subscriber_ids():
        client = cluster.create_client(reader_id)
        client.on_delivery = delivery_hook(reader_id)
        client.on_wire_delivery = wire_hook(reader_id)
        count = 1 + workload.wl.randrange(min(3, scenario.channels))
        for channel in sorted(workload.wl.sample(workload.channels, count)):
            workload.subscribe(reader_id, channel)
    for writer_id in scenario.publisher_ids():
        client = cluster.create_client(writer_id)
        client.on_delivery = delivery_hook(writer_id)
        # Stagger the first publications so writers do not tick in lockstep.
        cluster.sim.schedule(
            0.5 + workload.wl.random() * scenario.publish_interval_s,
            workload.publish_tick,
            writer_id,
        )

    if scenario.flash_crowd_at_s > 0.0:
        cluster.sim.schedule(scenario.flash_crowd_at_s, workload.flash_crowd)
    if scenario.churn_interval_s > 0.0:
        cluster.sim.schedule(scenario.churn_interval_s, workload.churn_tick)

    def enter_settle() -> None:
        if injector is not None:
            injector.plane.clear()

    cluster.sim.schedule(scenario.settle_start_s, enter_settle)
    cluster.run_until(scenario.horizon_s)
    ledger.close_all(scenario.horizon_s)
    return RunResult(scenario, cluster, tracer, ledger, timeline)


def with_break(scenario: Scenario, broken: bool = True) -> Scenario:
    """The same scenario with the repair-replay kill switch toggled."""
    return replace(scenario, break_repair_replay=broken)


def with_reliable_break(scenario: Scenario, broken: bool = True) -> Scenario:
    """The same scenario with the reliable-replay kill switch toggled."""
    return replace(scenario, break_reliable_replay=broken)
