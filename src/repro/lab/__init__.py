"""The policy lab: record live load histories, replay them offline.

The lab closes the loop that the policy seam (:mod:`repro.core.policy`)
opens: :class:`LoadHistoryRecorder` captures the balancer's tick-by-tick
load picture during a live (simulated) run into a versioned JSONL
:class:`LoadHistory`; :class:`PolicyReplayer` then re-runs that history
against any registered policy *without* re-simulating the network, and
:func:`compare_policies` tabulates SLA violations, migration churn, plan
pushes and rented server-hours across all of them.

``python -m repro.lab`` exposes ``record`` / ``replay`` / ``compare``.
"""

from repro.lab.compare import ComparisonReport, compare_policies
from repro.lab.history import (
    HISTORY_SCHEMA,
    LoadHistory,
    LoadHistoryRecorder,
    plan_digest,
)
from repro.lab.replay import (
    MODELED,
    VERBATIM,
    PolicyReplayer,
    ReplayMetrics,
    ReplayResult,
)

__all__ = [
    "HISTORY_SCHEMA",
    "MODELED",
    "VERBATIM",
    "ComparisonReport",
    "LoadHistory",
    "LoadHistoryRecorder",
    "PolicyReplayer",
    "ReplayMetrics",
    "ReplayResult",
    "compare_policies",
    "plan_digest",
]
