"""Entry point for ``python -m repro.lab``."""

from repro.lab.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
