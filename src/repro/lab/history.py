"""Versioned JSONL load histories: record once, replay against any policy.

A :class:`LoadHistory` is everything the balancer *saw* during a run, at
balancer granularity -- per evaluation tick the window-averaged server
state (exact load-ratio inputs, per-channel loads in view iteration
order) and the logical per-channel demand, plus the pool events
(spawns/failures) and every plan the live balancer pushed.  That is
sufficient to re-run the balancer's decision loop offline, against any
registered :class:`~repro.core.policy.RebalancePolicy`, without
re-simulating brokers, clients or the network (:mod:`repro.lab.replay`).

Wire format (one JSON object per line):

* ``{"kind": "header", "schema": 1, "label": ..., "seed": ...,
  "default_nominal_bps": ..., "config": {DynamothConfig fields}}``
* ``{"kind": "plan", "t": ..., "version": ..., "digest": ...,
  "plan": Plan.to_dict()}`` -- every plan the live balancer adopted,
  including the initial plan (version 0).
* ``{"kind": "tick", "t": ..., "active": [...], "all_bootstrap_reported":
  ..., "servers": [[id, nominal, measured, cpu, [channel rows]], ...],
  "totals": [[channel, pubs/s, publishers, subs, bytes/s], ...]}``
* ``{"kind": "event", "t": ..., "event": ..., "detail": ...}`` -- the
  balancer's control-plane ledger (server-ready, server-failed, ...).

Determinism notes: ``servers`` preserves the live view's iteration order
(float summation order in cross-server totals), per-server channel rows
preserve ``channel_loads`` dict order (stable-sort tie-breaking in
``migratable_channels``), and ``measured`` is the exact window mean the
live load ratio was computed from.  Replaying a history therefore
reconstructs bit-identical estimator inputs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.core.config import DynamothConfig
from repro.core.messages import ChannelMetricsSnapshot, LoadReport
from repro.core.plan import Plan

HISTORY_SCHEMA = 1

#: Balancer event kinds that matter to replay (pool membership + spawns).
POOL_EVENT_KINDS = frozenset(
    {
        "server-ready",
        "server-failed",
        "server-resurrected",
        "decommission",
        "spawn-request",
    }
)


def plan_digest(plan: Plan) -> str:
    """Stable content digest of a plan (mappings, versions, pool, ring)."""
    payload = json.dumps(plan.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class ServerSample:
    """One server's window-averaged state at one balancer tick."""

    server_id: str
    nominal_bps: float
    #: exact window-mean measured egress (``lr = measured / nominal``)
    measured_bps: float
    cpu: float
    #: per-channel window averages, in live ``channel_loads`` dict order
    channels: Tuple[ChannelMetricsSnapshot, ...]

    def to_row(self) -> List[Any]:
        return [
            self.server_id,
            self.nominal_bps,
            self.measured_bps,
            self.cpu,
            [
                [
                    c.channel,
                    c.publications_per_s,
                    c.publisher_count,
                    c.subscriber_count,
                    c.messages_out_per_s,
                    c.bytes_out_per_s,
                ]
                for c in self.channels
            ],
        ]

    @staticmethod
    def from_row(row: List[Any]) -> "ServerSample":
        server_id, nominal, measured, cpu, channels = row
        return ServerSample(
            server_id=server_id,
            nominal_bps=nominal,
            measured_bps=measured,
            cpu=cpu,
            channels=tuple(
                ChannelMetricsSnapshot(c[0], c[1], c[2], c[3], c[4], c[5])
                for c in channels
            ),
        )

    def to_report(self, window_start: float, window_end: float) -> LoadReport:
        """A synthetic LoadReport reproducing this sample's view state.

        One report per server per tick: the window then averages over a
        single entry, reproducing the recorded means exactly.
        """
        return LoadReport(
            server_id=self.server_id,
            window_start=window_start,
            window_end=window_end,
            nominal_egress_bps=self.nominal_bps,
            measured_egress_bps=self.measured_bps,
            channels=self.channels,
            cpu_utilization=self.cpu,
        )


@dataclass(frozen=True)
class ChannelDemand:
    """Logical (replica-deduplicated) demand of one channel at one tick."""

    channel: str
    publications_per_s: float
    publisher_count: int
    subscriber_count: int
    bytes_out_per_s: float

    def to_row(self) -> List[Any]:
        return [
            self.channel,
            self.publications_per_s,
            self.publisher_count,
            self.subscriber_count,
            self.bytes_out_per_s,
        ]

    @staticmethod
    def from_row(row: List[Any]) -> "ChannelDemand":
        return ChannelDemand(row[0], row[1], row[2], row[3], row[4])


@dataclass(frozen=True)
class TickRecord:
    """One balancer evaluation tick."""

    t: float
    active_servers: Tuple[str, ...]
    all_bootstrap_reported: bool
    servers: Tuple[ServerSample, ...]
    totals: Tuple[ChannelDemand, ...]

    def to_obj(self) -> Dict[str, Any]:
        return {
            "kind": "tick",
            "t": self.t,
            "active": list(self.active_servers),
            "all_bootstrap_reported": self.all_bootstrap_reported,
            "servers": [s.to_row() for s in self.servers],
            "totals": [d.to_row() for d in self.totals],
        }

    @staticmethod
    def from_obj(obj: Dict[str, Any]) -> "TickRecord":
        return TickRecord(
            t=obj["t"],
            active_servers=tuple(obj["active"]),
            all_bootstrap_reported=obj["all_bootstrap_reported"],
            servers=tuple(ServerSample.from_row(r) for r in obj["servers"]),
            totals=tuple(ChannelDemand.from_row(r) for r in obj["totals"]),
        )


@dataclass(frozen=True)
class PoolEvent:
    """A control-plane event from the live balancer's ledger."""

    t: float
    event: str
    detail: str = ""

    def to_obj(self) -> Dict[str, Any]:
        return {"kind": "event", "t": self.t, "event": self.event, "detail": self.detail}

    @staticmethod
    def from_obj(obj: Dict[str, Any]) -> "PoolEvent":
        return PoolEvent(t=obj["t"], event=obj["event"], detail=obj.get("detail", ""))


@dataclass(frozen=True)
class PlanRecord:
    """One plan the live balancer adopted (for the seam-equivalence gate)."""

    t: float
    version: int
    digest: str
    plan: Dict[str, Any]

    def to_obj(self) -> Dict[str, Any]:
        return {
            "kind": "plan",
            "t": self.t,
            "version": self.version,
            "digest": self.digest,
            "plan": self.plan,
        }

    @staticmethod
    def from_obj(obj: Dict[str, Any]) -> "PlanRecord":
        return PlanRecord(
            t=obj["t"], version=obj["version"], digest=obj["digest"], plan=obj["plan"]
        )


@dataclass
class LoadHistory:
    """A recorded run: header + ticks + pool events + adopted plans."""

    label: str = "run"
    seed: Optional[int] = None
    default_nominal_bps: float = 0.0
    config: Dict[str, Any] = field(default_factory=dict)
    schema: int = HISTORY_SCHEMA
    ticks: List[TickRecord] = field(default_factory=list)
    events: List[PoolEvent] = field(default_factory=list)
    plans: List[PlanRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    def dynamoth_config(self, **overrides: Any) -> DynamothConfig:
        """Reconstruct the recorded config (unknown fields are dropped)."""
        known = {f.name for f in dataclasses.fields(DynamothConfig)}
        kwargs = {k: v for k, v in self.config.items() if k in known}
        kwargs.update(overrides)
        return DynamothConfig(**kwargs)

    def initial_plan(self) -> Plan:
        """The live run's starting plan (version 0)."""
        if not self.plans:
            raise ValueError("history has no plan records")
        first = min(self.plans, key=lambda p: p.version)
        return Plan.from_dict(first.plan)

    def duration_s(self) -> float:
        if not self.ticks:
            return 0.0
        return self.ticks[-1].t - self.ticks[0].t

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            self.write(fh)

    def write(self, fh: IO[str]) -> None:
        header = {
            "kind": "header",
            "schema": self.schema,
            "label": self.label,
            "seed": self.seed,
            "default_nominal_bps": self.default_nominal_bps,
            "config": self.config,
        }
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for record in self._records_in_order():
            fh.write(json.dumps(record.to_obj(), sort_keys=True) + "\n")

    def _records_in_order(self) -> Iterator[Union[TickRecord, PoolEvent, PlanRecord]]:
        # Each stream is already time-ordered; a stable merge keeps the
        # file readable chronologically (plan/event lines between the
        # ticks that bracket them).
        merged: List[Tuple[float, int, Union[TickRecord, PoolEvent, PlanRecord]]] = []
        merged.extend((p.t, 0, p) for p in self.plans)
        merged.extend((e.t, 1, e) for e in self.events)
        merged.extend((t.t, 2, t) for t in self.ticks)
        merged.sort(key=lambda item: (item[0], item[1]))
        for __, __, record in merged:
            yield record

    @staticmethod
    def load(path: Union[str, Path]) -> "LoadHistory":
        history: Optional[LoadHistory] = None
        with open(path, "r", encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                kind = obj.get("kind")
                if kind == "header":
                    if obj.get("schema") != HISTORY_SCHEMA:
                        raise ValueError(
                            f"{path}: unsupported history schema "
                            f"{obj.get('schema')!r} (expected {HISTORY_SCHEMA})"
                        )
                    history = LoadHistory(
                        label=obj.get("label", "run"),
                        seed=obj.get("seed"),
                        default_nominal_bps=obj.get("default_nominal_bps", 0.0),
                        config=obj.get("config", {}),
                        schema=obj["schema"],
                    )
                    continue
                if history is None:
                    raise ValueError(f"{path}:{line_no}: record before header")
                if kind == "tick":
                    history.ticks.append(TickRecord.from_obj(obj))
                elif kind == "event":
                    history.events.append(PoolEvent.from_obj(obj))
                elif kind == "plan":
                    history.plans.append(PlanRecord.from_obj(obj))
                else:
                    raise ValueError(f"{path}:{line_no}: unknown record kind {kind!r}")
        if history is None:
            raise ValueError(f"{path}: empty history (no header line)")
        return history


class LoadHistoryRecorder:
    """Observes a live :class:`~repro.core.balancer.LoadBalancer`.

    Attach before the run starts::

        recorder = LoadHistoryRecorder(label="flash", seed=7)
        cluster.balancer.history_recorder = recorder
        ... run ...
        recorder.finalize(cluster.balancer)
        recorder.history.save("flash.jsonl")

    ``record_tick`` is called by the balancer once per evaluation tick
    (before the plan gate, so every tick is captured whether or not a
    decision ran); ``finalize`` flushes events and plans adopted after
    the last tick.  Purely observational: recording changes no balancer
    behaviour, so a recorded run's trace stays byte-identical.
    """

    def __init__(self, label: str = "run", seed: Optional[int] = None) -> None:
        self.label = label
        self.seed = seed
        self.history: Optional[LoadHistory] = None
        self._events_seen = 0
        self._plans_seen = 0

    # ------------------------------------------------------------------
    def record_tick(self, now: float, balancer: Any) -> None:
        history = self._ensure_history(balancer)
        self._flush_ledgers(balancer)

        view = balancer.view
        samples: List[ServerSample] = []
        for server_id in view.servers():  # view iteration order, exactly
            loads = view.channel_loads(server_id)
            channels = tuple(
                ChannelMetricsSnapshot(
                    channel=channel,
                    publications_per_s=load.publications_per_s,
                    publisher_count=load.publisher_count,
                    subscriber_count=load.subscriber_count,
                    messages_out_per_s=load.messages_out_per_s,
                    bytes_out_per_s=load.bytes_out_per_s,
                )
                for channel, load in loads.items()  # dict order, exactly
            )
            samples.append(
                ServerSample(
                    server_id=server_id,
                    nominal_bps=view.nominal_egress_bps(server_id),
                    measured_bps=view.mean_measured_egress_bps(server_id),
                    cpu=view.cpu_utilization(server_id),
                    channels=channels,
                )
            )

        seen: set[str] = set()
        for sample in samples:
            seen.update(c.channel for c in sample.channels)
        totals: List[ChannelDemand] = []
        for channel in sorted(seen):
            t = view.channel_totals(channel, balancer.plan.mapping(channel))
            if t is None:
                continue
            totals.append(
                ChannelDemand(
                    channel=channel,
                    publications_per_s=t.publications_per_s,
                    publisher_count=t.publisher_count,
                    subscriber_count=t.subscriber_count,
                    bytes_out_per_s=t.bytes_out_per_s,
                )
            )

        history.ticks.append(
            TickRecord(
                t=now,
                active_servers=tuple(balancer.active_servers),
                all_bootstrap_reported=all(
                    view.has_report(s) for s in balancer.bootstrap_servers
                ),
                servers=tuple(samples),
                totals=tuple(totals),
            )
        )

    def finalize(self, balancer: Any) -> LoadHistory:
        """Flush trailing events/plans; returns the completed history."""
        history = self._ensure_history(balancer)
        self._flush_ledgers(balancer)
        return history

    # ------------------------------------------------------------------
    def _ensure_history(self, balancer: Any) -> LoadHistory:
        if self.history is None:
            self.history = LoadHistory(
                label=self.label,
                seed=self.seed,
                default_nominal_bps=balancer._default_nominal_bps,
                config=dataclasses.asdict(balancer.config),
            )
        return self.history

    def _flush_ledgers(self, balancer: Any) -> None:
        """Diff the balancer's event and plan ledgers since the last call."""
        history = self.history
        assert history is not None
        events = balancer.events
        for event in events[self._events_seen :]:
            if event.kind in POOL_EVENT_KINDS:
                history.events.append(PoolEvent(event.time, event.kind, event.detail))
        self._events_seen = len(events)

        plans = balancer.plan_history
        for pushed_at, plan in plans[self._plans_seen :]:
            history.plans.append(
                PlanRecord(
                    t=pushed_at,
                    version=plan.version,
                    digest=plan_digest(plan),
                    plan=plan.to_dict(),
                )
            )
        self._plans_seen = len(plans)
