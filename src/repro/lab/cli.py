"""``python -m repro.lab`` -- record, replay and compare rebalancing policies.

Three subcommands::

    record   run a live scenario (steady / flash-crowd / crash) and save
             the balancer's tick-by-tick load history to a JSONL file
    replay   re-run one recorded history against one policy; with
             ``--verify`` assert the replayed plan sequence matches the
             recorded one (the paper-policy seam-equivalence gate)
    compare  replay the history against every registered policy and
             print a markdown (or JSON) comparison report

Recording runs the full simulator once; replaying is pure arithmetic
over the recorded ticks, so comparing five policies costs milliseconds.
All three are seed-deterministic end to end.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.broker.config import BrokerConfig
from repro.core.cluster import DynamothCluster
from repro.core.config import DynamothConfig
from repro.core.policy import available_policies
from repro.faults import ChaosSchedule, FaultInjector
from repro.lab.compare import compare_policies
from repro.lab.history import LoadHistory, LoadHistoryRecorder
from repro.lab.replay import MODELED, VERBATIM, PolicyReplayer
from repro.workload.rgame import RGameConfig, RGameWorkload
from repro.workload.schedules import PopulationSchedule, steps


# ----------------------------------------------------------------------
# Recording scenarios
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One recordable live scenario."""

    name: str
    describe: str
    duration_s: float
    initial_servers: int
    max_servers: int
    nominal_egress_bps: float
    schedule: PopulationSchedule
    tiles_per_side: int = 3
    updates_per_s: float = 3.0
    payload_size: int = 200
    #: crash the second bootstrap server at this time (None = no faults)
    crash_at_s: Optional[float] = None

    def dynamoth_config(self) -> DynamothConfig:
        return DynamothConfig(
            max_servers=self.max_servers,
            min_servers=1,
            spawn_delay_s=5.0,
            t_wait_s=10.0,
        )

    def broker_config(self) -> BrokerConfig:
        return BrokerConfig(
            nominal_egress_bps=self.nominal_egress_bps,
            cpu_per_publish_s=10e-6,
            cpu_per_delivery_s=5e-6,
            per_connection_bps=None,
            output_buffer_limit_bytes=8 * 1_048_576,
        )


def _scenarios() -> Dict[str, Scenario]:
    return {
        # Mild constant load on an over-provisioned pool: exercises the
        # low-load drain path (server-hours differ across policies).
        "steady": Scenario(
            name="steady",
            describe="constant moderate load, over-provisioned pool",
            duration_s=60.0,
            initial_servers=2,
            max_servers=4,
            nominal_egress_bps=200_000.0,
            schedule=steps([(0.0, 30), (60.0, 30)]),
        ),
        # A quiet start, then the population quadruples in seconds: the
        # paper's flash-crowd shape.  Overloads the single bootstrap
        # server hard enough to force migrations and spawns.
        "flash-crowd": Scenario(
            name="flash-crowd",
            describe="population spike overloading the bootstrap server",
            duration_s=90.0,
            initial_servers=1,
            max_servers=4,
            nominal_egress_bps=150_000.0,
            schedule=steps([(0.0, 12), (20.0, 12), (28.0, 90), (90.0, 90)]),
        ),
        # Steady load, one broker hard-crashes mid-run: records the
        # failure/repair event stream for fault-path replay.
        "crash": Scenario(
            name="crash",
            describe="broker crash under steady load",
            duration_s=90.0,
            initial_servers=3,
            max_servers=4,
            nominal_egress_bps=250_000.0,
            schedule=steps([(0.0, 40), (90.0, 40)]),
            crash_at_s=30.0,
        ),
    }


def record_scenario(scenario: Scenario, seed: int) -> LoadHistory:
    """Run one live scenario with a history recorder attached."""
    cluster = DynamothCluster(
        seed=seed,
        config=scenario.dynamoth_config(),
        broker_config=scenario.broker_config(),
        initial_servers=scenario.initial_servers,
    )
    recorder = LoadHistoryRecorder(label=scenario.name, seed=seed)
    cluster.balancer.history_recorder = recorder

    if scenario.crash_at_s is not None:
        victim = sorted(cluster.servers)[min(1, len(cluster.servers) - 1)]
        FaultInjector(
            cluster, ChaosSchedule.single_crash(victim, at=scenario.crash_at_s)
        ).arm()

    workload = RGameWorkload(
        cluster,
        RGameConfig(
            tiles_per_side=scenario.tiles_per_side,
            updates_per_s=scenario.updates_per_s,
            payload_size=scenario.payload_size,
        ),
    )
    workload.follow(scenario.schedule)
    cluster.run_until(scenario.duration_s)
    workload.stop()
    return recorder.finalize(cluster.balancer)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_record(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    scenario = _scenarios()[args.scenario]
    history = record_scenario(scenario, args.seed)
    history.save(args.out)
    out(
        f"recorded {len(history.ticks)} ticks, {len(history.plans)} plans, "
        f"{len(history.events)} pool events ({scenario.describe})"
    )
    out(f"history written to {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    history = LoadHistory.load(args.history)
    replayer = PolicyReplayer(history, args.policy, mode=args.mode)
    result = replayer.run(verify=args.verify)
    if args.json:
        import json

        out(json.dumps(result.metrics.to_dict(), indent=2, sort_keys=True))
    else:
        m = result.metrics
        out(
            f"policy {m.policy} ({m.mode}): {m.ticks} ticks, "
            f"{m.plan_pushes} pushes, {m.migrations} migrations, "
            f"{m.spawns} spawns, {m.decommissions} decommissions, "
            f"{m.sla_violations} SLA violations "
            f"({m.sla_violation_seconds:.1f}s), "
            f"{m.server_hours:.3f} server-hours"
        )
    if args.verify:
        if result.divergences:
            out("plan sequence DIVERGES from the recorded run:")
            for line in result.divergences:
                out(f"  - {line}")
            return 1
        out(
            f"plan sequence matches the recorded run "
            f"({len(result.plan_seq)} plans, digests identical)"
        )
    return 0


def _cmd_compare(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    history = LoadHistory.load(args.history)
    policies: Optional[List[str]] = None
    if args.policies:
        policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    report = compare_policies(
        history, policies, sla_threshold_s=args.sla_threshold
    )
    rendered = report.to_json() if args.json else report.to_markdown()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered)
        out(f"report written to {args.out}")
    else:
        out(rendered)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lab",
        description="Record, replay and compare rebalancing policies.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="run a live scenario and save its load history")
    record.add_argument(
        "--scenario",
        choices=sorted(_scenarios()),
        default="flash-crowd",
        help="which live scenario to run",
    )
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--out", required=True, help="output history file (JSONL)")
    record.set_defaults(func=_cmd_record)

    replay = sub.add_parser("replay", help="replay a history against one policy")
    replay.add_argument("history", help="recorded history file")
    replay.add_argument(
        "--policy",
        default="paper",
        help=f"policy to replay (registered: {', '.join(available_policies())})",
    )
    replay.add_argument(
        "--mode",
        choices=[VERBATIM, MODELED],
        default=MODELED,
        help="verbatim rebuilds the recorded views bit-exactly; "
        "modeled re-assigns demand to the replayed policy's plan",
    )
    replay.add_argument(
        "--verify",
        action="store_true",
        help="assert the replayed plan sequence matches the recorded one "
        "(use with --mode verbatim and the recorded policy)",
    )
    replay.add_argument("--json", action="store_true", help="print metrics as JSON")
    replay.set_defaults(func=_cmd_replay)

    compare = sub.add_parser("compare", help="replay a history against every policy")
    compare.add_argument("history", help="recorded history file")
    compare.add_argument(
        "--policies",
        default="",
        help="comma-separated policy names (default: all registered)",
    )
    compare.add_argument(
        "--sla-threshold",
        type=float,
        default=None,
        help="latency-proxy SLA threshold in seconds "
        "(default: the recorded config's, else 0.25)",
    )
    compare.add_argument("--json", action="store_true", help="emit JSON instead of markdown")
    compare.add_argument("--out", default="", help="write the report to this file")
    compare.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler: Callable[[argparse.Namespace, Callable[[str], None]], int] = args.func
    return handler(args, lambda line: print(line, file=sys.stdout))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
