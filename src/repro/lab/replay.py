"""Offline policy replay: re-run a recorded load history, no network.

:class:`PolicyReplayer` drives the balancer's decision loop -- the same
gating (``T_wait``, pool-changed, all-bootstrap-reported), the same
spawn/decommission mechanics, the same policy seam -- over the ticks of a
recorded :class:`~repro.lab.history.LoadHistory`, against any registered
:class:`~repro.core.policy.RebalancePolicy`.  Nothing is re-simulated:
one replay tick is one dictionary of floats, so sweeping five policies
over a minute of history takes milliseconds.

Two fidelity modes:

* ``verbatim`` -- every tick's view is rebuilt from the recorded
  window-averaged server state, bit-exactly.  The replayed policy sees
  *exactly* what the live balancer saw, so replaying the recorded
  ``paper`` policy must reproduce the live plan sequence digest-for-
  digest (the seam-equivalence gate).  Load does NOT react to the
  replayed policy's decisions -- use it to verify, not to compare.
* ``modeled`` -- each tick's recorded *logical* per-channel demand is
  re-assigned to servers according to the replayed policy's own current
  plan (split per replication-mode semantics), so different placements
  genuinely produce different server loads, queues and SLA outcomes.
  This is the comparison mode.

SLA accounting reuses the PR 6 sliding-window monitor
(:class:`~repro.obs.sla.SlaMonitor`) fed by a deterministic latency
proxy: base latency plus an M/M/1-flavoured knee penalty once a server
runs hot, plus an accumulated backlog drain term while ``LR > 1`` (an
overloaded server's queue grows by ``(LR - 1) * dt`` seconds of work per
tick and drains at the same rate when capacity returns).  The proxy is
documented in DESIGN.md; its point is *ranking* policies under identical
demand, not absolute latency prediction.

Everything here is pure arithmetic over the history -- no RNG, no wall
clock, no simulator -- so the same history and policy always produce the
identical report.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.core.config import DynamothConfig
from repro.core.messages import ChannelMetricsSnapshot, LoadReport
from repro.core.metrics import ClusterLoadView
from repro.core.plan import ChannelMapping, Plan, ReplicationMode
from repro.core.policy import PolicyContext, RebalancePolicy, make_policy
from repro.lab.history import LoadHistory, TickRecord, plan_digest
from repro.obs.sla import OVERALL_SCOPE, SlaConfig, SlaMonitor
from repro.obs.trace import NULL_TRACER

#: Latency proxy constants (see DESIGN.md section 6i).
BASE_LATENCY_S = 0.02
KNEE_LR = 0.8
KNEE_GAIN_S = 0.5

#: Default SLA threshold when the recorded config has none.
DEFAULT_SLA_THRESHOLD_S = 0.25

VERBATIM = "verbatim"
MODELED = "modeled"


@dataclass
class ReplayMetrics:
    """Per-policy outcome of one replay (the comparison row)."""

    policy: str
    mode: str
    ticks: int = 0
    decisions: int = 0
    plan_pushes: int = 0
    #: channel assignment changes across all adopted plans (plan churn)
    migrations: int = 0
    repairs: int = 0
    spawns: int = 0
    decommissions: int = 0
    #: total rented server time over the replayed span
    server_seconds: float = 0.0
    peak_load_ratio: float = 0.0
    mean_load_ratio: float = 0.0
    final_plan_version: int = 0
    final_server_count: int = 0
    sla_violations: int = 0
    sla_violation_seconds: float = 0.0
    #: full ``SlaMonitor.report()`` payload
    sla: Dict[str, Any] = field(default_factory=dict)

    @property
    def server_hours(self) -> float:
        return self.server_seconds / 3600.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "mode": self.mode,
            "ticks": self.ticks,
            "decisions": self.decisions,
            "plan_pushes": self.plan_pushes,
            "migrations": self.migrations,
            "repairs": self.repairs,
            "spawns": self.spawns,
            "decommissions": self.decommissions,
            "server_seconds": self.server_seconds,
            "server_hours": self.server_hours,
            "peak_load_ratio": self.peak_load_ratio,
            "mean_load_ratio": self.mean_load_ratio,
            "final_plan_version": self.final_plan_version,
            "final_server_count": self.final_server_count,
            "sla_violations": self.sla_violations,
            "sla_violation_seconds": self.sla_violation_seconds,
            "sla": self.sla,
        }


@dataclass
class ReplayResult:
    """Metrics plus the adopted plan sequence (for the equivalence gate)."""

    metrics: ReplayMetrics
    #: (t, version, digest) of every adopted plan, initial plan included
    plan_seq: List[Tuple[float, int, str]] = field(default_factory=list)
    #: mismatches against the recorded plan sequence (verify runs only)
    divergences: List[str] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.divergences


class PolicyReplayer:
    """Re-runs one recorded history against one policy."""

    def __init__(
        self,
        history: LoadHistory,
        policy_name: str,
        *,
        mode: str = MODELED,
        sla_threshold_s: Optional[float] = None,
        config_overrides: Optional[Dict[str, Any]] = None,
    ) -> None:
        if mode not in (VERBATIM, MODELED):
            raise ValueError(f"unknown replay mode: {mode!r}")
        if not history.ticks:
            raise ValueError("cannot replay an empty history")
        self.history = history
        self.mode = mode
        overrides: Dict[str, Any] = {"rebalance_policy": policy_name}
        overrides.update(config_overrides or {})
        self.config: DynamothConfig = history.dynamoth_config(**overrides)
        self.policy: RebalancePolicy = make_policy(self.config)
        threshold = sla_threshold_s
        if threshold is None:
            threshold = self.config.sla_threshold_s
        if threshold is None:
            threshold = DEFAULT_SLA_THRESHOLD_S
        self.sla_threshold_s = threshold

    # ------------------------------------------------------------------
    def run(self, *, verify: bool = False) -> ReplayResult:
        history = self.history
        cfg = self.config
        t0 = history.ticks[0].t
        t_end = history.ticks[-1].t

        plan = history.initial_plan()
        active: List[str] = list(plan.active_servers)
        bootstrap: Set[str] = set(plan.active_servers)
        started: Dict[str, float] = {s: t0 for s in active}
        ended: Dict[str, float] = {}

        # Recorded pool events, time-ordered queues.
        ready_ids: Deque[str] = deque(
            e.detail for e in history.events if e.event == "server-ready" and e.detail
        )
        failures: Deque[Tuple[float, str]] = deque(
            (e.t, e.detail) for e in history.events if e.event == "server-failed"
        )
        resurrections: Deque[Tuple[float, str]] = deque(
            (e.t, e.detail) for e in history.events if e.event == "server-resurrected"
        )

        metrics = ReplayMetrics(policy=self.policy.name, mode=self.mode)
        plan_seq: List[Tuple[float, int, str]] = [
            (history.plans[0].t if history.plans else t0, plan.version, plan_digest(plan))
        ]
        monitor = SlaMonitor(
            NULL_TRACER,
            SlaConfig(
                threshold_s=self.sla_threshold_s,
                quantile=cfg.sla_quantile,
                window_s=cfg.sla_window_s,
                slices=cfg.sla_window_slices,
                per_channel=False,
                emit_window_stats=False,
            ),
        )

        pending_spawns: List[Tuple[float, str]] = []  # (ready_t, server_id)
        spawn_counter = 0
        pool_changed = False
        last_plan_t = -float("inf")
        backlog: Dict[str, float] = {}
        dead_pending: List[str] = []
        lr_sum = 0.0
        lr_samples = 0
        prev_t: Optional[float] = None

        def maybe_spawn(now: float) -> None:
            nonlocal spawn_counter
            total = len(active) + len(pending_spawns)
            if pending_spawns or total >= cfg.max_servers:
                return
            if ready_ids:
                server_id = ready_ids.popleft()
            else:
                server_id = f"lab{spawn_counter}"
                spawn_counter += 1
            pending_spawns.append((now + cfg.spawn_delay_s, server_id))
            metrics.spawns += 1

        def adopt(new_plan: Plan, now: float) -> None:
            nonlocal plan, last_plan_t
            changed = plan.diff(new_plan)
            plan = new_plan
            metrics.migrations += len(changed)
            metrics.plan_pushes += 1
            plan_seq.append((now, plan.version, plan_digest(plan)))
            last_plan_t = now

        for tick in history.ticks:
            now = tick.t
            dt = 0.0 if prev_t is None else now - prev_t
            prev_t = now
            metrics.ticks += 1

            # 1. spawn completions (ready exactly spawn_delay_s after the
            #    request, mirroring the cluster's loopback)
            still_pending: List[Tuple[float, str]] = []
            for ready_t, server_id in pending_spawns:
                if ready_t <= now:
                    if server_id not in active:
                        active.append(server_id)
                    started.setdefault(server_id, ready_t)
                    ended.pop(server_id, None)
                    pool_changed = True
                else:
                    still_pending.append((ready_t, server_id))
            pending_spawns = still_pending

            # 2. recorded failures / resurrections due by this tick
            while failures and failures[0][0] <= now:
                __, dead = failures.popleft()
                if dead in active:
                    active.remove(dead)
                    ended[dead] = now
                bootstrap.discard(dead)
                dead_pending.append(dead)
                if cfg.replace_failed_servers or len(active) < cfg.min_servers:
                    maybe_spawn(now)
            while resurrections and resurrections[0][0] <= now:
                __, back = resurrections.popleft()
                if back not in active:
                    active.append(back)
                started.setdefault(back, now)
                ended.pop(back, None)
                pool_changed = True

            # 3. the view this tick's decisions are based on
            view = self._build_view(tick, plan, active)

            # 4. plan repair for confirmed failures (policy placement)
            if dead_pending and active:
                pending, dead_pending = dead_pending, []
                for dead in pending:
                    repaired = self._repair(plan, view, active, bootstrap, dead, now)
                    if repaired is not None:
                        metrics.repairs += 1
                        adopt(repaired, now)

            # 5. latency proxy -> SLA monitor, plus load accounting
            monitor.poll(now)
            for server_id in active:
                lr = view.load_ratio(server_id)
                lr_sum += lr
                lr_samples += 1
                if lr > metrics.peak_load_ratio:
                    metrics.peak_load_ratio = lr
                queue = max(0.0, backlog.get(server_id, 0.0) + (lr - 1.0) * dt)
                backlog[server_id] = queue
                excess = max(0.0, lr - KNEE_LR)
                latency = BASE_LATENCY_S + queue + excess * excess * KNEE_GAIN_S
                for channel in view.channel_loads(server_id):
                    monitor.observe(now, latency, channel, server_id)

            # 6. the balancer's decision gate, verbatim
            waited_enough = (now - last_plan_t) >= cfg.t_wait_s
            if not (waited_enough or pool_changed):
                continue
            if not tick.all_bootstrap_reported:
                continue

            ctx = PolicyContext(
                now=now,
                plan=plan,
                view=view,
                config=cfg,
                active_servers=tuple(active),
                bootstrap_servers=frozenset(bootstrap),
                default_nominal_bps=self.history.default_nominal_bps,
                allow_scale_down=not pending_spawns,
            )
            decision = self.policy.decide(ctx)
            metrics.decisions += 1
            pool_changed = False
            if decision.is_noop:
                continue

            if decision.spawn_servers > 0:
                maybe_spawn(now)
            for server_id in decision.decommission:
                if server_id in active:
                    active.remove(server_id)
                    ended[server_id] = now
                    metrics.decommissions += 1
            if decision.mappings or decision.decommission:
                adopt(
                    plan.evolve(
                        mappings=decision.mappings, active_servers=tuple(active)
                    ),
                    now,
                )

        # Close SLA episodes: let the last samples age out of the window.
        monitor.poll(t_end + cfg.sla_window_s + 2 * monitor.slice_s)

        metrics.mean_load_ratio = lr_sum / lr_samples if lr_samples else 0.0
        metrics.final_plan_version = plan.version
        metrics.final_server_count = len(active)
        metrics.server_seconds = self._server_seconds(started, ended, t0, t_end)
        sla_report = monitor.report()
        metrics.sla = sla_report
        # Headline counts use the cluster-wide scope only; the per-server
        # episodes stay available in the full report.
        overall = [
            v for v in sla_report["violations"] if v["scope"] == OVERALL_SCOPE
        ]
        metrics.sla_violations = len(overall)
        metrics.sla_violation_seconds = sum(
            v["duration_s"] or 0.0 for v in overall
        )

        result = ReplayResult(metrics=metrics, plan_seq=plan_seq)
        if verify:
            result.divergences = self._diverging(plan_seq)
        return result

    # ------------------------------------------------------------------
    def _repair(
        self,
        plan: Plan,
        view: ClusterLoadView,
        active: List[str],
        bootstrap: Set[str],
        dead_id: str,
        now: float,
    ) -> Optional[Plan]:
        """Re-home the dead server's channels (mirrors LoadBalancer._repair_plan)."""
        channels = sorted(
            set(plan.channels_on(dead_id)) | set(view.channel_loads(dead_id))
        )
        live = list(active)
        if not live:
            return None
        ctx = PolicyContext(
            now=now,
            plan=plan,
            view=view,
            config=self.config,
            active_servers=tuple(live + [dead_id]),
            bootstrap_servers=frozenset(bootstrap),
            default_nominal_bps=self.history.default_nominal_bps,
        )
        estimator = ctx.make_estimator()
        mappings: Dict[str, ChannelMapping] = {}
        for channel in channels:
            current = plan.mapping(channel)
            if dead_id not in current.servers:
                continue
            survivors = tuple(s for s in current.servers if s != dead_id and s in live)
            if not survivors:
                target = self.policy.place_unknown_channel(ctx, estimator, channel, live)
                if target is None:
                    target = estimator.least_loaded(live)
                if target is None:
                    continue
                estimator.migrate(channel, dead_id, target)
                mappings[channel] = ChannelMapping(ReplicationMode.SINGLE, (target,))
            elif len(survivors) == 1:
                mappings[channel] = ChannelMapping(ReplicationMode.SINGLE, survivors)
            else:
                mappings[channel] = ChannelMapping(current.mode, survivors)
        return plan.evolve(mappings=mappings, active_servers=tuple(active))

    # ------------------------------------------------------------------
    def _build_view(
        self, tick: TickRecord, plan: Plan, active: List[str]
    ) -> ClusterLoadView:
        view = ClusterLoadView(self.config.load_window_s)
        if self.mode == VERBATIM:
            # Bit-exact reconstruction: one synthetic report per server
            # carrying the recorded window means (a single-report window
            # averages to exactly those means), added in recorded view
            # order so cross-server float summation matches.
            for sample in tick.servers:
                view.add_report(sample.to_report(tick.t - 1.0, tick.t))
            return view

        # Modeled: re-assign the recorded logical demand onto the
        # *replayed* plan's servers, per replication-mode semantics.
        active_set = set(active)
        nominal = {s.server_id: s.nominal_bps for s in tick.servers}
        ring_members = set(plan.ring.servers)
        per_server: Dict[str, List[ChannelMetricsSnapshot]] = {s: [] for s in active}
        for demand in tick.totals:
            mapping = plan.mapping(demand.channel)
            homes = [s for s in mapping.servers if s in active_set]
            mode = mapping.mode
            if not homes:
                # The mapped server(s) are gone; route like a client whose
                # ring lookup excludes known-dead servers.
                exclude = ring_members - active_set
                if ring_members <= exclude:
                    continue  # every ring server is down
                home = plan.ring.lookup(demand.channel, exclude=sorted(exclude))
                if home not in active_set:
                    continue
                homes = [home]
                mode = ReplicationMode.SINGLE
            n = len(homes)
            sub_share = _split_int(demand.subscriber_count, n)
            for index, server_id in enumerate(homes):
                if mode is ReplicationMode.ALL_SUBSCRIBERS:
                    pubs = demand.publications_per_s / n
                    subs = demand.subscriber_count
                elif mode is ReplicationMode.ALL_PUBLISHERS:
                    pubs = demand.publications_per_s
                    subs = sub_share[index]
                else:
                    pubs = demand.publications_per_s
                    subs = demand.subscriber_count
                per_server[server_id].append(
                    ChannelMetricsSnapshot(
                        channel=demand.channel,
                        publications_per_s=pubs,
                        publisher_count=demand.publisher_count,
                        subscriber_count=subs,
                        messages_out_per_s=0.0,
                        bytes_out_per_s=demand.bytes_out_per_s / n,
                    )
                )
        for server_id in active:
            snaps = tuple(per_server[server_id])
            measured = sum(s.bytes_out_per_s for s in snaps)
            view.add_report(
                LoadReport(
                    server_id=server_id,
                    window_start=tick.t - 1.0,
                    window_end=tick.t,
                    nominal_egress_bps=nominal.get(
                        server_id, self.history.default_nominal_bps
                    ),
                    measured_egress_bps=measured,
                    channels=snaps,
                )
            )
        return view

    # ------------------------------------------------------------------
    def _server_seconds(
        self,
        started: Dict[str, float],
        ended: Dict[str, float],
        t0: float,
        t_end: float,
    ) -> float:
        total = 0.0
        for server_id, start_t in started.items():
            stop_t = min(ended.get(server_id, t_end), t_end)
            total += max(0.0, stop_t - max(start_t, t0))
        return total

    def _diverging(self, plan_seq: List[Tuple[float, int, str]]) -> List[str]:
        """Compare the replayed plan sequence against the recorded one."""
        recorded = sorted(self.history.plans, key=lambda p: p.version)
        out: List[str] = []
        for index in range(max(len(recorded), len(plan_seq))):
            if index >= len(recorded):
                t, version, digest = plan_seq[index]
                out.append(
                    f"extra replayed plan v{version} at t={t:g} (digest {digest})"
                )
                continue
            if index >= len(plan_seq):
                rec = recorded[index]
                out.append(
                    f"missing replayed plan v{rec.version} "
                    f"(recorded at t={rec.t:g}, digest {rec.digest})"
                )
                continue
            rec = recorded[index]
            t, version, digest = plan_seq[index]
            if version != rec.version or digest != rec.digest:
                out.append(
                    f"plan #{index} diverges: recorded v{rec.version}/"
                    f"{rec.digest} at t={rec.t:g}, replayed v{version}/"
                    f"{digest} at t={t:g}"
                )
                break  # later plans inherit the divergence; stop at first
        return out


def _split_int(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` integers differing by at most one."""
    base, remainder = divmod(total, parts)
    return [base + (1 if index < remainder else 0) for index in range(parts)]
