"""Side-by-side policy comparison over one recorded load history.

``compare_policies`` replays the same :class:`~repro.lab.history.LoadHistory`
through every requested policy in ``modeled`` mode and tabulates the
outcomes: SLA violations (count and total seconds over threshold),
migration churn, plan pushes, spawns/decommissions, rented server-hours
and load-ratio statistics.  The report renders to markdown (for humans
and CI artifacts) and JSON (for tooling); both renderings are fully
deterministic -- same history, same policies, byte-identical output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.policy import available_policies
from repro.lab.history import LoadHistory
from repro.lab.replay import MODELED, PolicyReplayer, ReplayMetrics

REPORT_SCHEMA = 1


@dataclass
class ComparisonReport:
    """All policies' replay outcomes over one history."""

    history_label: str
    seed: int
    duration_s: float
    ticks: int
    sla_threshold_s: float
    rows: List[ReplayMetrics] = field(default_factory=list)

    def row(self, policy: str) -> ReplayMetrics:
        for metrics in self.rows:
            if metrics.policy == policy:
                return metrics
        raise KeyError(policy)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "history_label": self.history_label,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "ticks": self.ticks,
            "sla_threshold_s": self.sla_threshold_s,
            "policies": [m.to_dict() for m in self.rows],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_markdown(self) -> str:
        """A deterministic markdown report (the CI artifact)."""
        lines: List[str] = []
        out = lines.append
        out(f"# Policy lab: `{self.history_label}`")
        out("")
        out(
            f"Replayed {self.ticks} recorded ticks ({self.duration_s:.0f}s of "
            f"history, seed {self.seed}) against {len(self.rows)} policies in "
            f"modeled mode; SLA threshold {self.sla_threshold_s * 1000:.0f} ms "
            f"on the windowed latency proxy."
        )
        out("")
        out(
            "| policy | SLA viol. | SLA sec | pushes | migrations | spawns "
            "| decomm. | server-h | peak LR | mean LR |"
        )
        out("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|")
        for m in self.rows:
            out(
                f"| {m.policy} | {m.sla_violations} "
                f"| {m.sla_violation_seconds:.1f} | {m.plan_pushes} "
                f"| {m.migrations} | {m.spawns} | {m.decommissions} "
                f"| {m.server_hours:.3f} | {m.peak_load_ratio:.2f} "
                f"| {m.mean_load_ratio:.2f} |"
            )
        out("")
        out(
            "Columns: SLA violation episodes and total seconds in violation; "
            "plan pushes and channel reassignments (churn); servers rented "
            "and released; total server-hours; peak and mean per-server load "
            "ratio over the replay."
        )
        return "\n".join(lines) + "\n"


def compare_policies(
    history: LoadHistory,
    policies: Optional[Sequence[str]] = None,
    *,
    sla_threshold_s: Optional[float] = None,
    config_overrides: Optional[Dict[str, Any]] = None,
) -> ComparisonReport:
    """Replay ``history`` through each policy (default: all registered)."""
    names = list(policies) if policies is not None else available_policies()
    if not names:
        raise ValueError("no policies to compare")
    rows: List[ReplayMetrics] = []
    threshold = None
    for name in names:
        replayer = PolicyReplayer(
            history,
            name,
            mode=MODELED,
            sla_threshold_s=sla_threshold_s,
            config_overrides=config_overrides,
        )
        threshold = replayer.sla_threshold_s
        rows.append(replayer.run().metrics)
    assert threshold is not None
    return ComparisonReport(
        history_label=history.label,
        seed=history.seed,
        duration_s=history.duration_s(),
        ticks=len(history.ticks),
        sla_threshold_s=threshold,
        rows=rows,
    )
