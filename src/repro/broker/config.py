"""Broker resource-model configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class BrokerConfig:
    """Resource model of one pub/sub server node.

    The defaults are calibrated so that the *relative* saturation points of
    the paper's experiments are reproduced; absolute values stand in for
    the paper's lab machines ("the values ... were determined empirically
    based on the capabilities of the machines at our disposal").

    Attributes
    ----------
    nominal_egress_bps:
        ``T_i`` of eq. 1 -- the maximum outgoing bandwidth the node
        advertises to the load balancer, in bytes/second.
    egress_headroom:
        The actual NIC drain rate is ``egress_headroom * nominal_egress_bps``.
        Real NICs sustain slightly more than the advertised figure, which
        is why measured load ratios in the paper can exceed 1.0 (servers
        were observed to fail near LR = 1.15).
    cpu_per_publish_s:
        CPU seconds to parse and route one inbound PUBLISH command.
    cpu_per_delivery_s:
        CPU seconds to serialize one outbound delivery to one subscriber.
        Saturation of the single-core CPU at high fan-out is what bends the
        non-replicated curve of Experiment 1a.
    per_message_overhead_bytes:
        Protocol framing added to every delivery on the wire.
    output_buffer_limit_bytes:
        Redis-style per-connection output buffer hard limit; a subscriber
        connection whose buffered backlog exceeds this is killed
        (Experiment 1b's failure mode).
    per_connection_bps:
        Maximum drain rate of a single subscriber connection (TCP / client
        uplink ceiling).  ``None`` means only the shared NIC limits it.
    fanout_cache_enabled:
        Keep the per-channel precompiled subscriber arrays (resolved
        connection + transport pair-state refs) across publications,
        invalidating only on topology changes.  ``False`` rebuilds the
        arrays on every publication through the exact same code path --
        the comparison knob the byte-identical cache property tests use.
        Results are identical either way; only wall-clock time differs.
    """

    nominal_egress_bps: float = 4_000_000.0
    egress_headroom: float = 1.2
    cpu_per_publish_s: float = 20e-6
    cpu_per_delivery_s: float = 25e-6
    per_message_overhead_bytes: int = 48
    output_buffer_limit_bytes: int = 1_048_576
    per_connection_bps: Optional[float] = 1_000_000.0
    fanout_cache_enabled: bool = True

    def __post_init__(self) -> None:
        if self.nominal_egress_bps <= 0:
            raise ValueError("nominal_egress_bps must be positive")
        if self.egress_headroom < 1.0:
            raise ValueError("egress_headroom must be >= 1.0")
        if self.cpu_per_publish_s < 0 or self.cpu_per_delivery_s < 0:
            raise ValueError("CPU costs must be non-negative")
        if self.per_message_overhead_bytes < 0:
            raise ValueError("per_message_overhead_bytes must be non-negative")
        if self.output_buffer_limit_bytes <= 0:
            raise ValueError("output_buffer_limit_bytes must be positive")
        if self.per_connection_bps is not None and self.per_connection_bps <= 0:
            raise ValueError("per_connection_bps must be positive or None")

    @property
    def actual_egress_bps(self) -> float:
        """The NIC's true drain rate in bytes/second."""
        return self.nominal_egress_bps * self.egress_headroom
