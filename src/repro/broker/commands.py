"""Wire commands and events of the pub/sub protocol.

These are the only message types a :class:`~repro.broker.server.PubSubServer`
understands or emits.  Dynamoth's own control traffic (plan pushes, switch
notices, ...) rides *inside* :class:`PublishCmd` / :class:`Delivery`
payloads or as direct actor messages -- the broker never inspects payloads,
faithful to the paper's "no changes to Redis itself" constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class SubscribeCmd:
    """Client asks the server to add it to a channel's subscriber set.

    ``plan_version`` is the version of the channel mapping the client
    routed with (0 = consistent-hashing fallback).  The broker ignores it,
    but the co-located dispatcher reads it to detect subscribers acting on
    stale plans -- e.g. every CH-fallback subscriber of a replicated
    channel would otherwise pile onto the same ring-determined server.
    """

    channel: str
    plan_version: int = 0

    #: Approximate wire size of a subscribe command in bytes.
    WIRE_SIZE = 64


@dataclass(frozen=True, slots=True)
class UnsubscribeCmd:
    """Client asks the server to drop its subscription to a channel."""

    channel: str

    WIRE_SIZE = 64


@dataclass(frozen=True, slots=True)
class PublishCmd:
    """Client publishes ``payload`` on ``channel``.

    ``payload_size`` is the application payload size in bytes; the server
    adds per-message protocol overhead when forwarding to subscribers.
    """

    channel: str
    payload: Any
    payload_size: int


@dataclass(frozen=True, slots=True)
class SubscribeAck:
    """Server confirms a subscription is established (Redis sends a
    ``subscribe`` confirmation message for exactly this purpose).

    The Dynamoth client library uses acks to order reconfiguration steps:
    it only tells a channel's *old* servers that it has reconciled after
    the *new* servers acknowledged its subscriptions, closing the race
    where forwarding stops while the new subscriptions are still in
    flight.
    """

    channel: str
    server_id: str

    WIRE_SIZE = 64


@dataclass(frozen=True, slots=True)
class PingCmd:
    """Client-side liveness probe (Redis ``PING``).

    The Dynamoth client library sends these to every server it holds
    subscriptions on; a run of unanswered pings marks the server dead and
    triggers subscription failover.  A stock broker answers PING, so this
    needs no broker modification.
    """

    WIRE_SIZE = 16


@dataclass(frozen=True, slots=True)
class PongReply:
    """Server's answer to :class:`PingCmd` (Redis ``+PONG``)."""

    server_id: str

    WIRE_SIZE = 16


@dataclass(frozen=True, slots=True)
class Delivery:
    """Server forwards a publication to one subscriber."""

    channel: str
    payload: Any
    payload_size: int
    #: node id of the server that performed the delivery (lets the Dynamoth
    #: client library detect deliveries from servers it is migrating away
    #: from).
    server_id: str


@dataclass(frozen=True, slots=True)
class ConnectionClosed:
    """Server notifies a client that it was forcibly disconnected.

    ``reason`` is ``"output-buffer-overflow"`` when the Redis-style
    client-output-buffer hard limit was exceeded.
    """

    server_id: str
    reason: str

    WIRE_SIZE = 64
