"""Wire commands and events of the pub/sub protocol.

These are the only message types a :class:`~repro.broker.server.PubSubServer`
understands or emits.  Dynamoth's own control traffic (plan pushes, switch
notices, ...) rides *inside* :class:`PublishCmd` / :class:`Delivery`
payloads or as direct actor messages -- the broker never inspects payloads,
faithful to the paper's "no changes to Redis itself" constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True, slots=True)
class SubscribeCmd:
    """Client asks the server to add it to a channel's subscriber set.

    ``plan_version`` is the version of the channel mapping the client
    routed with (0 = consistent-hashing fallback).  The broker ignores it,
    but the co-located dispatcher reads it to detect subscribers acting on
    stale plans -- e.g. every CH-fallback subscriber of a replicated
    channel would otherwise pile onto the same ring-determined server.

    ``resume_after``/``resume_epoch`` carry the client's replay resume
    point when the reliability layer is active (MigratoryData-style
    reconnect): the broker replays cached publications with a higher
    sequence number if the epoch matches its current boot.  The defaults
    (-1) mean "no resume requested" and keep the command byte-identical
    for unreliable runs.
    """

    channel: str
    plan_version: int = 0
    resume_after: int = -1
    resume_epoch: int = -1

    #: Approximate wire size of a subscribe command in bytes.
    WIRE_SIZE = 64


@dataclass(frozen=True, slots=True)
class UnsubscribeCmd:
    """Client asks the server to drop its subscription to a channel."""

    channel: str

    WIRE_SIZE = 64


@dataclass(frozen=True, slots=True)
class PublishCmd:
    """Client publishes ``payload`` on ``channel``.

    ``payload_size`` is the application payload size in bytes; the server
    adds per-message protocol overhead when forwarding to subscribers.

    ``control`` marks middleware control traffic riding the pub/sub
    primitives (dispatcher switch notices): the reliability layer must not
    sequence or cache it -- control publications are invisible to the
    application ledger, so stamping them would fabricate gaps.
    """

    channel: str
    payload: Any
    payload_size: int
    control: bool = False


@dataclass(frozen=True, slots=True)
class SubscribeAck:
    """Server confirms a subscription is established (Redis sends a
    ``subscribe`` confirmation message for exactly this purpose).

    The Dynamoth client library uses acks to order reconfiguration steps:
    it only tells a channel's *old* servers that it has reconciled after
    the *new* servers acknowledged its subscriptions, closing the race
    where forwarding stops while the new subscriptions are still in
    flight.
    """

    channel: str
    server_id: str

    WIRE_SIZE = 64


@dataclass(frozen=True, slots=True)
class PingCmd:
    """Client-side liveness probe (Redis ``PING``).

    The Dynamoth client library sends these to every server it holds
    subscriptions on; a run of unanswered pings marks the server dead and
    triggers subscription failover.  A stock broker answers PING, so this
    needs no broker modification.
    """

    WIRE_SIZE = 16


@dataclass(frozen=True, slots=True)
class PongReply:
    """Server's answer to :class:`PingCmd` (Redis ``+PONG``)."""

    server_id: str

    WIRE_SIZE = 16


@dataclass(frozen=True, slots=True)
class Delivery:
    """Server forwards a publication to one subscriber.

    ``seq``/``epoch`` are stamped by the owning broker when the
    reliability layer is active (``seq`` stays ``None`` otherwise -- and
    always for control publications); ``replayed`` marks gap-repair and
    resume redeliveries so clients and oracles can tell them from the
    original fan-out.
    """

    channel: str
    payload: Any
    payload_size: int
    #: node id of the server that performed the delivery (lets the Dynamoth
    #: client library detect deliveries from servers it is migrating away
    #: from).
    server_id: str
    seq: Optional[int] = None
    epoch: int = 0
    replayed: bool = False


@dataclass(frozen=True, slots=True)
class ReplayRequest:
    """Client asks the broker to resend a cached sequence range.

    Sent when gap tracking detects missing sequence numbers on a live
    connection (``after_seq`` = one below the lowest missing seq,
    ``up_to_seq`` = the highest).  The broker answers with replayed
    :class:`Delivery` messages and, for evicted prefixes, a
    :class:`ReplayGapNotice`.
    """

    channel: str
    epoch: int
    after_seq: int
    up_to_seq: int

    WIRE_SIZE = 64


@dataclass(frozen=True, slots=True)
class ReplayGapNotice:
    """Broker's truthful "that range is gone": cache eviction passed
    ``through_seq``, so sequence numbers at or below it cannot be
    replayed.  The client stops chasing them and the check harness
    records the window as an unrecoverable (excused) gap."""

    server_id: str
    channel: str
    epoch: int
    through_seq: int

    WIRE_SIZE = 64


@dataclass(frozen=True, slots=True)
class ConnectionClosed:
    """Server notifies a client that it was forcibly disconnected.

    ``reason`` is ``"output-buffer-overflow"`` when the Redis-style
    client-output-buffer hard limit was exceeded.
    """

    server_id: str
    reason: str

    WIRE_SIZE = 64
