"""The pub/sub server actor.

Models a stock Redis instance doing channel pub/sub:

* ``SUBSCRIBE`` / ``UNSUBSCRIBE`` maintain per-channel subscriber sets;
* ``PUBLISH`` costs CPU (a base cost plus a per-subscriber delivery cost on
  a single core), then the deliveries are queued on the node's egress NIC
  and on each subscriber's connection;
* a subscriber connection whose output buffer exceeds the hard limit is
  killed, Redis-style;
* co-located processes (LLA, dispatcher) attach as *local* subscribers and
  observers -- loopback traffic that costs neither NIC bandwidth nor WAN
  latency, matching the paper's observation that local monitoring "does not
  use any local bandwidth".

The server is Dynamoth-agnostic: it never inspects payloads and has no idea
plans or replication exist.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from repro.broker.commands import (
    ConnectionClosed,
    Delivery,
    PingCmd,
    PongReply,
    PublishCmd,
    ReplayGapNotice,
    ReplayRequest,
    SubscribeAck,
    SubscribeCmd,
    UnsubscribeCmd,
)
from repro.broker.config import BrokerConfig
from repro.broker.connection import Connection
from repro.core.reliability import BrokerReliability
from repro.obs.trace import (
    NULL_TRACER,
    FanoutEvent,
    ReplayEvent,
    ReplayGapEvent,
    Tracer,
    channel_class,
)
from repro.sim.actor import Actor
from repro.sim.kernel import Simulator

#: signature: (channel, publisher_id, payload, payload_size) -> None
LocalSubscriber = Callable[[str, str, Any, int], None]
#: signature: (channel, client_id, plan_version) -> None
SubscribeListener = Callable[[str, str, int], None]
#: signature: (channel, client_id) -> None
UnsubscribeListener = Callable[[str, str], None]


class PubSubServer(Actor):
    """A single Redis-like pub/sub server node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: Optional[BrokerConfig] = None,
        *,
        tracer: Tracer = NULL_TRACER,
        reliability: Optional[BrokerReliability] = None,
    ):
        super().__init__(sim, node_id, is_infra=True)
        self.config = config if config is not None else BrokerConfig()
        self.tracer = tracer
        #: opt-in reliable-delivery state (sequencing + replay cache);
        #: ``None`` keeps the broker byte-identical to the base semantics.
        self.reliability = reliability
        self._connections: Dict[str, Connection] = {}
        #: channel -> client node ids subscribed remotely.  An
        #: insertion-ordered dict (used as an ordered set) so fan-out
        #: order is deterministic regardless of the process hash seed.
        self._channels: Dict[str, Dict[str, None]] = {}
        #: channel -> local (loopback) subscriber callbacks
        self._local_subs: Dict[str, List[LocalSubscriber]] = {}
        #: callbacks observing *every* publication (wildcard loopback
        #: subscription, as the LLA registers itself in the paper)
        self._observers: List[LocalSubscriber] = []
        self._subscribe_listeners: List[SubscribeListener] = []
        self._unsubscribe_listeners: List[UnsubscribeListener] = []
        self._cpu_busy_until: float = 0.0
        #: fan-out (remote deliveries) of the most recent publication
        self.last_fanout: int = 0
        #: cumulative CPU seconds consumed by publish processing
        self.cpu_time_total: float = 0.0
        # --- counters (diagnostics / metrics) ---
        self.publish_count: int = 0
        self.delivery_count: int = 0
        self.killed_connections: int = 0
        self.dropped_deliveries: int = 0

    # ------------------------------------------------------------------
    # Introspection used by the LLA and tests
    # ------------------------------------------------------------------
    def channels(self) -> List[str]:
        """Channels with at least one remote subscriber."""
        return [c for c, subs in self._channels.items() if subs]

    def subscriber_count(self, channel: str) -> int:
        return len(self._channels.get(channel, ()))

    def subscribers(self, channel: str) -> Set[str]:
        return set(self._channels.get(channel, ()))

    def is_subscribed(self, channel: str, client_id: str) -> bool:
        return client_id in self._channels.get(channel, ())

    def connection(self, client_id: str) -> Optional[Connection]:
        return self._connections.get(client_id)

    def cpu_backlog(self, now: float) -> float:
        """Seconds of CPU work queued ahead of a new publish."""
        return max(0.0, self._cpu_busy_until - now)

    # ------------------------------------------------------------------
    # Local (loopback) attachment points
    # ------------------------------------------------------------------
    def add_observer(self, callback: LocalSubscriber) -> None:
        """Attach a wildcard loopback subscriber seeing every publication."""
        self._observers.append(callback)

    def subscribe_local(self, channel: str, callback: LocalSubscriber) -> None:
        """Attach a loopback subscriber to one channel (dispatcher use)."""
        self._local_subs.setdefault(channel, []).append(callback)

    def unsubscribe_local(self, channel: str, callback: LocalSubscriber) -> None:
        callbacks = self._local_subs.get(channel)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)
            if not callbacks:
                del self._local_subs[channel]

    def add_subscribe_listener(self, callback: SubscribeListener) -> None:
        """Observe remote SUBSCRIBE commands (LLA / dispatcher intercept)."""
        self._subscribe_listeners.append(callback)

    def add_unsubscribe_listener(self, callback: UnsubscribeListener) -> None:
        self._unsubscribe_listeners.append(callback)

    # ------------------------------------------------------------------
    # Command handling
    # ------------------------------------------------------------------
    def receive(self, message: Any, src_id: str) -> None:
        if isinstance(message, PublishCmd):
            self._handle_publish(message, src_id)
        elif isinstance(message, SubscribeCmd):
            self._handle_subscribe(
                message.channel,
                src_id,
                message.plan_version,
                message.resume_after,
                message.resume_epoch,
            )
        elif isinstance(message, UnsubscribeCmd):
            self._handle_unsubscribe(message.channel, src_id)
        elif isinstance(message, ReplayRequest):
            self._handle_replay_request(message, src_id)
        elif isinstance(message, PingCmd):
            self.transport.send(
                self.node_id, src_id, PongReply(self.node_id), PongReply.WIRE_SIZE
            )
        else:
            raise TypeError(f"{self.node_id}: unexpected message {type(message).__name__}")

    def _conn_for(self, client_id: str) -> Connection:
        conn = self._connections.get(client_id)
        if conn is None or not conn.alive:
            conn = Connection(client_id, self.config.per_connection_bps)
            self._connections[client_id] = conn
        return conn

    def _handle_subscribe(
        self,
        channel: str,
        client_id: str,
        plan_version: int = 0,
        resume_after: int = -1,
        resume_epoch: int = -1,
    ) -> None:
        conn = self._conn_for(client_id)
        conn.channels.add(channel)
        self._channels.setdefault(channel, {})[client_id] = None
        # Redis-style subscription confirmation back to the client.
        ack = SubscribeAck(channel, self.node_id)
        self.transport.send(self.node_id, client_id, ack, SubscribeAck.WIRE_SIZE)
        for listener in self._subscribe_listeners:
            listener(channel, client_id, plan_version)
        # Reconnect resume: replay what this boot cached past the client's
        # last-seen sequence number.  A mismatched epoch means the client's
        # position is from another boot of this id -- a fresh stream, so
        # there is nothing meaningful to replay (replay_slice rejects it).
        if resume_after >= 0 and self.reliability is not None:
            self._replay_range(client_id, channel, resume_epoch, resume_after, None)

    def _handle_unsubscribe(self, channel: str, client_id: str) -> None:
        conn = self._connections.get(client_id)
        if conn is not None:
            conn.channels.discard(channel)
        subs = self._channels.get(channel)
        if subs is not None:
            subs.pop(client_id, None)
            if not subs:
                del self._channels[channel]
        for listener in self._unsubscribe_listeners:
            listener(channel, client_id)

    # ------------------------------------------------------------------
    # Reliable delivery: replay requests and resume-on-subscribe
    # ------------------------------------------------------------------
    def _handle_replay_request(self, request: ReplayRequest, client_id: str) -> None:
        if self.reliability is None:
            return
        self._replay_range(
            client_id,
            request.channel,
            request.epoch,
            request.after_seq,
            request.up_to_seq,
        )

    def _replay_range(
        self,
        client_id: str,
        channel: str,
        epoch: int,
        after_seq: int,
        up_to_seq: Optional[int],
    ) -> None:
        """Resend cached ``(after_seq, up_to_seq]`` to one client.

        ``up_to_seq=None`` (the resume case) means "everything newer".
        Evicted prefixes produce a truthful :class:`ReplayGapNotice`
        instead of silently succeeding.  With the test-only kill switch
        off (``replay_enabled=False``) nothing is sent at all -- not even
        the gap notice -- which is exactly the silent loss the gap-free
        oracle exists to catch.
        """
        rel = self.reliability
        if up_to_seq is None:
            up_to_seq = rel.cache_for(channel).next_seq - 1
        replay = rel.replay_slice(channel, epoch, after_seq, up_to_seq)
        if replay is None:
            return
        now = self.sim.now
        tracer = self.tracer
        if replay.gap_through > 0:
            rel.unrecoverable_gaps += 1
            notice = ReplayGapNotice(self.node_id, channel, epoch, replay.gap_through)
            self.transport.send(
                self.node_id, client_id, notice, ReplayGapNotice.WIRE_SIZE
            )
            if tracer.enabled:
                tracer.emit(
                    ReplayGapEvent(
                        now,
                        self.node_id,
                        channel,
                        client_id,
                        epoch,
                        after_seq + 1,
                        replay.gap_through,
                    )
                )
        if not replay.entries:
            return
        total_bytes = 0
        for entry in replay.entries:
            delivery = Delivery(
                channel,
                entry.payload,
                entry.payload_size,
                self.node_id,
                entry.seq,
                epoch,
                True,
            )
            self.transport.send(self.node_id, client_id, delivery, entry.wire_size)
            total_bytes += entry.wire_size
        rel.replayed_messages += len(replay.entries)
        rel.replayed_bytes += total_bytes
        if tracer.enabled:
            tracer.emit(
                ReplayEvent(
                    now,
                    self.node_id,
                    channel,
                    client_id,
                    epoch,
                    replay.entries[0].seq,
                    replay.entries[-1].seq,
                    len(replay.entries),
                    total_bytes,
                )
            )
            tracer.metrics.counter(
                "replayed_messages_total", server=self.node_id
            ).inc(len(replay.entries))
            tracer.metrics.counter(
                "replayed_bytes_total", server=self.node_id
            ).inc(total_bytes)

    def _handle_publish(self, cmd: PublishCmd, publisher_id: str) -> None:
        """Queue a publish on the CPU; deliveries happen at CPU completion."""
        now = self.sim.now
        fanout = self.subscriber_count(cmd.channel)
        cost = self.config.cpu_per_publish_s + fanout * self.config.cpu_per_delivery_s
        self.cpu_time_total += cost
        start = now if now > self._cpu_busy_until else self._cpu_busy_until
        done = start + cost
        self._cpu_busy_until = done
        self.publish_count += 1
        if done <= now:
            self._complete_publish(cmd, publisher_id)
        else:
            self.sim.schedule_at(done, self._complete_publish, cmd, publisher_id)

    def _complete_publish(self, cmd: PublishCmd, publisher_id: str) -> None:
        """Fan a processed publication out to all subscribers."""
        if not self.alive or self.transport is None:
            # The server crashed between accepting the publish and the CPU
            # finishing it; the already-scheduled completion must die with
            # the process instead of touching a transport it left.
            return
        now = self.sim.now
        channel = cmd.channel
        wire_size = cmd.payload_size + self.config.per_message_overhead_bytes
        # Reliable tiers: stamp the publication's sequence number and cache
        # it for replay -- even with zero live subscribers, because a
        # disconnected subscriber will ask for exactly these on resume.
        # Control publications (switch notices) are never sequenced: they
        # are invisible to the application, so stamping them would
        # fabricate gaps no one can observe being filled.
        seq: Optional[int] = None
        epoch = 0
        rel = self.reliability
        if rel is not None and not cmd.control and rel.config.replay_active:
            seq = rel.stamp_and_cache(channel, cmd.payload, cmd.payload_size, wire_size)
            epoch = rel.epoch
        # One immutable payload envelope shared by every subscriber's
        # delivery -- the whole fan-out references the same object.
        delivery = Delivery(channel, cmd.payload, cmd.payload_size, self.node_id, seq, epoch)

        delivered = 0
        subs = self._channels.get(channel)
        if subs:
            connections = self._connections
            dst_ids: List[str] = []
            conns: List[Connection] = []
            dropped = 0
            # Iterate the live subscriber dict directly -- kills are
            # deferred past the loop, so nothing mutates it mid-walk and
            # no O(n) snapshot copy is needed.
            for client_id in subs:
                conn = connections.get(client_id)
                if conn is None or not conn.alive:
                    dropped += 1
                    continue
                dst_ids.append(client_id)
                conns.append(conn)
            if dropped:
                self.dropped_deliveries += dropped
            if dst_ids:
                if self.config.per_connection_bps is not None:
                    min_completions = [
                        conn.connection_drain_completion(now, wire_size)
                        for conn in conns
                    ]
                else:
                    min_completions = None
                completions = self.transport.send_many(
                    self.node_id,
                    dst_ids,
                    delivery,
                    wire_size,
                    min_completions=min_completions,
                )
                delivered = len(dst_ids)
                limit = self.config.output_buffer_limit_bytes
                kills: List[tuple] = []
                for index, conn in enumerate(conns):
                    occupancy = conn.enqueue(now, completions[index], wire_size)
                    if occupancy > limit:
                        kills.append((dst_ids[index], conn))
                for client_id, conn in kills:
                    self._kill_connection(client_id, conn)
        self.delivery_count += delivered
        # Observers need the fan-out of *this* publication to attribute
        # egress bytes; expose it before invoking them.
        self.last_fanout = delivered

        tracer = self.tracer
        if tracer.enabled:
            # The broker stays payload-agnostic: the message id is read
            # duck-typed off whatever envelope the payload happens to be.
            tracer.emit(
                FanoutEvent(
                    now,
                    self.node_id,
                    channel,
                    getattr(cmd.payload, "msg_id", None),
                    delivered,
                    wire_size,
                )
            )
            metrics = tracer.metrics
            metrics.counter("publishes_total", server=self.node_id).inc()
            metrics.counter("deliveries_total", server=self.node_id).inc(delivered)
            metrics.counter("egress_bytes_total", server=self.node_id).inc(
                delivered * wire_size
            )
            metrics.histogram("fanout_size", channel_class=channel_class(channel)).observe(
                float(delivered)
            )
            profiler = tracer.profiler
            if profiler is not None:
                profiler.count("broker", "fanout.deliveries", delivered)
                profiler.count("broker", "fanout.publications", 1)

        # Loopback deliveries: dispatcher subscriptions and LLA observation.
        for callback in list(self._local_subs.get(channel, ())):
            callback(channel, publisher_id, cmd.payload, cmd.payload_size)
        for callback in self._observers:
            callback(channel, publisher_id, cmd.payload, cmd.payload_size)

    def _kill_connection(self, client_id: str, conn: Connection) -> None:
        """Enforce the output-buffer hard limit: disconnect the client."""
        for channel in sorted(conn.channels):
            subs = self._channels.get(channel)
            if subs is not None:
                subs.pop(client_id, None)
                if not subs:
                    del self._channels[channel]
            for listener in self._unsubscribe_listeners:
                listener(channel, client_id)
        conn.kill()
        self.killed_connections += 1
        if self.tracer.enabled:
            self.tracer.metrics.counter(
                "killed_connections_total", server=self.node_id
            ).inc()
        del self._connections[client_id]
        closed = ConnectionClosed(self.node_id, "output-buffer-overflow")
        # A reset is out-of-band: it is not queued behind the buffered
        # deliveries the client will never receive.
        self.transport.send(
            self.node_id, client_id, closed, ConnectionClosed.WIRE_SIZE, fifo=False
        )

    def close_all_connections(self) -> None:
        """Notify every connected client and drop all state (shutdown).

        Models the TCP FINs a decommissioned Redis instance sends; clients
        react by re-resolving their channels elsewhere.
        """
        closed = ConnectionClosed(self.node_id, "server-shutdown")
        for client_id, conn in list(self._connections.items()):
            conn.kill()
            self.transport.send(
                self.node_id, client_id, closed, ConnectionClosed.WIRE_SIZE, fifo=False
            )
        self._connections.clear()
        self._channels.clear()

    def disconnect(self, client_id: str) -> None:
        """Cleanly remove a client (e.g. a player leaving the game)."""
        conn = self._connections.pop(client_id, None)
        if conn is None:
            return
        for channel in sorted(conn.channels):
            subs = self._channels.get(channel)
            if subs is not None:
                subs.pop(client_id, None)
                if not subs:
                    del self._channels[channel]
            for listener in self._unsubscribe_listeners:
                listener(channel, client_id)
        conn.kill()
