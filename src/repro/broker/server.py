"""The pub/sub server actor.

Models a stock Redis instance doing channel pub/sub:

* ``SUBSCRIBE`` / ``UNSUBSCRIBE`` maintain per-channel subscriber sets;
* ``PUBLISH`` costs CPU (a base cost plus a per-subscriber delivery cost on
  a single core), then the deliveries are queued on the node's egress NIC
  and on each subscriber's connection;
* a subscriber connection whose output buffer exceeds the hard limit is
  killed, Redis-style;
* co-located processes (LLA, dispatcher) attach as *local* subscribers and
  observers -- loopback traffic that costs neither NIC bandwidth nor WAN
  latency, matching the paper's observation that local monitoring "does not
  use any local bandwidth".

The server is Dynamoth-agnostic: it never inspects payloads and has no idea
plans or replication exist.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set

from repro.broker.commands import (
    ConnectionClosed,
    Delivery,
    PingCmd,
    PongReply,
    PublishCmd,
    ReplayGapNotice,
    ReplayRequest,
    SubscribeAck,
    SubscribeCmd,
    UnsubscribeCmd,
)
from repro.broker.config import BrokerConfig
from repro.broker.connection import Connection
from repro.obs.trace import (
    NULL_TRACER,
    FanoutEvent,
    ReplayEvent,
    ReplayGapEvent,
    Tracer,
    channel_class,
)
from repro.sim.actor import Actor
from repro.sim.kernel import Simulator

if TYPE_CHECKING:
    # Annotation-only: the broker is the *data* plane and must not import
    # the control plane at runtime (ARCH001); the reliability sidecar is
    # injected by repro.core wiring and used duck-typed here.
    from repro.core.reliability import BrokerReliability

#: signature: (channel, publisher_id, payload, payload_size) -> None
LocalSubscriber = Callable[[str, str, Any, int], None]
#: signature: (channel, client_id, plan_version) -> None
SubscribeListener = Callable[[str, str, int], None]
#: signature: (channel, client_id) -> None
UnsubscribeListener = Callable[[str, str], None]


class PubSubServer(Actor):
    """A single Redis-like pub/sub server node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: Optional[BrokerConfig] = None,
        *,
        tracer: Tracer = NULL_TRACER,
        reliability: Optional[BrokerReliability] = None,
    ):
        super().__init__(sim, node_id, is_infra=True)
        self.config = config if config is not None else BrokerConfig()
        self.tracer = tracer
        #: opt-in reliable-delivery state (sequencing + replay cache);
        #: ``None`` keeps the broker byte-identical to the base semantics.
        self.reliability = reliability
        self._connections: Dict[str, Connection] = {}
        #: channel -> client node ids subscribed remotely.  An
        #: insertion-ordered dict (used as an ordered set) so fan-out
        #: order is deterministic regardless of the process hash seed.
        self._channels: Dict[str, Dict[str, None]] = {}
        #: channel -> local (loopback) subscriber callbacks
        self._local_subs: Dict[str, List[LocalSubscriber]] = {}
        #: callbacks observing *every* publication (wildcard loopback
        #: subscription, as the LLA registers itself in the paper)
        self._observers: List[LocalSubscriber] = []
        self._subscribe_listeners: List[SubscribeListener] = []
        self._unsubscribe_listeners: List[UnsubscribeListener] = []
        self._cpu_busy_until: float = 0.0
        #: fan-out (remote deliveries) of the most recent publication
        self.last_fanout: int = 0
        #: cumulative CPU seconds consumed by publish processing
        self.cpu_time_total: float = 0.0
        # --- counters (diagnostics / metrics) ---
        self.publish_count: int = 0
        self.delivery_count: int = 0
        self.killed_connections: int = 0
        self.dropped_deliveries: int = 0
        #: channel -> precompiled fan-out arrays ``(dst_ids, conns,
        #: pair_states, dead_count, pair_epoch)``: the subscriber walk and
        #: transport pair resolution done once, reused across publications
        #: until a subscribe/unsubscribe/kill/disconnect touches the
        #: channel (or the transport prunes pair state: ``pair_epoch``).
        self._fanout_cache: Dict[str, tuple] = {}
        # --- fan-out cache diagnostics (obs summary renders these) ---
        self.fanout_cache_hits: int = 0
        self.fanout_cache_builds: int = 0
        self.fanout_cache_invalidations: int = 0
        #: channel -> ``[publications, publishers, messages_out,
        #: bytes_out]`` accumulated inline at publish completion and
        #: drained by the co-located LLA at its window flush -- the
        #: per-publication observer callback the LLA used to pay is gone.
        self._channel_stats: Dict[str, List[Any]] = {}
        #: sequence stamping resolved once per boot: the at_most_once
        #: fast path is a single attribute test per publication.
        self._stamping = reliability is not None and reliability.config.replay_active
        if tracer.enabled:
            metrics = tracer.metrics
            self._cache_gauges: Optional[tuple] = (
                metrics.gauge("fanout_cache_channels", server=node_id),
                metrics.gauge("fanout_cache_hits", server=node_id),
                metrics.gauge("fanout_cache_builds", server=node_id),
                metrics.gauge("fanout_cache_invalidations", server=node_id),
            )
        else:
            self._cache_gauges = None

    # ------------------------------------------------------------------
    # Introspection used by the LLA and tests
    # ------------------------------------------------------------------
    def channels(self) -> List[str]:
        """Channels with at least one remote subscriber."""
        return [c for c, subs in self._channels.items() if subs]

    def subscriber_count(self, channel: str) -> int:
        return len(self._channels.get(channel, ()))

    def subscribers(self, channel: str) -> Set[str]:
        return set(self._channels.get(channel, ()))

    def is_subscribed(self, channel: str, client_id: str) -> bool:
        return client_id in self._channels.get(channel, ())

    def connection(self, client_id: str) -> Optional[Connection]:
        return self._connections.get(client_id)

    def fanout_cache_stats(self) -> Dict[str, int]:
        """Size and hit/build/invalidation counters of the subscriber-array
        cache (``pair_state_count()``-style leak/behaviour diagnostics)."""
        return {
            "channels": len(self._fanout_cache),
            "hits": self.fanout_cache_hits,
            "builds": self.fanout_cache_builds,
            "invalidations": self.fanout_cache_invalidations,
        }

    def drain_channel_stats(self) -> Dict[str, List[Any]]:
        """Hand over and reset the per-channel load accumulators.

        Called by the co-located LLA once per report window; each entry is
        ``[publications, publisher_id_set, messages_out, bytes_out]``.
        """
        stats = self._channel_stats
        self._channel_stats = {}
        return stats

    def cpu_backlog(self, now: float) -> float:
        """Seconds of CPU work queued ahead of a new publish."""
        return max(0.0, self._cpu_busy_until - now)

    # ------------------------------------------------------------------
    # Local (loopback) attachment points
    # ------------------------------------------------------------------
    def add_observer(self, callback: LocalSubscriber) -> None:
        """Attach a wildcard loopback subscriber seeing every publication."""
        self._observers.append(callback)

    def subscribe_local(self, channel: str, callback: LocalSubscriber) -> None:
        """Attach a loopback subscriber to one channel (dispatcher use)."""
        self._local_subs.setdefault(channel, []).append(callback)

    def unsubscribe_local(self, channel: str, callback: LocalSubscriber) -> None:
        callbacks = self._local_subs.get(channel)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)
            if not callbacks:
                del self._local_subs[channel]

    def add_subscribe_listener(self, callback: SubscribeListener) -> None:
        """Observe remote SUBSCRIBE commands (LLA / dispatcher intercept)."""
        self._subscribe_listeners.append(callback)

    def add_unsubscribe_listener(self, callback: UnsubscribeListener) -> None:
        self._unsubscribe_listeners.append(callback)

    # ------------------------------------------------------------------
    # Command handling
    # ------------------------------------------------------------------
    def receive(self, message: Any, src_id: str) -> None:
        if isinstance(message, PublishCmd):
            self._handle_publish(message, src_id)
        elif isinstance(message, SubscribeCmd):
            self._handle_subscribe(
                message.channel,
                src_id,
                message.plan_version,
                message.resume_after,
                message.resume_epoch,
            )
        elif isinstance(message, UnsubscribeCmd):
            self._handle_unsubscribe(message.channel, src_id)
        elif isinstance(message, ReplayRequest):
            self._handle_replay_request(message, src_id)
        elif isinstance(message, PingCmd):
            self.transport.send(
                self.node_id, src_id, PongReply(self.node_id), PongReply.WIRE_SIZE
            )
        else:
            raise TypeError(f"{self.node_id}: unexpected message {type(message).__name__}")

    def _conn_for(self, client_id: str) -> Connection:
        conn = self._connections.get(client_id)
        if conn is None or not conn.alive:
            conn = Connection(client_id, self.config.per_connection_bps)
            self._connections[client_id] = conn
        return conn

    def _handle_subscribe(
        self,
        channel: str,
        client_id: str,
        plan_version: int = 0,
        resume_after: int = -1,
        resume_epoch: int = -1,
    ) -> None:
        conn = self._conn_for(client_id)
        conn.channels.add(channel)
        self._channels.setdefault(channel, {})[client_id] = None
        self._invalidate_fanout(channel)
        # Redis-style subscription confirmation back to the client.
        ack = SubscribeAck(channel, self.node_id)
        self.transport.send(self.node_id, client_id, ack, SubscribeAck.WIRE_SIZE)
        for listener in self._subscribe_listeners:
            listener(channel, client_id, plan_version)
        # Reconnect resume: replay what this boot cached past the client's
        # last-seen sequence number.  A mismatched epoch means the client's
        # position is from another boot of this id -- a fresh stream, so
        # there is nothing meaningful to replay (replay_slice rejects it).
        if resume_after >= 0 and self.reliability is not None:
            self._replay_range(client_id, channel, resume_epoch, resume_after, None)

    def _handle_unsubscribe(self, channel: str, client_id: str) -> None:
        conn = self._connections.get(client_id)
        if conn is not None:
            conn.channels.discard(channel)
        subs = self._channels.get(channel)
        if subs is not None:
            subs.pop(client_id, None)
            if not subs:
                del self._channels[channel]
        self._invalidate_fanout(channel)
        for listener in self._unsubscribe_listeners:
            listener(channel, client_id)

    def _invalidate_fanout(self, channel: str) -> None:
        """Drop a channel's precompiled fan-out arrays (topology changed)."""
        if self._fanout_cache.pop(channel, None) is not None:
            self.fanout_cache_invalidations += 1

    # ------------------------------------------------------------------
    # Reliable delivery: replay requests and resume-on-subscribe
    # ------------------------------------------------------------------
    def _handle_replay_request(self, request: ReplayRequest, client_id: str) -> None:
        if self.reliability is None:
            return
        self._replay_range(
            client_id,
            request.channel,
            request.epoch,
            request.after_seq,
            request.up_to_seq,
        )

    def _replay_range(
        self,
        client_id: str,
        channel: str,
        epoch: int,
        after_seq: int,
        up_to_seq: Optional[int],
    ) -> None:
        """Resend cached ``(after_seq, up_to_seq]`` to one client.

        ``up_to_seq=None`` (the resume case) means "everything newer".
        Evicted prefixes produce a truthful :class:`ReplayGapNotice`
        instead of silently succeeding.  With the test-only kill switch
        off (``replay_enabled=False``) nothing is sent at all -- not even
        the gap notice -- which is exactly the silent loss the gap-free
        oracle exists to catch.
        """
        rel = self.reliability
        if up_to_seq is None:
            up_to_seq = rel.cache_for(channel).next_seq - 1
        replay = rel.replay_slice(channel, epoch, after_seq, up_to_seq)
        if replay is None:
            return
        now = self.sim.now
        tracer = self.tracer
        if replay.gap_through > 0:
            rel.unrecoverable_gaps += 1
            notice = ReplayGapNotice(self.node_id, channel, epoch, replay.gap_through)
            self.transport.send(
                self.node_id, client_id, notice, ReplayGapNotice.WIRE_SIZE
            )
            if tracer.enabled:
                tracer.emit(
                    ReplayGapEvent(
                        now,
                        self.node_id,
                        channel,
                        client_id,
                        epoch,
                        after_seq + 1,
                        replay.gap_through,
                    )
                )
        if not replay.entries:
            return
        total_bytes = 0
        for entry in replay.entries:
            delivery = Delivery(
                channel,
                entry.payload,
                entry.payload_size,
                self.node_id,
                entry.seq,
                epoch,
                True,
            )
            self.transport.send(self.node_id, client_id, delivery, entry.wire_size)
            total_bytes += entry.wire_size
        rel.replayed_messages += len(replay.entries)
        rel.replayed_bytes += total_bytes
        if tracer.enabled:
            tracer.emit(
                ReplayEvent(
                    now,
                    self.node_id,
                    channel,
                    client_id,
                    epoch,
                    replay.entries[0].seq,
                    replay.entries[-1].seq,
                    len(replay.entries),
                    total_bytes,
                )
            )
            tracer.metrics.counter(
                "replayed_messages_total", server=self.node_id
            ).inc(len(replay.entries))
            tracer.metrics.counter(
                "replayed_bytes_total", server=self.node_id
            ).inc(total_bytes)
            profiler = tracer.profiler
            if profiler is not None:
                profiler.count("reliability", "replay.messages", len(replay.entries))

    def _handle_publish(self, cmd: PublishCmd, publisher_id: str) -> None:
        """Queue a publish on the CPU; deliveries happen at CPU completion."""
        now = self.sim.now
        fanout = self.subscriber_count(cmd.channel)
        cost = self.config.cpu_per_publish_s + fanout * self.config.cpu_per_delivery_s
        self.cpu_time_total += cost
        start = now if now > self._cpu_busy_until else self._cpu_busy_until
        done = start + cost
        self._cpu_busy_until = done
        self.publish_count += 1
        if done <= now:
            self._complete_publish(cmd, publisher_id)
        else:
            self.sim.schedule_at(done, self._complete_publish, cmd, publisher_id)

    # repro: scope[hot]
    def _complete_publish(self, cmd: PublishCmd, publisher_id: str) -> None:
        """Fan a processed publication out to all subscribers."""
        if not self.alive or self.transport is None:
            # The server crashed between accepting the publish and the CPU
            # finishing it; the already-scheduled completion must die with
            # the process instead of touching a transport it left.
            return
        now = self.sim.now
        channel = cmd.channel
        wire_size = cmd.payload_size + self.config.per_message_overhead_bytes
        # Reliable tiers: stamp the publication's sequence number and cache
        # it for replay -- even with zero live subscribers, because a
        # disconnected subscriber will ask for exactly these on resume.
        # Control publications (switch notices) are never sequenced: they
        # are invisible to the application, so stamping them would
        # fabricate gaps no one can observe being filled.
        seq: Optional[int] = None
        epoch = 0
        if self._stamping and not cmd.control:
            rel = self.reliability
            seq = rel.stamp_and_cache(channel, cmd.payload, cmd.payload_size, wire_size)
            epoch = rel.epoch
        # One immutable payload envelope shared by every subscriber's
        # delivery -- the whole fan-out references the same object.
        delivery = Delivery(channel, cmd.payload, cmd.payload_size, self.node_id, seq, epoch)

        delivered = 0
        subs = self._channels.get(channel)
        if subs:
            # Precompiled subscriber arrays: the per-subscriber connection
            # walk and transport pair resolution run only when topology
            # changed since the last publication on this channel, not per
            # publication.  ``pair_epoch`` guards against the transport
            # pruning pair state underneath us (node unregistration).
            entry = self._fanout_cache.get(channel)
            if entry is not None and entry[4] == self.transport.pair_epoch:
                self.fanout_cache_hits += 1
            else:
                if entry is not None:
                    self.fanout_cache_invalidations += 1
                entry = self._build_fanout_entry(subs)
                if self.config.fanout_cache_enabled:
                    self._fanout_cache[channel] = entry
            dst_ids, conns, states, dead, _ = entry
            if dead:
                self.dropped_deliveries += dead
            if dst_ids:
                if self.config.per_connection_bps is not None:
                    # Off the default path (per-connection drain modeling is
                    # opt-in), and the transport API takes a sequence -- the
                    # list must exist either way.
                    min_completions = [  # repro: allow[HOT001]
                        conn.connection_drain_completion(now, wire_size)
                        for conn in conns
                    ]
                else:
                    min_completions = None
                completions = self.transport.send_fanout(
                    self.node_id,
                    dst_ids,
                    states,
                    delivery,
                    wire_size,
                    min_completions=min_completions,
                )
                delivered = len(dst_ids)
                limit = self.config.output_buffer_limit_bytes
                kills: List[tuple] = []
                # -- inline Connection.enqueue (one call per delivery;
                # the method remains for the control-plane paths) --
                for dst_id, conn, completion in zip(dst_ids, conns, completions):
                    pending = conn._pending
                    pending_bytes = conn._pending_bytes
                    while pending and pending[0][0] <= now:
                        pending_bytes -= pending.popleft()[1]
                    pending.append((completion, wire_size))
                    pending_bytes += wire_size
                    conn._pending_bytes = pending_bytes
                    conn.deliveries += 1
                    conn.bytes_delivered += wire_size
                    if pending_bytes > limit:
                        kills.append((dst_id, conn))
                for client_id, conn in kills:
                    self._kill_connection(client_id, conn)
        self.delivery_count += delivered
        # Observers need the fan-out of *this* publication to attribute
        # egress bytes; expose it before invoking them.
        self.last_fanout = delivered
        # Per-channel load accounting, drained by the LLA at window flush.
        stats = self._channel_stats.get(channel)
        if stats is None:
            self._channel_stats[channel] = stats = [0, set(), 0, 0]
        stats[0] += 1
        stats[1].add(publisher_id)
        stats[2] += delivered
        stats[3] += delivered * wire_size

        tracer = self.tracer
        if tracer.enabled:
            # The broker stays payload-agnostic: the message id is read
            # duck-typed off whatever envelope the payload happens to be.
            tracer.emit(
                FanoutEvent(
                    now,
                    self.node_id,
                    channel,
                    getattr(cmd.payload, "msg_id", None),
                    delivered,
                    wire_size,
                )
            )
            metrics = tracer.metrics
            metrics.counter("publishes_total", server=self.node_id).inc()
            metrics.counter("deliveries_total", server=self.node_id).inc(delivered)
            metrics.counter("egress_bytes_total", server=self.node_id).inc(
                delivered * wire_size
            )
            metrics.histogram("fanout_size", channel_class=channel_class(channel)).observe(
                float(delivered)
            )
            gauges = self._cache_gauges
            if gauges is not None:
                gauges[0].set(float(len(self._fanout_cache)))
                gauges[1].set(float(self.fanout_cache_hits))
                gauges[2].set(float(self.fanout_cache_builds))
                gauges[3].set(float(self.fanout_cache_invalidations))
            profiler = tracer.profiler
            if profiler is not None:
                profiler.count("broker", "fanout.deliveries", delivered)
                profiler.count("broker", "fanout.publications", 1)
                if seq is not None:
                    # Attributed only when a reliable tier actually
                    # stamped -- at_most_once runs must show a zero
                    # reliability row in the profile.
                    profiler.count("reliability", "stamp.sequenced", 1)

        # Loopback deliveries: dispatcher subscriptions and LLA observation.
        for callback in list(self._local_subs.get(channel, ())):
            callback(channel, publisher_id, cmd.payload, cmd.payload_size)
        for callback in self._observers:
            callback(channel, publisher_id, cmd.payload, cmd.payload_size)

    def _build_fanout_entry(self, subs: Dict[str, None]) -> tuple:
        """Compile a channel's subscriber dict into flat fan-out arrays.

        Dead or missing connections are excluded and counted in ``dead``
        so every later publication charges :attr:`dropped_deliveries`
        exactly as the uncached per-publication walk did.
        """
        connections = self._connections
        dst_ids: List[str] = []
        conns: List[Connection] = []
        dead = 0
        for client_id in subs:
            conn = connections.get(client_id)
            if conn is None or not conn.alive:
                dead += 1
                continue
            dst_ids.append(client_id)
            conns.append(conn)
        states = self.transport.fanout_states(self.node_id, dst_ids)
        self.fanout_cache_builds += 1
        return (
            tuple(dst_ids),
            tuple(conns),
            states,
            dead,
            self.transport.pair_epoch,
        )

    def _kill_connection(self, client_id: str, conn: Connection) -> None:
        """Enforce the output-buffer hard limit: disconnect the client."""
        for channel in sorted(conn.channels):
            subs = self._channels.get(channel)
            if subs is not None:
                subs.pop(client_id, None)
                if not subs:
                    del self._channels[channel]
            self._invalidate_fanout(channel)
            for listener in self._unsubscribe_listeners:
                listener(channel, client_id)
        conn.kill()
        self.killed_connections += 1
        if self.tracer.enabled:
            self.tracer.metrics.counter(
                "killed_connections_total", server=self.node_id
            ).inc()
        del self._connections[client_id]
        closed = ConnectionClosed(self.node_id, "output-buffer-overflow")
        # A reset is out-of-band: it is not queued behind the buffered
        # deliveries the client will never receive.
        self.transport.send(
            self.node_id, client_id, closed, ConnectionClosed.WIRE_SIZE, fifo=False
        )

    def close_all_connections(self) -> None:
        """Notify every connected client and drop all state (shutdown).

        Models the TCP FINs a decommissioned Redis instance sends; clients
        react by re-resolving their channels elsewhere.
        """
        closed = ConnectionClosed(self.node_id, "server-shutdown")
        for client_id, conn in list(self._connections.items()):
            conn.kill()
            self.transport.send(
                self.node_id, client_id, closed, ConnectionClosed.WIRE_SIZE, fifo=False
            )
        self._connections.clear()
        self._channels.clear()
        self.fanout_cache_invalidations += len(self._fanout_cache)
        self._fanout_cache.clear()

    def disconnect(self, client_id: str) -> None:
        """Cleanly remove a client (e.g. a player leaving the game)."""
        conn = self._connections.pop(client_id, None)
        if conn is None:
            return
        for channel in sorted(conn.channels):
            subs = self._channels.get(channel)
            if subs is not None:
                subs.pop(client_id, None)
                if not subs:
                    del self._channels[channel]
            self._invalidate_fanout(channel)
            for listener in self._unsubscribe_listeners:
                listener(channel, client_id)
        conn.kill()
