"""Redis-like channel pub/sub server substrate.

Dynamoth deliberately builds on *unmodified* stock pub/sub servers (Redis in
the paper); this package is our from-scratch model of such a server:

* plain SUBSCRIBE / UNSUBSCRIBE / PUBLISH semantics over channels
  (:class:`~repro.broker.server.PubSubServer`);
* per-connection output buffers with Redis' hard-limit kill policy --
  a subscriber whose buffer overflows is disconnected
  (:class:`~repro.broker.connection.Connection`), which is exactly the
  failure mode of the paper's Experiment 1b;
* a single-core CPU cost model (per-publish base cost plus per-subscriber
  delivery cost) whose saturation produces the exponential response-time
  blow-up of Experiment 1a;
* zero-cost *local subscribers*, modelling co-located processes (the Local
  Load Analyzer and the Dispatcher) that subscribe over the loopback
  interface and therefore consume neither NIC egress nor WAN latency.

The server knows nothing about Dynamoth: plans, replication and
reconfiguration all live above it, in :mod:`repro.core`.
"""

from repro.broker.commands import (
    ConnectionClosed,
    Delivery,
    PublishCmd,
    SubscribeCmd,
    UnsubscribeCmd,
)
from repro.broker.config import BrokerConfig
from repro.broker.connection import Connection
from repro.broker.server import PubSubServer

__all__ = [
    "BrokerConfig",
    "Connection",
    "ConnectionClosed",
    "Delivery",
    "PublishCmd",
    "PubSubServer",
    "SubscribeCmd",
    "UnsubscribeCmd",
]
