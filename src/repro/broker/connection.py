"""Per-client connection state on a pub/sub server."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Set, Tuple


class Connection:
    """One client's connection to a pub/sub server.

    Tracks the channels the client is subscribed to and models the server's
    *output buffer* for this connection: every queued delivery adds its wire
    size until its transmission completes.  The server kills the connection
    when the buffered backlog exceeds the configured hard limit -- the exact
    semantics of Redis' ``client-output-buffer-limit pubsub`` policy, and
    the failure mode the paper observes in Experiment 1b.

    The buffer is accounted lazily: pending deliveries are kept in a deque
    of ``(completion_time, size)`` and expired entries are popped whenever
    the buffer is consulted, so no extra simulator events are needed.
    """

    __slots__ = (
        "client_id",
        "channels",
        "per_connection_bps",
        "_pending",
        "_pending_bytes",
        "_busy_until",
        "alive",
        "deliveries",
        "bytes_delivered",
    )

    def __init__(self, client_id: str, per_connection_bps: Optional[float] = None):
        self.client_id = client_id
        self.channels: Set[str] = set()
        self.per_connection_bps = per_connection_bps
        self._pending: Deque[Tuple[float, int]] = deque()
        self._pending_bytes: int = 0
        self._busy_until: float = 0.0
        self.alive = True
        self.deliveries: int = 0
        self.bytes_delivered: int = 0

    # ------------------------------------------------------------------
    # Output buffer model
    # ------------------------------------------------------------------
    def _expire(self, now: float) -> None:
        pending = self._pending
        while pending and pending[0][0] <= now:
            __, size = pending.popleft()
            self._pending_bytes -= size

    def buffered_bytes(self, now: float) -> int:
        """Bytes currently sitting in this connection's output buffer."""
        self._expire(now)
        return self._pending_bytes

    def connection_drain_completion(self, now: float, size_bytes: int) -> float:
        """Completion time imposed by the per-connection rate ceiling.

        Returns ``now`` when the connection has no dedicated ceiling.
        """
        if self.per_connection_bps is None:
            return now
        start = now if now > self._busy_until else self._busy_until
        self._busy_until = start + size_bytes / self.per_connection_bps
        return self._busy_until

    def enqueue(self, now: float, completion_time: float, size_bytes: int) -> int:
        """Record a delivery occupying the buffer until ``completion_time``.

        Returns the buffer occupancy *after* the enqueue, which the server
        compares against the hard limit.
        """
        # Hot path: ``_expire`` is inlined (one call per delivery).
        pending = self._pending
        pending_bytes = self._pending_bytes
        while pending and pending[0][0] <= now:
            pending_bytes -= pending.popleft()[1]
        pending.append((completion_time, size_bytes))
        pending_bytes += size_bytes
        self._pending_bytes = pending_bytes
        self.deliveries += 1
        self.bytes_delivered += size_bytes
        return pending_bytes

    def kill(self) -> None:
        """Mark the connection dead and drop its buffered state."""
        self.alive = False
        self._pending.clear()
        self._pending_bytes = 0
        self.channels.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return (
            f"<Connection {self.client_id} {state} "
            f"channels={len(self.channels)} buffered={self._pending_bytes}B>"
        )
