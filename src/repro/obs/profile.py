"""Deterministic sim-profiler: attribute events and virtual time, not wall time.

The ROADMAP's profile-guided kernel work needs to know *where* simulated
runs spend their events, but a wall-clock profiler on the hot path would
(a) slow the run down and (b) perturb nothing yet tempt everyone to feed
timings back into decisions, breaking byte-identical replays.  The
:class:`SimProfiler` sidesteps both: it records only **event counts** and
**virtual-time deltas**, keyed by subsystem and callback site, so a
profiled run is byte-identical to an unprofiled one and the profile itself
is deterministic across machines.

Hook points (all opt-in, all no-cost when absent):

* the kernel calls :meth:`record_event` after executing each scheduled
  callback (``sim.profiler`` is set by ``Tracer.attach_kernel``);
* the actor message tap calls :meth:`count_message` per transport send;
* subsystems (broker fan-out, LLA reporting) call :meth:`count` to
  attribute domain work that doesn't map 1:1 to scheduled events.

``python -m repro.obs profile trace.jsonl`` renders the snapshot embedded
in a trace (a ``profile`` event in the trailer) as a ranked hot-path view.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

#: Site key: (subsystem, qualified callback name).
SiteKey = Tuple[str, str]

SNAPSHOT_VERSION = 1


def classify_callable(fn: Callable[..., Any]) -> SiteKey:
    """Map a scheduled callable to ``(subsystem, site)``.

    Subsystem is the second package component of the defining module
    (``repro.broker.server`` -> ``broker``); site is the qualified name
    (``PubSubServer._complete_publish``).
    """
    func = getattr(fn, "__func__", fn)
    module = getattr(func, "__module__", "") or ""
    qualname = getattr(func, "__qualname__", None) or repr(func)
    parts = module.split(".")
    if len(parts) > 1 and parts[0] == "repro":
        subsystem = parts[1]
    elif parts and parts[0]:
        subsystem = parts[0]
    else:
        subsystem = "unknown"
    return subsystem, qualname


class SimProfiler:
    """Accumulates per-site event counts and virtual-time deltas.

    The virtual-time delta of an event is the sim-clock advance *into*
    that event, so per-site ``sim_s`` answers "how much simulated time
    passed while this subsystem's callbacks were next in line" -- a
    deterministic analogue of inclusive profiler time.
    """

    __slots__ = ("_event_stats", "_site_cache", "_messages", "_counts", "_last_t")

    def __init__(self) -> None:
        self._event_stats: Dict[SiteKey, List[float]] = {}
        # Keyed on the underlying function object (bound methods are
        # recreated per schedule; their __func__ is stable per class).
        self._site_cache: Dict[Any, SiteKey] = {}
        self._messages: Dict[str, List[float]] = {}
        self._counts: Dict[SiteKey, float] = {}
        self._last_t = 0.0

    # ------------------------------------------------------------------
    # Hot-path hooks
    # ------------------------------------------------------------------
    def record_event(self, fn: Callable[..., Any], now: float) -> None:
        """Kernel hook: one executed event at sim time ``now``."""
        func = getattr(fn, "__func__", fn)
        site = self._site_cache.get(func)
        if site is None:
            site = self._site_cache[func] = classify_callable(fn)
        stats = self._event_stats.get(site)
        if stats is None:
            stats = self._event_stats[site] = [0, 0.0]
        stats[0] += 1
        stats[1] += now - self._last_t
        self._last_t = now

    def count_message(self, message_type: str, size_bytes: int) -> None:
        """Transport hook: one actor-to-actor message send."""
        entry = self._messages.get(message_type)
        if entry is None:
            entry = self._messages[message_type] = [0, 0]
        entry[0] += 1
        entry[1] += size_bytes

    def count(self, subsystem: str, site: str, amount: float = 1.0) -> None:
        """Domain hook: attribute work not tied 1:1 to a scheduled event."""
        key = (subsystem, site)
        self._counts[key] = self._counts.get(key, 0.0) + amount

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-able, deterministically ordered profile snapshot."""
        events = {
            f"{subsystem}:{site}": {"count": int(stats[0]), "sim_s": stats[1]}
            for (subsystem, site), stats in sorted(self._event_stats.items())
        }
        return {
            "version": SNAPSHOT_VERSION,
            "total_events": int(sum(s[0] for s in self._event_stats.values())),
            "total_sim_s": sum(s[1] for s in self._event_stats.values()),
            "events": events,
            "messages": {
                name: {"count": int(entry[0]), "bytes": int(entry[1])}
                for name, entry in sorted(self._messages.items())
            },
            "counters": {
                f"{subsystem}:{site}": value
                for (subsystem, site), value in sorted(self._counts.items())
            },
        }


def render_profile(snapshot: Dict[str, Any], top: int = 20) -> str:
    """Rank hot paths from a profiler snapshot (CLI + experiment output)."""
    lines: List[str] = []
    out = lines.append
    total_events = snapshot.get("total_events", 0) or 0
    total_sim = snapshot.get("total_sim_s", 0.0) or 0.0
    out("sim-profiler hot paths")
    out(f"  total events: {total_events}   total sim time: {total_sim:.3f}s")

    events: Dict[str, Dict[str, Any]] = snapshot.get("events", {})
    if events:
        # Aggregate per subsystem first, then rank sites.
        per_subsystem: Dict[str, List[float]] = {}
        for key, stats in events.items():
            subsystem = key.split(":", 1)[0]
            agg = per_subsystem.setdefault(subsystem, [0, 0.0])
            agg[0] += stats["count"]
            agg[1] += stats["sim_s"]
        out("")
        out("  by subsystem:")
        ranked_subsystems = sorted(
            per_subsystem.items(), key=lambda kv: (-kv[1][0], kv[0])
        )
        for subsystem, (count, sim_s) in ranked_subsystems:
            share = 100.0 * count / total_events if total_events else 0.0
            out(
                f"    {subsystem:<12} {int(count):>10} events ({share:5.1f}%)"
                f"  sim {sim_s:>9.3f}s"
            )
        out("")
        out(f"  top {min(top, len(events))} sites by events:")
        ranked_sites = sorted(
            events.items(), key=lambda kv: (-kv[1]["count"], kv[0])
        )[:top]
        for key, stats in ranked_sites:
            share = 100.0 * stats["count"] / total_events if total_events else 0.0
            out(
                f"    {key:<52} {stats['count']:>10} ({share:5.1f}%)"
                f"  sim {stats['sim_s']:>9.3f}s"
            )

    messages: Dict[str, Dict[str, Any]] = snapshot.get("messages", {})
    if messages:
        out("")
        out("  messages by type:")
        ranked_messages = sorted(
            messages.items(), key=lambda kv: (-kv[1]["count"], kv[0])
        )[:top]
        for name, entry in ranked_messages:
            out(
                f"    {name:<32} {entry['count']:>10} sends"
                f"  {entry['bytes']:>12} bytes"
            )

    counters: Dict[str, float] = snapshot.get("counters", {})
    if counters:
        out("")
        out("  domain counters:")
        for key, value in sorted(counters.items(), key=lambda kv: (-kv[1], kv[0])):
            out(f"    {key:<52} {value:>12g}")
    return "\n".join(lines)
