"""Trace-analysis CLI: ``python -m repro.obs <command> <trace.jsonl>``.

Commands over JSONL traces produced by :mod:`repro.obs.export` (buffered
or streamed, plain or gzipped, rotated segments included):

* ``summary`` -- run summary: delivery-latency percentiles overall and per
  *phase* (the interval between two consecutive plan generations), the
  reconfiguration timeline, the failure & recovery timeline, the SLA
  violation timeline, per-server load-ratio sparklines and the hottest
  channels;
* ``sla`` -- just the SLA-violation timeline, optionally as JSON (the CI
  chaos job uploads this as an artifact);
* ``profile`` -- the deterministic sim-profiler's hot-path ranking, read
  from the ``profile`` trailer event of a run traced with profiling on.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.export import read_trace_segments
from repro.obs.profile import render_profile
from repro.obs.trace import (
    ClientFailoverEvent,
    ClientReconnectEvent,
    DecommissionEvent,
    DeliveryEvent,
    FanoutEvent,
    LinkFaultEvent,
    LlaStallEvent,
    LoadSnapshotEvent,
    MetricsEvent,
    MigrationSettledEvent,
    MigrationStartEvent,
    PartitionEvent,
    PartitionHealedEvent,
    PlanGeneratedEvent,
    PlanRepairDoneEvent,
    PlanRepairStartEvent,
    ProfileEvent,
    ServerCrashEvent,
    ServerFailureConfirmedEvent,
    ServerReadyEvent,
    ServerRestartEvent,
    ServerResurrectedEvent,
    ServerSuspectEvent,
    SlaViolationEndEvent,
    SlaViolationStartEvent,
    TraceEvent,
)

#: Event classes rendered in the failure & recovery timeline, in the order
#: they appear during one crash -> detect -> repair -> resubscribe cycle.
FAULT_EVENT_CLASSES = (
    ServerCrashEvent,
    ServerRestartEvent,
    PartitionEvent,
    PartitionHealedEvent,
    LinkFaultEvent,
    LlaStallEvent,
    ServerSuspectEvent,
    ServerFailureConfirmedEvent,
    ServerResurrectedEvent,
    PlanRepairStartEvent,
    PlanRepairDoneEvent,
    ClientFailoverEvent,
    ClientReconnectEvent,
)

SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Exact percentile (q in [0, 100]) of a sample list, nearest-rank."""
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def sparkline(values: Sequence[float], width: int = 32, ceiling: Optional[float] = None) -> str:
    """Downsample ``values`` to ``width`` columns of block characters."""
    if not values:
        return ""
    if len(values) > width:
        # Mean-pool each column so spikes are averaged, not dropped.
        pooled = []
        for column in range(width):
            lo = column * len(values) // width
            hi = max(lo + 1, (column + 1) * len(values) // width)
            chunk = values[lo:hi]
            pooled.append(sum(chunk) / len(chunk))
        values = pooled
    top = ceiling if ceiling is not None else max(values)
    if top <= 0:
        return SPARK_LEVELS[1] * len(values)
    steps = len(SPARK_LEVELS) - 1
    out = []
    for value in values:
        level = min(steps, max(1, 1 + int(value / top * (steps - 1))))
        out.append(SPARK_LEVELS[level])
    return "".join(out)


def _fmt_ms(seconds: Optional[float]) -> str:
    return f"{seconds * 1000:8.2f}ms" if seconds is not None else "       --"


class TraceSummary:
    """All derived views of one loaded trace."""

    def __init__(self, events: List[TraceEvent]):
        self.events = events
        self.deliveries: List[DeliveryEvent] = [
            e for e in events if isinstance(e, DeliveryEvent)
        ]
        self.fanouts: List[FanoutEvent] = [e for e in events if isinstance(e, FanoutEvent)]
        self.plans: List[PlanGeneratedEvent] = [
            e for e in events if isinstance(e, PlanGeneratedEvent)
        ]
        self.migrations: List[MigrationStartEvent] = [
            e for e in events if isinstance(e, MigrationStartEvent)
        ]
        self.settlements: List[MigrationSettledEvent] = [
            e for e in events if isinstance(e, MigrationSettledEvent)
        ]
        self.load_snapshots: List[LoadSnapshotEvent] = [
            e for e in events if isinstance(e, LoadSnapshotEvent)
        ]
        self.fault_events: List[TraceEvent] = [
            e for e in events if isinstance(e, FAULT_EVENT_CLASSES)
        ]
        self.sla_events: List[TraceEvent] = [
            e
            for e in events
            if isinstance(e, (SlaViolationStartEvent, SlaViolationEndEvent))
        ]

    @property
    def duration(self) -> float:
        return max((e.t for e in self.events), default=0.0)

    def fanout_cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-broker fan-out cache gauges from the final metrics trailer.

        Returns ``{server: {gauge_name: value}}`` for the
        ``fanout_cache_*`` gauges the broker publishes (compiled-channel
        count, hits, builds, invalidations), or ``{}`` when the trace
        has no metrics trailer or the run predates the cache.
        """
        trailer: Optional[MetricsEvent] = None
        for event in self.events:
            if isinstance(event, MetricsEvent):
                trailer = event  # keep the last snapshot
        if trailer is None:
            return {}
        out: Dict[str, Dict[str, float]] = {}
        for key, value in trailer.data.get("gauges", {}).items():
            if not key.startswith("fanout_cache_"):
                continue
            name, _, labels = key.partition("{")
            server = "?"
            for label in labels.rstrip("}").split(","):
                if label.startswith("server="):
                    server = label[len("server="):]
            out.setdefault(server, {})[name[len("fanout_cache_"):]] = value
        return out

    # ------------------------------------------------------------------
    # Phases: intervals between plan generations
    # ------------------------------------------------------------------
    def phases(self) -> List[Tuple[float, float, int]]:
        """``(start, end, plan_version)`` windows covering the whole run."""
        end = self.duration
        if not self.plans:
            return [(0.0, end, 0)]
        out = []
        initial_version = max(0, self.plans[0].version - 1)
        boundaries = [(0.0, initial_version)] + [(p.t, p.version) for p in self.plans]
        for index, (start, version) in enumerate(boundaries):
            stop = boundaries[index + 1][0] if index + 1 < len(boundaries) else end
            out.append((start, stop, version))
        return out

    def settle_time(self, plan: PlanGeneratedEvent) -> Optional[float]:
        """Seconds from plan generation until its last migration settled."""
        channels = set(plan.channels_changed)
        if not channels:
            return None
        next_plan_t = min((p.t for p in self.plans if p.t > plan.t), default=float("inf"))
        settled = [
            s.t
            for s in self.settlements
            if s.channel in channels and plan.t <= s.t < next_plan_t
        ]
        return max(settled) - plan.t if settled else None

    # ------------------------------------------------------------------
    # Channel and server aggregates
    # ------------------------------------------------------------------
    def hottest_channels(self, top: int) -> List[Tuple[str, int, float]]:
        """``(channel, deliveries, p99 latency)`` ordered hottest first."""
        counts: Dict[str, int] = defaultdict(int)
        latencies: Dict[str, List[float]] = defaultdict(list)
        for event in self.deliveries:
            counts[event.channel] += 1
            latencies[event.channel].append(event.latency_s)
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        return [
            (channel, count, percentile(latencies[channel], 99) or 0.0)
            for channel, count in ranked
        ]

    # ------------------------------------------------------------------
    # Failure & recovery
    # ------------------------------------------------------------------
    def crash_recovery(
        self, crash: ServerCrashEvent
    ) -> Tuple[Optional[float], Optional[float], int, Optional[float]]:
        """Per-crash recovery milestones, all relative to the crash time.

        Returns ``(detection_s, repair_s, failover_count, recovered_s)``
        where ``recovered_s`` is when the *slowest* affected client
        received an application publication again (``None`` while any of
        them never did -- the invariant the chaos smoke test enforces).
        """
        detect = next(
            (
                e.t
                for e in self.fault_events
                if isinstance(e, ServerFailureConfirmedEvent)
                and e.server == crash.server
                and e.t >= crash.t
            ),
            None,
        )
        repair = next(
            (
                e.t
                for e in self.fault_events
                if isinstance(e, PlanRepairDoneEvent)
                and e.server == crash.server
                and e.t >= crash.t
            ),
            None,
        )
        failovers = [
            e
            for e in self.fault_events
            if isinstance(e, ClientFailoverEvent)
            and e.server == crash.server
            and e.t >= crash.t
        ]
        recovered: Optional[float] = None
        for failover in failovers:
            first = next(
                (d.t for d in self.deliveries if d.client == failover.client and d.t > failover.t),
                None,
            )
            if first is None:
                return (
                    None if detect is None else detect - crash.t,
                    None if repair is None else repair - crash.t,
                    len(failovers),
                    None,
                )
            recovered = first if recovered is None else max(recovered, first)
        return (
            None if detect is None else detect - crash.t,
            None if repair is None else repair - crash.t,
            len(failovers),
            None if recovered is None else recovered - crash.t,
        )

    def load_series(self) -> Dict[str, List[Tuple[float, float]]]:
        series: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
        for snap in self.load_snapshots:
            for server, ratio in snap.ratios.items():
                series[server].append((snap.t, ratio))
        return dict(series)

    # ------------------------------------------------------------------
    # SLA violations
    # ------------------------------------------------------------------
    def sla_timeline(self) -> List[Dict[str, Any]]:
        """Violation episodes paired from start/end events, in start order.

        Episodes still open at the end of the trace have ``end_t`` /
        ``duration_s`` of ``None``.
        """
        episodes: List[Dict[str, Any]] = []
        open_by_scope: Dict[str, Dict[str, Any]] = {}
        for event in self.sla_events:
            if isinstance(event, SlaViolationStartEvent):
                episode = {
                    "scope": event.scope,
                    "start_t": event.t,
                    "end_t": None,
                    "duration_s": None,
                    "quantile": event.quantile,
                    "threshold_s": event.threshold_s,
                    "value_s": event.value_s,
                    "peak_s": event.value_s,
                }
                episodes.append(episode)
                open_by_scope[event.scope] = episode
            else:
                assert isinstance(event, SlaViolationEndEvent)
                episode = open_by_scope.pop(event.scope, None)
                if episode is None:
                    continue  # truncated trace: end without a start
                episode["end_t"] = event.t
                episode["duration_s"] = event.duration_s
                episode["peak_s"] = event.peak_s
        return episodes


def _fault_line(event: TraceEvent) -> str:
    """One human-readable timeline line per fault/recovery event."""
    if isinstance(event, ServerCrashEvent):
        return f"crash            {event.server}"
    if isinstance(event, ServerRestartEvent):
        return f"restart          {event.server}"
    if isinstance(event, PartitionEvent):
        return f"partition        {event.a} <-/-> {event.b}"
    if isinstance(event, PartitionHealedEvent):
        return f"partition-healed {event.a} <---> {event.b}"
    if isinstance(event, LinkFaultEvent):
        if event.loss <= 0.0 and event.jitter_s <= 0.0:
            return f"link-restored    {event.a} <-> {event.b}"
        return (
            f"link-fault       {event.a} <-> {event.b} "
            f"(loss {event.loss:.0%}, jitter {event.jitter_s * 1000:.0f}ms)"
        )
    if isinstance(event, LlaStallEvent):
        verb = "lla-stall       " if event.stalled else "lla-resume      "
        return f"{verb} {event.server}"
    if isinstance(event, ServerSuspectEvent):
        return f"suspect          {event.server} (silent {event.silence_s:.1f}s)"
    if isinstance(event, ServerFailureConfirmedEvent):
        return f"failure-confirm  {event.server} (silent {event.silence_s:.1f}s)"
    if isinstance(event, ServerResurrectedEvent):
        return f"resurrected      {event.server}"
    if isinstance(event, PlanRepairStartEvent):
        return f"repair-start     {event.server} ({len(event.channels)} channel(s))"
    if isinstance(event, PlanRepairDoneEvent):
        return f"repair-done      {event.server} -> plan v{event.version}"
    if isinstance(event, ClientFailoverEvent):
        return (
            f"client-failover  {event.client} lost {event.server} "
            f"({len(event.channels)} channel(s))"
        )
    if isinstance(event, ClientReconnectEvent):
        servers = ",".join(event.servers)
        return (
            f"client-reconnect {event.client} {event.channel} -> {servers} "
            f"(attempt {event.attempts})"
        )
    return type(event).TYPE  # pragma: no cover - FAULT_EVENT_CLASSES is closed


def render_summary(summary: TraceSummary, top: int = 5) -> str:
    lines: List[str] = []
    out = lines.append
    out(
        f"trace: {len(summary.events)} events over "
        f"{summary.duration:.1f} sim-seconds"
    )

    # --- delivery latency, overall + per phase ---
    all_latencies = [e.latency_s for e in summary.deliveries]
    out("")
    out(f"delivery latency ({len(all_latencies)} deliveries)")
    out(
        f"  overall          n={len(all_latencies):>7}  "
        f"p50={_fmt_ms(percentile(all_latencies, 50))}  "
        f"p99={_fmt_ms(percentile(all_latencies, 99))}  "
        f"max={_fmt_ms(max(all_latencies) if all_latencies else None)}"
    )
    phases = summary.phases()
    if len(phases) > 1:
        out("  per phase (between plan generations):")
        for start, stop, version in phases:
            window = [
                e.latency_s for e in summary.deliveries if start <= e.t < stop
            ]
            out(
                f"    plan v{version:<3} [{start:8.1f}s, {stop:8.1f}s)  "
                f"n={len(window):>7}  "
                f"p50={_fmt_ms(percentile(window, 50))}  "
                f"p99={_fmt_ms(percentile(window, 99))}"
            )

    # --- reconfiguration timeline ---
    out("")
    if summary.plans:
        out(f"reconfiguration timeline ({len(summary.plans)} plan generations)")
        moved_by_version: Dict[int, List[MigrationStartEvent]] = defaultdict(list)
        for migration in summary.migrations:
            moved_by_version[migration.version].append(migration)
        for plan in summary.plans:
            settle = summary.settle_time(plan)
            settle_text = f"settled +{settle:.2f}s" if settle is not None else "no settle signal"
            details = [
                f"{migration.channel}: {','.join(migration.from_servers)}"
                f" -> {','.join(migration.to_servers)} ({migration.mode})"
                for migration in moved_by_version.get(plan.version, [])[:3]
            ]
            moved = len(plan.channels_changed)
            extra = f" +{moved - 3} more" if moved > 3 else ""
            flags = []
            if plan.spawn_requested:
                flags.append("spawn requested")
            if plan.decommissioned:
                flags.append(f"decommission {','.join(plan.decommissioned)}")
            flag_text = f"  [{'; '.join(flags)}]" if flags else ""
            out(
                f"  t={plan.t:8.2f}s  plan v{plan.version:<3} "
                f"{moved} channel(s) moved, {settle_text}{flag_text}"
            )
            for detail in details:
                out(f"             {detail}{extra and ''}")
            if extra:
                out(f"             ...{extra}")
        ready = [e for e in summary.events if isinstance(e, ServerReadyEvent)]
        gone = [e for e in summary.events if isinstance(e, DecommissionEvent)]
        if ready or gone:
            out(
                f"  elasticity: {len(ready)} server(s) spawned, "
                f"{len(gone)} decommissioned"
            )
    else:
        out("reconfiguration timeline: no plan generations recorded")

    # --- failure & recovery timeline ---
    if summary.fault_events:
        out("")
        out(f"failure & recovery timeline ({len(summary.fault_events)} fault events)")
        for event in summary.fault_events:
            out(f"  t={event.t:8.2f}s  {_fault_line(event)}")
        for crash in summary.fault_events:
            if not isinstance(crash, ServerCrashEvent):
                continue
            detect, repair, failovers, recovered = summary.crash_recovery(crash)
            milestones = [
                f"detected +{detect:.2f}s" if detect is not None else "never detected",
                f"repaired +{repair:.2f}s" if repair is not None else "never repaired",
                f"{failovers} client failover(s)",
            ]
            if failovers:
                milestones.append(
                    f"slowest client delivering again +{recovered:.2f}s"
                    if recovered is not None
                    else "some client NEVER recovered"
                )
            out(
                f"  recovery of {crash.server} (crashed t={crash.t:.2f}s): "
                + ", ".join(milestones)
            )

    # --- SLA violation timeline ---
    episodes = summary.sla_timeline()
    if episodes:
        out("")
        out(render_sla_timeline(episodes))

    # --- per-server load ratios ---
    out("")
    series = summary.load_series()
    if series:
        out("per-server load ratio (window-averaged, one sample per eval tick)")
        ceiling = max(
            (ratio for points in series.values() for __, ratio in points), default=1.0
        )
        ceiling = max(ceiling, 1e-9)
        for server in sorted(series):
            values = [ratio for __, ratio in series[server]]
            out(
                f"  {server:<10} n={len(values):>5}  "
                f"min={min(values):5.2f}  mean={sum(values) / len(values):5.2f}  "
                f"max={max(values):5.2f}  {sparkline(values, ceiling=ceiling)}"
            )
    else:
        out("per-server load ratio: no load snapshots recorded")

    # --- fan-out cache ---
    cache = summary.fanout_cache_stats()
    if cache:
        out("")
        out("fan-out cache (per broker, end-of-run gauges)")
        for server in sorted(cache):
            g = cache[server]
            hits = g.get("hits", 0.0)
            builds = g.get("builds", 0.0)
            lookups = hits + builds
            rate = f"{hits / lookups:6.1%}" if lookups else "    --"
            out(
                f"  {server:<10} channels={g.get('channels', 0.0):>6.0f}  "
                f"hits={hits:>9.0f}  builds={builds:>6.0f}  "
                f"invalidations={g.get('invalidations', 0.0):>6.0f}  "
                f"hit-rate={rate}"
            )

    # --- hottest channels ---
    out("")
    hottest = summary.hottest_channels(top)
    if hottest:
        out(f"hottest channels (top {len(hottest)} by deliveries)")
        for channel, count, p99 in hottest:
            out(f"  {channel:<16} {count:>8} deliveries  p99={_fmt_ms(p99)}")
    else:
        out("hottest channels: no deliveries recorded")
    return "\n".join(lines)


def render_sla_timeline(episodes: List[Dict[str, Any]]) -> str:
    """Human-readable SLA violation timeline (also used by ``sla``)."""
    lines: List[str] = []
    out = lines.append
    if not episodes:
        out("SLA violations: none recorded")
        return "\n".join(lines)
    threshold = episodes[0]["threshold_s"]
    quantile = episodes[0]["quantile"]
    total = sum(e["duration_s"] or 0.0 for e in episodes)
    open_count = sum(1 for e in episodes if e["end_t"] is None)
    out(
        f"SLA violations (windowed p{quantile:g} > {threshold * 1000:.0f}ms): "
        f"{len(episodes)} episode(s), {total:.1f}s total"
        + (f", {open_count} still open" if open_count else "")
    )
    for episode in episodes:
        if episode["end_t"] is None:
            span = f"[{episode['start_t']:8.2f}s, ...     )  OPEN"
        else:
            span = (
                f"[{episode['start_t']:8.2f}s, {episode['end_t']:8.2f}s)  "
                f"{episode['duration_s']:6.2f}s"
            )
        out(
            f"  {episode['scope']:<18} {span}  "
            f"peak={_fmt_ms(episode['peak_s'])}"
        )
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze Dynamoth flight-recorder traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser("summary", help="print a run summary of a JSONL trace")
    p.add_argument("trace", help="path to a trace.jsonl file")
    p.add_argument("--top", type=int, default=5, help="hottest channels to list")
    p = sub.add_parser("sla", help="print the SLA-violation timeline")
    p.add_argument("trace", help="path to a trace.jsonl file")
    p.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    p = sub.add_parser("profile", help="rank hot paths from the profiler snapshot")
    p.add_argument("trace", help="path to a trace.jsonl file")
    p.add_argument("--top", type=int, default=20, help="sites to list per ranking")
    return parser


def _load(path: str) -> List[TraceEvent]:
    return read_trace_segments(path)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        events = _load(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        if args.command == "summary":
            print(render_summary(TraceSummary(events), top=args.top))
        elif args.command == "sla":
            episodes = TraceSummary(events).sla_timeline()
            if args.json:
                print(json.dumps(episodes, indent=2, sort_keys=True))
            else:
                print(render_sla_timeline(episodes))
        elif args.command == "profile":
            profiles = [e for e in events if isinstance(e, ProfileEvent)]
            if not profiles:
                print(
                    f"error: {args.trace}: no profiler snapshot in trace "
                    "(run with profiling enabled, e.g. --sim-profile)",
                    file=sys.stderr,
                )
                return 1
            print(render_profile(profiles[-1].data, top=args.top))
    except BrokenPipeError:  # e.g. piped into head; not an error
        return 0
    return 0
