"""JSONL trace export and loading.

Schema (one JSON object per line):

* Line 1 is a header: ``{"type": "trace_header", "schema": 2}``.
* Every following line is one event: ``{"type": "<tag>", "t": <float>, ...}``
  where ``<tag>`` is a key of :data:`repro.obs.trace.EVENT_TYPES` and the
  remaining keys are that event dataclass's fields (tuples serialized as
  JSON arrays).
* When exported through :func:`dump_tracer`, the final line is a
  ``metrics`` event embedding a full registry snapshot.

The loader reconstructs typed event objects, so a write/read cycle is
lossless (``loaded == original`` field for field); unknown event types in
*newer* traces are skipped rather than failing, keeping old readers usable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from repro.obs.trace import EVENT_TYPES, MetricsEvent, TraceEvent, Tracer

#: Current writer schema.  v2 added the fault/recovery event types of the
#: ``repro.faults`` subsystem (server_crash, partition, server_suspect,
#: plan_repair_*, client_reconnect, ...).
SCHEMA_VERSION = 2
#: Schemas this reader accepts.  v1 traces contain a strict subset of the
#: v2 event types, so they load unchanged.
SUPPORTED_SCHEMAS = frozenset({1, 2})
HEADER_TYPE = "trace_header"


def event_to_json(event: TraceEvent) -> str:
    return json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))


def event_from_dict(data: Dict[str, Any]) -> TraceEvent:
    cls = EVENT_TYPES.get(data.get("type", ""))
    if cls is None:
        raise ValueError(f"unknown trace event type: {data.get('type')!r}")
    return cls.from_dict(data)


def write_trace(path: Union[str, Path], events: Iterable[TraceEvent]) -> int:
    """Write ``events`` as JSONL; returns the number of events written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"type": HEADER_TYPE, "schema": SCHEMA_VERSION}) + "\n")
        for event in events:
            fh.write(event_to_json(event) + "\n")
            count += 1
    return count


def dump_tracer(tracer: Tracer, path: Union[str, Path]) -> int:
    """Export a tracer's events plus a final metrics snapshot."""
    trailer = MetricsEvent(t=_last_time(tracer.events), data=tracer.metrics.snapshot())
    return write_trace(path, list(tracer.events) + [trailer])


def _last_time(events: List[TraceEvent]) -> float:
    return events[-1].t if events else 0.0


def read_trace(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a JSONL trace back into typed event objects.

    Validates the header, tolerates (skips) event types this version does
    not know, and raises ``ValueError`` on malformed input.
    """
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("type") != HEADER_TYPE:
            raise ValueError(f"{path}: missing trace header")
        if header.get("schema") not in SUPPORTED_SCHEMAS:
            raise ValueError(
                f"{path}: unsupported schema {header.get('schema')!r} "
                f"(reader supports {sorted(SUPPORTED_SCHEMAS)})"
            )
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            cls = EVENT_TYPES.get(data.get("type", ""))
            if cls is None:
                continue  # forward compatibility: newer writers add types
            try:
                events.append(cls.from_dict(data))
            except (KeyError, TypeError) as exc:  # noqa: PERF203 - per-line diagnostics
                raise ValueError(f"{path}:{line_no}: malformed event: {exc}") from exc
    return events
