"""JSONL trace export and loading.

Schema (one JSON object per line):

* Line 1 is a header: ``{"type": "trace_header", "schema": 3}``.
* Every following line is one event: ``{"type": "<tag>", "t": <float>, ...}``
  where ``<tag>`` is a key of :data:`repro.obs.trace.EVENT_TYPES` and the
  remaining keys are that event dataclass's fields (tuples serialized as
  JSON arrays).
* When exported through :func:`dump_tracer` (or a streaming sink finalized
  with :func:`trailer_events`), the trace ends with an optional ``profile``
  event and a ``metrics`` event embedding a full registry snapshot.

The loader reconstructs typed event objects, so a write/read cycle is
lossless (``loaded == original`` field for field); unknown event types in
*newer* traces are skipped rather than failing, keeping old readers usable.
Readers transparently handle gzip-compressed traces (sniffed by magic
bytes) and rotated segment files (``trace.jsonl``, ``trace.jsonl.1``, ...)
written by :class:`repro.obs.sink.StreamingJsonlSink`.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, Any, Dict, Iterable, Iterator, List, Union

from repro.obs.trace import EVENT_TYPES, MetricsEvent, ProfileEvent, TraceEvent, Tracer

#: Current writer schema.  v2 added the fault/recovery event types of the
#: ``repro.faults`` subsystem; v3 adds the live-SLA events (sla_violation_*,
#: sla_window), the profiler snapshot event and DeliveryEvent.server.
SCHEMA_VERSION = 3
#: Schemas this reader accepts.  v1/v2 traces contain a strict subset of
#: the v3 event types (and v3-grown fields have defaults), so they load
#: unchanged.
SUPPORTED_SCHEMAS = frozenset({1, 2, 3})
HEADER_TYPE = "trace_header"

#: GZIP magic bytes, for transparent sniffing on the read side.
_GZIP_MAGIC = b"\x1f\x8b"


def event_to_json(event: TraceEvent) -> str:
    return json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))


def header_json() -> str:
    """The schema header line (shared by buffered and streaming writers)."""
    return json.dumps({"type": HEADER_TYPE, "schema": SCHEMA_VERSION})


def event_from_dict(data: Dict[str, Any]) -> TraceEvent:
    cls = EVENT_TYPES.get(data.get("type", ""))
    if cls is None:
        raise ValueError(f"unknown trace event type: {data.get('type')!r}")
    return cls.from_dict(data)


def write_trace(path: Union[str, Path], events: Iterable[TraceEvent]) -> int:
    """Write ``events`` as JSONL; returns the number of events written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(header_json() + "\n")
        for event in events:
            fh.write(event_to_json(event) + "\n")
            count += 1
    return count


def trailer_events(tracer: Tracer) -> List[TraceEvent]:
    """End-of-run events appended after the timeline.

    A ``profile`` snapshot (when a profiler is attached) followed by the
    ``metrics`` registry snapshot, both stamped with the last event time.
    Shared by :func:`dump_tracer` and streaming-sink finalization so both
    paths produce byte-identical output.
    """
    t = tracer.events[-1].t if tracer.events else tracer.last_t
    trailer: List[TraceEvent] = []
    if tracer.profiler is not None:
        trailer.append(ProfileEvent(t=t, data=tracer.profiler.snapshot()))
    trailer.append(MetricsEvent(t=t, data=tracer.metrics.snapshot()))
    return trailer


def dump_tracer(tracer: Tracer, path: Union[str, Path]) -> int:
    """Export a tracer's buffered events plus the end-of-run trailer.

    For sink-backed (streaming) tracers use
    :meth:`repro.obs.sink.StreamingJsonlSink.finalize` instead -- the
    events have already left the building.
    """
    return write_trace(path, list(tracer.events) + trailer_events(tracer))


def _open_for_read(path: Union[str, Path]) -> IO[str]:
    """Open a trace for reading, transparently decompressing gzip."""
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == _GZIP_MAGIC:
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def iter_trace(path: Union[str, Path]) -> Iterator[TraceEvent]:
    """Stream one trace file's events without materializing the list.

    Same validation semantics as :func:`read_trace` (header checked,
    unknown event types skipped, malformed lines raise with line numbers).
    """
    with _open_for_read(path) as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("type") != HEADER_TYPE:
            raise ValueError(f"{path}: missing trace header")
        if header.get("schema") not in SUPPORTED_SCHEMAS:
            raise ValueError(
                f"{path}: unsupported schema {header.get('schema')!r} "
                f"(reader supports {sorted(SUPPORTED_SCHEMAS)})"
            )
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            cls = EVENT_TYPES.get(data.get("type", ""))
            if cls is None:
                continue  # forward compatibility: newer writers add types
            try:
                yield cls.from_dict(data)
            except (KeyError, TypeError) as exc:  # noqa: PERF203 - per-line diagnostics
                raise ValueError(f"{path}:{line_no}: malformed event: {exc}") from exc


def read_trace(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a JSONL trace back into typed event objects.

    Validates the header, tolerates (skips) event types this version does
    not know, and raises ``ValueError`` on malformed input.
    """
    return list(iter_trace(path))


def trace_segments(path: Union[str, Path]) -> List[Path]:
    """``path`` plus any rotation segments ``path.1``, ``path.2``, ... in order."""
    base = Path(path)
    segments = [base]
    index = 1
    while True:
        candidate = base.with_name(f"{base.name}.{index}")
        if not candidate.exists():
            break
        segments.append(candidate)
        index += 1
    return segments


def iter_trace_segments(path: Union[str, Path]) -> Iterator[TraceEvent]:
    """Stream events across a (possibly rotated) trace in segment order."""
    for segment in trace_segments(path):
        yield from iter_trace(segment)


def read_trace_segments(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a (possibly rotated) trace into one event list."""
    return list(iter_trace_segments(path))
