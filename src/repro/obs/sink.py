"""Bounded-memory streaming trace sinks.

PR 1's flight recorder buffered every event in RAM before export -- fine
for figure-sized runs, a blocker for the ROADMAP's 100k-1M client tier
(chaos_light alone peaks near a GB of RSS).  A :class:`TraceSink` receives
events *as they are emitted* and the :class:`StreamingJsonlSink` writes
them incrementally:

* events are serialized immediately and buffered as strings, flushed to
  disk every ``chunk_events`` lines -- memory stays O(chunk), not O(run);
* output is byte-equivalent to the buffered :func:`repro.obs.export.dump_tracer`
  path (same header, same serialization, same trailer via
  :meth:`finalize`), so downstream tooling cannot tell the difference;
* optional gzip compression (``compress=True``) and rotation every
  ``rotate_events`` events into ``path``, ``path.1``, ``path.2``, ...
  (each segment self-contained with its own schema header).

Usage::

    sink = StreamingJsonlSink("trace.jsonl", chunk_events=4096)
    tracer = Tracer(sink=sink)           # buffering off by default
    ... run the simulation ...
    sink.finalize(tracer)                # trailer + flush + close
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, List, Optional, Protocol, Union

from repro.obs.export import event_to_json, header_json, trailer_events
from repro.obs.trace import TraceEvent, Tracer


class TraceSink(Protocol):
    """Anything that can receive trace events incrementally."""

    def emit(self, event: TraceEvent) -> None:
        """Accept one event (called from the tracer's hot path)."""

    def close(self) -> None:
        """Flush and release resources; no emits may follow."""


class StreamingJsonlSink:
    """Incremental JSONL writer with chunked flush, gzip and rotation."""

    DEFAULT_CHUNK = 4096

    def __init__(
        self,
        path: Union[str, Path],
        *,
        chunk_events: int = DEFAULT_CHUNK,
        compress: bool = False,
        rotate_events: Optional[int] = None,
    ) -> None:
        if chunk_events < 1:
            raise ValueError(f"chunk_events must be >= 1: {chunk_events!r}")
        if rotate_events is not None and rotate_events < 1:
            raise ValueError(f"rotate_events must be >= 1: {rotate_events!r}")
        self.path = Path(path)
        self._chunk = chunk_events
        self._compress = compress
        self._rotate = rotate_events
        self._buffer: List[str] = []
        self._fh: Optional[IO[str]] = None
        self._segment_events = 0
        #: Total events written (all segments, excluding headers).
        self.events_written = 0
        #: Segment paths in write order (``path`` first).
        self.segments: List[Path] = []
        self._open_segment()

    # ------------------------------------------------------------------
    # TraceSink interface
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        if self._fh is None:
            raise ValueError(f"{self.path}: sink is closed")
        if self._rotate is not None and self._segment_events >= self._rotate:
            self._flush()
            self._close_fh()
            self._open_segment()
        self._buffer.append(event_to_json(event))
        self._segment_events += 1
        self.events_written += 1
        if len(self._buffer) >= self._chunk:
            self._flush()

    def close(self) -> None:
        if self._fh is None:
            return
        self._flush()
        self._close_fh()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Events currently held in memory (bounded by ``chunk_events``)."""
        return len(self._buffer)

    def finalize(self, tracer: Tracer) -> int:
        """Append the end-of-run trailer (profile + metrics) and close.

        Returns the total number of events written across all segments.
        The trailer comes from :func:`repro.obs.export.trailer_events`, the
        same helper :func:`~repro.obs.export.dump_tracer` uses, which keeps
        streamed and buffered traces byte-equivalent.
        """
        for event in trailer_events(tracer):
            self.emit(event)
        self.close()
        return self.events_written

    def _open_segment(self) -> None:
        if not self.segments:
            segment = self.path
        else:
            segment = self.path.with_name(f"{self.path.name}.{len(self.segments)}")
        if self._compress:
            self._fh = gzip.open(segment, "wt", encoding="utf-8")
        else:
            self._fh = open(segment, "w", encoding="utf-8")
        self._fh.write(header_json() + "\n")
        self.segments.append(segment)
        self._segment_events = 0

    def _flush(self) -> None:
        if self._buffer and self._fh is not None:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    def _close_fh(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "StreamingJsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
