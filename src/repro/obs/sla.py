"""Live SLA monitoring: sliding-window delivery-latency percentiles.

Dynamoth's responsiveness goal is a *95th-percentile latency threshold*
(the paper evaluates the fraction of deliveries arriving under it).  The
run-level histograms in :mod:`repro.obs.metrics` answer that after the
fact; this module answers it *live*, on sim time, so the balancer can see
an SLA breach as a signal and traces carry a violation timeline.

Design:

* :class:`SlidingHistogram` -- a ring of K log-bucket
  :class:`~repro.obs.metrics.Histogram` slices covering ``window_s``
  seconds of sim time.  Observations land in the slice owning their
  timestamp; slices age out as the window advances; a windowed percentile
  is a percentile of the merged live slices.  Memory is O(K * buckets),
  independent of delivery rate.
* :class:`SlaMonitor` -- a tracer observer fed every
  :class:`~repro.obs.trace.DeliveryEvent`.  It maintains windows per scope
  ("overall", ``channel:<class>``, ``server:<id>``) and, at each slice
  boundary, evaluates the configured quantile against ``threshold_s``,
  emitting ``sla_violation_start`` / ``sla_violation_end`` (and periodic
  ``sla_window`` stats) trace events.  A violation is strict crossing:
  a windowed p95 exactly *at* the threshold still meets the SLA, and an
  empty window (no deliveries at all) cannot violate -- so a total outage
  ends an episode only once the stale samples age out, which is why the
  balancer's evaluation tick also calls :meth:`SlaMonitor.poll`.

Everything here advances on event/sim time only -- no wall clock, no RNG,
no scheduled events -- so an SLA-monitored run stays byte-identical to an
unmonitored one on the simulation side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram, merge_histograms
from repro.obs.trace import (
    DeliveryEvent,
    SlaViolationEndEvent,
    SlaViolationStartEvent,
    SlaWindowEvent,
    TraceEvent,
    Tracer,
    channel_class,
)

#: Scope label for the cluster-wide window.
OVERALL_SCOPE = "overall"


class SlidingHistogram:
    """A sim-time sliding window over log-bucketed latency histograms."""

    def __init__(
        self,
        window_s: float = 10.0,
        slices: int = 10,
        *,
        min_value: float = Histogram.DEFAULT_MIN,
        factor: float = Histogram.DEFAULT_FACTOR,
        buckets: int = Histogram.DEFAULT_BUCKETS,
    ) -> None:
        if window_s <= 0 or slices < 1:
            raise ValueError("need window_s > 0 and slices >= 1")
        self.window_s = window_s
        self.slice_s = window_s / slices
        self._hists = [Histogram(min_value, factor, buckets) for _ in range(slices)]
        #: Epoch (slice index since t=0) owning each slot, or None if empty.
        self._epochs: List[Optional[int]] = [None] * slices

    def epoch_of(self, t: float) -> int:
        return int(t / self.slice_s)

    def observe(self, t: float, value: float) -> None:
        epoch = self.epoch_of(t)
        slot = epoch % len(self._hists)
        hist = self._hists[slot]
        if self._epochs[slot] != epoch:
            hist.reset()
            self._epochs[slot] = epoch
        hist.observe(value)

    def roll(self, epoch: int) -> None:
        """Age out slices that fell behind the window ending at ``epoch``."""
        horizon = epoch - len(self._hists) + 1
        for slot, slot_epoch in enumerate(self._epochs):
            if slot_epoch is not None and (slot_epoch < horizon or slot_epoch > epoch):
                self._hists[slot].reset()
                self._epochs[slot] = None

    def live_slices(self, epoch: int) -> List[Histogram]:
        """Non-empty slices within the window ending at ``epoch``."""
        horizon = epoch - len(self._hists) + 1
        return [
            self._hists[slot]
            for slot, slot_epoch in enumerate(self._epochs)
            if slot_epoch is not None and horizon <= slot_epoch <= epoch
        ]

    def merged(self, epoch: int) -> Optional[Histogram]:
        """All live samples in the window as one histogram (None if empty)."""
        slices = self.live_slices(epoch)
        if not slices:
            return None
        merged = merge_histograms(slices)
        return merged if merged.count else None


@dataclass(frozen=True)
class SlaConfig:
    """Static parameters of the live SLA monitor."""

    threshold_s: float
    quantile: float = 95.0
    window_s: float = 10.0
    slices: int = 10
    per_channel: bool = True
    per_server: bool = True
    emit_window_stats: bool = True
    #: Bucket layout of the window slices.  Finer than the run-level
    #: metrics default (factor 2.0) because an SLA judgment needs to
    #: resolve latency to ~12%, not to a power of two.
    bucket_min_s: float = 1e-4
    bucket_factor: float = 1.25
    bucket_count: int = 64

    def __post_init__(self) -> None:
        if self.threshold_s <= 0:
            raise ValueError(f"sla threshold must be positive: {self.threshold_s!r}")
        if not 0 < self.quantile <= 100:
            raise ValueError(f"sla quantile out of (0, 100]: {self.quantile!r}")
        if self.window_s <= 0 or self.slices < 1:
            raise ValueError("need window_s > 0 and slices >= 1")
        if self.bucket_min_s <= 0 or self.bucket_factor <= 1 or self.bucket_count < 1:
            raise ValueError("need bucket_min_s > 0, bucket_factor > 1, buckets >= 1")


@dataclass
class SlaViolation:
    """One violation episode of one scope (closed when ``end_t`` is set)."""

    scope: str
    start_t: float
    peak_s: float
    end_t: Optional[float] = None

    @property
    def duration_s(self) -> Optional[float]:
        return None if self.end_t is None else self.end_t - self.start_t


@dataclass
class _Scope:
    window: SlidingHistogram
    active: Optional[SlaViolation] = None


class SlaMonitor:
    """Tracer observer tracking windowed latency quantiles per scope.

    Attach with ``tracer.add_observer(monitor)``; optionally call
    :meth:`poll` from a periodic control-plane tick (the balancer's
    evaluation loop does) so windows drain even when deliveries stop.
    """

    def __init__(self, tracer: Tracer, config: SlaConfig) -> None:
        self._tracer = tracer
        self.config = config
        self._scopes: Dict[str, _Scope] = {}
        self._epoch: Optional[int] = None
        self.slice_s = config.window_s / config.slices
        #: Closed + active violation episodes, in start order.
        self.violations: List[SlaViolation] = []

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def __call__(self, event: TraceEvent) -> None:
        """Tracer-observer entry point."""
        if type(event) is DeliveryEvent:
            self.observe(event.t, event.latency_s, event.channel, event.server)

    def observe(self, t: float, latency_s: float, channel: str, server: str = "") -> None:
        self._advance(t)
        scopes = [OVERALL_SCOPE]
        if self.config.per_channel:
            scopes.append(f"channel:{channel_class(channel)}")
        if self.config.per_server and server:
            scopes.append(f"server:{server}")
        for name in scopes:
            self._scope(name).window.observe(t, latency_s)

    def poll(self, now: float) -> None:
        """Advance windows on sim time without recording a sample."""
        self._advance(now)

    # ------------------------------------------------------------------
    # Reading (balancer signal / reports)
    # ------------------------------------------------------------------
    def active_scopes(self) -> Tuple[str, ...]:
        """Scopes currently in violation (read-only balancer signal)."""
        return tuple(
            sorted(name for name, s in self._scopes.items() if s.active is not None)
        )

    def in_violation(self, scope: str = OVERALL_SCOPE) -> bool:
        entry = self._scopes.get(scope)
        return entry is not None and entry.active is not None

    def windowed_percentile(self, scope: str = OVERALL_SCOPE) -> Optional[float]:
        """Current windowed SLA-quantile value for ``scope`` (None if empty)."""
        entry = self._scopes.get(scope)
        if entry is None or self._epoch is None:
            return None
        merged = entry.window.merged(self._epoch)
        return None if merged is None else merged.percentile(self.config.quantile)

    def report(self) -> Dict[str, Any]:
        """JSON-able summary: config, per-scope window stats, timeline."""
        scopes: Dict[str, Any] = {}
        for name in sorted(self._scopes):
            entry = self._scopes[name]
            merged = (
                entry.window.merged(self._epoch) if self._epoch is not None else None
            )
            scopes[name] = {
                "window_count": merged.count if merged else 0,
                "value_s": (
                    merged.percentile(self.config.quantile) if merged else None
                ),
                "violating": entry.active is not None,
            }
        violations = [
            {
                "scope": v.scope,
                "start_t": v.start_t,
                "end_t": v.end_t,
                "duration_s": v.duration_s,
                "peak_s": v.peak_s,
            }
            for v in self.violations
        ]
        return {
            "threshold_s": self.config.threshold_s,
            "quantile": self.config.quantile,
            "window_s": self.config.window_s,
            "scopes": scopes,
            "violations": violations,
            "violation_count": len(violations),
            "violation_seconds": sum(v.duration_s or 0.0 for v in self.violations),
        }

    # ------------------------------------------------------------------
    # Window clock
    # ------------------------------------------------------------------
    def _scope(self, name: str) -> _Scope:
        entry = self._scopes.get(name)
        if entry is None:
            config = self.config
            entry = self._scopes[name] = _Scope(
                SlidingHistogram(
                    config.window_s,
                    config.slices,
                    min_value=config.bucket_min_s,
                    factor=config.bucket_factor,
                    buckets=config.bucket_count,
                )
            )
        return entry

    def _advance(self, t: float) -> None:
        epoch = int(t / self.slice_s)
        if self._epoch is None:
            self._epoch = epoch
            return
        # Evaluate each completed slice boundary in order (bounded per
        # scope by the ring size via roll(), but boundaries themselves are
        # walked so violation timestamps stay slice-aligned).
        while self._epoch < epoch:
            self._epoch += 1
            self._evaluate(self._epoch)

    def _evaluate(self, epoch: int) -> None:
        """Re-judge every scope at a slice boundary."""
        boundary_t = epoch * self.slice_s
        config = self.config
        tracer = self._tracer
        for name in sorted(self._scopes):
            entry = self._scopes[name]
            entry.window.roll(epoch)
            merged = entry.window.merged(epoch)
            value = merged.percentile(config.quantile) if merged else None
            count = merged.count if merged else 0
            # Strict crossing: value == threshold still meets the SLA.
            violating = value is not None and value > config.threshold_s
            if violating and entry.active is None:
                assert value is not None
                entry.active = SlaViolation(name, boundary_t, value)
                self.violations.append(entry.active)
                if tracer.enabled:
                    tracer.emit(
                        SlaViolationStartEvent(
                            boundary_t, name, config.quantile,
                            config.threshold_s, value, count,
                        )
                    )
            elif violating and entry.active is not None:
                assert value is not None
                if value > entry.active.peak_s:
                    entry.active.peak_s = value
            elif not violating and entry.active is not None:
                episode = entry.active
                episode.end_t = boundary_t
                entry.active = None
                if tracer.enabled:
                    tracer.emit(
                        SlaViolationEndEvent(
                            boundary_t, name,
                            boundary_t - episode.start_t, episode.peak_s,
                        )
                    )
            if config.emit_window_stats and count and tracer.enabled:
                tracer.emit(
                    SlaWindowEvent(
                        boundary_t, name, count,
                        merged.percentile(50) if merged else None,
                        value,
                        merged.max if merged else None,
                        violating,
                    )
                )
