"""Event tracing: the flight recorder's raw, typed timeline.

A :class:`Tracer` collects cheap timestamped dataclass events emitted by
every layer of the stack -- the publication lifecycle (publish, broker
fan-out, delivery with hop latency), control-plane actions (load reports,
plan generation and pushes, migrations starting and settling, elasticity)
and client lifecycle (subscribe/unsubscribe, plan-miss fallbacks).

The default everywhere is :data:`NULL_TRACER`, a :class:`NullTracer` whose
``enabled`` flag is ``False``.  Instrumented hot paths guard event
construction behind that flag::

    tr = self._tracer
    if tr.enabled:
        tr.emit(DeliveryEvent(...))

so an untraced run performs one attribute check per hook and allocates
nothing.  Tracing never touches any RNG stream or schedules simulator
events, which keeps traced and untraced runs bit-identical.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, field, fields
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.obs.metrics import MetricsRegistry


def channel_class(channel: str) -> str:
    """Low-cardinality label for a channel name.

    The namespace prefix before the first ``:`` (``tile:3:4`` -> ``tile``),
    with any trailing digits stripped so unprefixed families like
    ``room17`` collapse to ``room``.
    """
    prefix = channel.split(":", 1)[0]
    stripped = prefix.rstrip("0123456789")
    return stripped if stripped else prefix


@dataclass
class TraceEvent:
    """Base event: every record carries the virtual timestamp ``t``."""

    TYPE = "event"

    t: float

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": self.TYPE}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        kwargs = {}
        for f in fields(cls):
            if f.name not in data:
                # Fields grown with a default after a schema bump may be
                # absent from older traces; required fields still raise.
                if f.default is not MISSING:
                    continue
                if f.default_factory is not MISSING:
                    continue
                raise KeyError(f.name)
            value = data[f.name]
            if isinstance(value, list):
                value = tuple(value)
            kwargs[f.name] = value
        return cls(**kwargs)


# ----------------------------------------------------------------------
# Data-plane events (publication lifecycle)
# ----------------------------------------------------------------------
@dataclass
class PublishEvent(TraceEvent):
    """A client handed a publication to the broker layer."""

    TYPE = "publish"

    msg_id: str
    channel: str
    sender: str
    plan_version: int
    targets: Tuple[str, ...]
    payload_size: int


@dataclass
class FanoutEvent(TraceEvent):
    """A broker finished processing a publication and fanned it out."""

    TYPE = "fanout"

    server: str
    channel: str
    msg_id: Optional[str]
    fanout: int
    wire_bytes: int


@dataclass
class DeliveryEvent(TraceEvent):
    """A client received a (non-duplicate) application publication."""

    TYPE = "delivery"

    client: str
    channel: str
    msg_id: str
    sender: str
    latency_s: float
    plan_version: int
    #: Broker that fanned out the delivery (schema 3; "" in older traces).
    server: str = ""


# ----------------------------------------------------------------------
# Client lifecycle events
# ----------------------------------------------------------------------
@dataclass
class SubscribeEvent(TraceEvent):
    TYPE = "subscribe"

    client: str
    channel: str
    servers: Tuple[str, ...]


@dataclass
class UnsubscribeEvent(TraceEvent):
    TYPE = "unsubscribe"

    client: str
    channel: str


@dataclass
class PlanMissEvent(TraceEvent):
    """A client had no plan entry and fell back to consistent hashing."""

    TYPE = "plan_miss"

    client: str
    channel: str
    server: str


# ----------------------------------------------------------------------
# Control-plane events
# ----------------------------------------------------------------------
@dataclass
class LoadReportEvent(TraceEvent):
    """The balancer ingested one LLA report."""

    TYPE = "load_report"

    server: str
    load_ratio: float
    cpu_utilization: float
    channel_count: int


@dataclass
class LoadSnapshotEvent(TraceEvent):
    """One balancer evaluation tick: window-averaged LR per active server."""

    TYPE = "load_snapshot"

    ratios: Dict[str, float]


@dataclass
class PlanGeneratedEvent(TraceEvent):
    """The balancer produced a new plan version."""

    TYPE = "plan_generated"

    version: int
    channels_changed: Tuple[str, ...]
    decommissioned: Tuple[str, ...]
    spawn_requested: bool


@dataclass
class PlanPushedEvent(TraceEvent):
    TYPE = "plan_pushed"

    version: int
    recipients: Tuple[str, ...]


@dataclass
class MigrationStartEvent(TraceEvent):
    """One channel's mapping changed in a new plan."""

    TYPE = "migration_start"

    version: int
    channel: str
    from_servers: Tuple[str, ...]
    to_servers: Tuple[str, ...]
    mode: str


@dataclass
class MigrationSettledEvent(TraceEvent):
    """An old server drained: no unreconciled subscriber remains on it."""

    TYPE = "migration_settled"

    channel: str
    server: str


@dataclass
class SpawnRequestEvent(TraceEvent):
    TYPE = "spawn_request"


@dataclass
class ServerReadyEvent(TraceEvent):
    TYPE = "server_ready"

    server: str


@dataclass
class DecommissionEvent(TraceEvent):
    TYPE = "decommission"

    server: str


@dataclass
class PlanAppliedEvent(TraceEvent):
    """A dispatcher adopted a pushed plan version."""

    TYPE = "plan_applied"

    node: str
    version: int


@dataclass
class SwitchNoticeEvent(TraceEvent):
    """A dispatcher published a switch notice to migrate subscribers."""

    TYPE = "switch_notice"

    server: str
    channel: str
    version: int


# ----------------------------------------------------------------------
# Fault-injection & recovery events (repro.faults subsystem)
# ----------------------------------------------------------------------
@dataclass
class ServerCrashEvent(TraceEvent):
    """A pub/sub server (and its co-located LLA/dispatcher) hard-crashed."""

    TYPE = "server_crash"

    server: str


@dataclass
class ServerRestartEvent(TraceEvent):
    """A crashed server was restarted (fresh state, same node id)."""

    TYPE = "server_restart"

    server: str


@dataclass
class PartitionEvent(TraceEvent):
    """A network partition was injected between two node groups."""

    TYPE = "partition"

    a: str
    b: str


@dataclass
class PartitionHealedEvent(TraceEvent):
    TYPE = "partition_healed"

    a: str
    b: str


@dataclass
class LinkFaultEvent(TraceEvent):
    """Loss/jitter injected on (or cleared from, when both are 0) a link."""

    TYPE = "link_fault"

    a: str
    b: str
    loss: float
    jitter_s: float


@dataclass
class LlaStallEvent(TraceEvent):
    """An LLA's report stream was stalled (or resumed, stalled=False)."""

    TYPE = "lla_stall"

    server: str
    stalled: bool


@dataclass
class ServerSuspectEvent(TraceEvent):
    """The balancer's heartbeat monitor suspects a silent server."""

    TYPE = "server_suspect"

    server: str
    silence_s: float


@dataclass
class ServerFailureConfirmedEvent(TraceEvent):
    """The suspicion window elapsed: the server is considered dead."""

    TYPE = "server_failure_confirmed"

    server: str
    silence_s: float


@dataclass
class ServerResurrectedEvent(TraceEvent):
    """A confirmed-failed server resumed reporting and was re-admitted."""

    TYPE = "server_resurrected"

    server: str


@dataclass
class PlanRepairStartEvent(TraceEvent):
    """The balancer begins re-homing a dead server's channels."""

    TYPE = "plan_repair_start"

    server: str
    channels: Tuple[str, ...]


@dataclass
class PlanRepairDoneEvent(TraceEvent):
    """The repair plan was generated and pushed to all live dispatchers."""

    TYPE = "plan_repair_done"

    server: str
    version: int


@dataclass
class ClientFailoverEvent(TraceEvent):
    """A client declared a server dead and began failing over."""

    TYPE = "client_failover"

    client: str
    server: str
    channels: Tuple[str, ...]


@dataclass
class ClientReconnectEvent(TraceEvent):
    """A recovering client re-established a subscription (acked)."""

    TYPE = "client_reconnect"

    client: str
    channel: str
    servers: Tuple[str, ...]
    attempts: int


# ----------------------------------------------------------------------
# Reliable-delivery events (schema 3, repro.core.reliability)
# ----------------------------------------------------------------------
@dataclass
class ReplayEvent(TraceEvent):
    """A broker replayed a cached sequence range to one client."""

    TYPE = "replay"

    server: str
    channel: str
    client: str
    epoch: int
    from_seq: int
    to_seq: int
    messages: int
    bytes: int


@dataclass
class ReplayGapEvent(TraceEvent):
    """Cache eviction made part of a requested replay range unrecoverable."""

    TYPE = "gap_unrecoverable"

    server: str
    channel: str
    client: str
    epoch: int
    from_seq: int
    to_seq: int


@dataclass
class CausalTimeoutEvent(TraceEvent):
    """A parked out-of-order delivery hit the causal park timeout and the
    channel was force-flushed in arrival order."""

    TYPE = "causal_timeout"

    client: str
    channel: str
    flushed: int


# ----------------------------------------------------------------------
# Live SLA monitor events (schema 3, repro.obs.sla)
# ----------------------------------------------------------------------
@dataclass
class SlaViolationStartEvent(TraceEvent):
    """A scope's windowed delivery-latency quantile crossed the threshold."""

    TYPE = "sla_violation_start"

    scope: str  #: "overall", "channel:<class>" or "server:<id>"
    quantile: float
    threshold_s: float
    value_s: float
    window_count: int


@dataclass
class SlaViolationEndEvent(TraceEvent):
    """The scope's windowed quantile dropped back under the threshold."""

    TYPE = "sla_violation_end"

    scope: str
    duration_s: float
    peak_s: float  #: worst windowed quantile value seen during the episode


@dataclass
class SlaWindowEvent(TraceEvent):
    """Periodic per-scope sliding-window latency stats (one per slice)."""

    TYPE = "sla_window"

    scope: str
    window_count: int
    p50_s: Optional[float]
    value_s: Optional[float]  #: the SLA quantile (p95 by default)
    max_s: Optional[float]
    violating: bool


# ----------------------------------------------------------------------
# Deterministic sim-profiler events (schema 3, repro.obs.profile)
# ----------------------------------------------------------------------
@dataclass
class ProfileEvent(TraceEvent):
    """End-of-run profiler snapshot: per-subsystem/site counts + sim time."""

    TYPE = "profile"

    data: Dict[str, Any] = field(default_factory=dict)


@dataclass
class MetricsEvent(TraceEvent):
    """A metrics-registry snapshot embedded in the trace (usually last)."""

    TYPE = "metrics"

    data: Dict[str, Any] = field(default_factory=dict)


#: type tag -> event class, for the JSONL loader.
EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    cls.TYPE: cls
    for cls in (
        PublishEvent,
        FanoutEvent,
        DeliveryEvent,
        SubscribeEvent,
        UnsubscribeEvent,
        PlanMissEvent,
        LoadReportEvent,
        LoadSnapshotEvent,
        PlanGeneratedEvent,
        PlanPushedEvent,
        MigrationStartEvent,
        MigrationSettledEvent,
        SpawnRequestEvent,
        ServerReadyEvent,
        DecommissionEvent,
        PlanAppliedEvent,
        SwitchNoticeEvent,
        ServerCrashEvent,
        ServerRestartEvent,
        PartitionEvent,
        PartitionHealedEvent,
        LinkFaultEvent,
        LlaStallEvent,
        ServerSuspectEvent,
        ServerFailureConfirmedEvent,
        ServerResurrectedEvent,
        PlanRepairStartEvent,
        PlanRepairDoneEvent,
        ClientFailoverEvent,
        ClientReconnectEvent,
        ReplayEvent,
        ReplayGapEvent,
        CausalTimeoutEvent,
        SlaViolationStartEvent,
        SlaViolationEndEvent,
        SlaWindowEvent,
        ProfileEvent,
        MetricsEvent,
    )
}


class Tracer:
    """Collects trace events and owns the shared metrics registry.

    One tracer is shared by every component of a cluster; experiments query
    ``tracer.events`` / ``tracer.metrics`` afterwards or export them with
    :mod:`repro.obs.export`.

    Three optional attachments extend the buffered default:

    * ``sink`` -- a :class:`repro.obs.sink.TraceSink` receiving every event
      as it is emitted.  When a sink is set, in-memory buffering defaults
      to *off* (``keep_events=False``) so multi-million-event runs hold
      O(sink chunk) events rather than the whole timeline; pass
      ``keep_events=True`` to tee (stream *and* buffer, e.g. for oracles).
    * observers -- live per-event callbacks (:meth:`add_observer`), used by
      the SLA monitor and the chaos recovery watcher.  Observers run after
      the event is recorded, so anything they emit re-entrantly lands
      after the triggering event in both buffered and streamed output.
    * ``profiler`` -- a :class:`repro.obs.profile.SimProfiler`; attached to
      the kernel by :meth:`attach_kernel` and fed by the message tap.
    """

    #: Hot paths check this before constructing any event.
    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        *,
        sink: Optional[Any] = None,
        keep_events: Optional[bool] = None,
        profiler: Optional[Any] = None,
    ) -> None:
        if keep_events is None:
            keep_events = sink is None
        if sink is None and not keep_events:
            raise ValueError("a tracer without a sink must keep events")
        self.events: List[TraceEvent] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sink = sink
        self.profiler = profiler
        #: Timestamp of the most recently emitted event (streaming-safe
        #: replacement for ``events[-1].t`` when buffering is off).
        self.last_t: float = 0.0
        self._keep = keep_events
        self._observers: List[Callable[[TraceEvent], None]] = []

    @property
    def events_kept(self) -> bool:
        """Whether emitted events are buffered in :attr:`events`."""
        return self._keep

    def add_observer(self, observer: Callable[[TraceEvent], None]) -> None:
        """Register a live per-event callback (runs on every emit)."""
        self._observers.append(observer)

    def emit(self, event: TraceEvent) -> None:
        if event.t > self.last_t:
            self.last_t = event.t
        if self._keep:
            self.events.append(event)
        sink = self.sink
        if sink is not None:
            sink.emit(event)
        for observer in self._observers:
            observer(event)

    def events_of(self, event_type: Type[TraceEvent]) -> List[TraceEvent]:
        return [e for e in self.events if type(e) is event_type]

    # ------------------------------------------------------------------
    # Taps (aggregate-only hooks for very hot paths)
    # ------------------------------------------------------------------
    def message_tap(self, src_id: str, dst_id: str, message: Any, size_bytes: int) -> None:
        """Per-message actor tap: counts sends without recording events."""
        metrics = self.metrics
        metrics.counter("messages_sent_total", node=src_id).inc()
        metrics.counter("bytes_sent_total", node=src_id).inc(size_bytes)
        profiler = self.profiler
        if profiler is not None:
            profiler.count_message(type(message).__name__, size_bytes)

    def attach_kernel(self, sim: Any) -> None:
        """Install the kernel hook tracking sim events and the clock."""
        events_total = self.metrics.counter("sim_events_total")
        clock = self.metrics.gauge("sim_clock_s")

        def hook(now: float, events_processed: int) -> None:
            events_total.inc()
            clock.set(now)

        sim.event_hook = hook
        if self.profiler is not None:
            sim.profiler = self.profiler


class NullTracer(Tracer):
    """Recording disabled: every hook is a no-op behind the flag check."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - guarded out
        pass

    def message_tap(self, src_id: str, dst_id: str, message: Any, size_bytes: int) -> None:
        pass  # pragma: no cover - never wired up

    def attach_kernel(self, sim: Any) -> None:
        pass


#: Shared default: components fall back to this when no tracer is wired in.
NULL_TRACER = NullTracer()
