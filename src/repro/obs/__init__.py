"""Observability: the flight recorder every component can emit into.

Six pieces:

* :mod:`repro.obs.trace` -- typed, timestamped trace events and the
  :class:`~repro.obs.trace.Tracer` / :class:`~repro.obs.trace.NullTracer`
  pair components emit through;
* :mod:`repro.obs.metrics` -- the label-aware counter / gauge / histogram
  registry shared through the tracer;
* :mod:`repro.obs.sink` -- bounded-memory streaming trace sinks (chunked
  JSONL, optional gzip and rotation), byte-equivalent to buffered export;
* :mod:`repro.obs.sla` -- the live sliding-window SLA monitor;
* :mod:`repro.obs.profile` -- the deterministic sim-profiler (event counts
  and virtual-time attribution, never wall clock);
* :mod:`repro.obs.export` + :mod:`repro.obs.cli` -- JSONL export with a
  stable schema and the ``python -m repro.obs summary|sla|profile``
  analysis commands.
"""

from repro.obs.export import (
    dump_tracer,
    iter_trace,
    read_trace,
    read_trace_segments,
    write_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import SimProfiler, render_profile
from repro.obs.sink import StreamingJsonlSink, TraceSink
from repro.obs.sla import SlaConfig, SlaMonitor, SlidingHistogram
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, channel_class

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SimProfiler",
    "SlaConfig",
    "SlaMonitor",
    "SlidingHistogram",
    "StreamingJsonlSink",
    "TraceSink",
    "Tracer",
    "channel_class",
    "dump_tracer",
    "iter_trace",
    "read_trace",
    "read_trace_segments",
    "render_profile",
    "write_trace",
]
