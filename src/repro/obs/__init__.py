"""Observability: the flight recorder every component can emit into.

Three pieces:

* :mod:`repro.obs.trace` -- typed, timestamped trace events and the
  :class:`~repro.obs.trace.Tracer` / :class:`~repro.obs.trace.NullTracer`
  pair components emit through;
* :mod:`repro.obs.metrics` -- the label-aware counter / gauge / histogram
  registry shared through the tracer;
* :mod:`repro.obs.export` + :mod:`repro.obs.cli` -- JSONL export with a
  stable schema and the ``python -m repro.obs summary`` analysis command.
"""

from repro.obs.export import dump_tracer, read_trace, write_trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, channel_class

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "channel_class",
    "dump_tracer",
    "read_trace",
    "write_trace",
]
