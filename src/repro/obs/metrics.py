"""Metrics registry: named counters, gauges and log-bucketed histograms.

The registry is the *aggregated* half of the flight recorder (the event
trace in :mod:`repro.obs.trace` is the other).  Instruments are created
lazily on first use and identified by a name plus an optional label set::

    registry.counter("deliveries_total", server="pub1").inc()
    registry.histogram("delivery_latency_s", channel_class="tile").observe(0.012)

Histograms are HDR-style: a fixed array of geometrically growing buckets,
so memory stays constant no matter how many samples are recorded and
percentile queries are deterministic (no reservoir sampling).  The relative
error of a percentile estimate is bounded by the bucket growth factor.

:meth:`MetricsRegistry.snapshot` renders everything into plain dicts with
stable, sorted ``name{label=value,...}`` keys -- suitable for JSON export,
assertions in tests, and per-sim-second sampling by the experiment harness.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Canonical instrument key: (name, sorted (label, value) pairs).
InstrumentKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, object]) -> InstrumentKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_key(key: InstrumentKey) -> str:
    """Render ``(name, labels)`` as ``name{k=v,...}`` (no braces unlabeled)."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up: {amount!r}")
        self.value += amount


class Gauge:
    """A value that can go up and down (set to the latest observation)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-memory log-bucketed histogram.

    Bucket ``i >= 1`` covers ``(min_value * factor**(i-1), min_value * factor**i]``;
    bucket 0 catches everything at or below ``min_value``; the last bucket
    absorbs overflow.  With the defaults (1 microsecond lower bound, factor
    2, 64 buckets) the range extends far past any simulated latency while
    keeping percentile estimates within 2x -- tightened further by clamping
    to the exact observed min/max.
    """

    __slots__ = ("_counts", "count", "sum", "min", "max", "_min_value", "_inv_log_factor", "_factor")

    DEFAULT_MIN = 1e-6
    DEFAULT_FACTOR = 2.0
    DEFAULT_BUCKETS = 64
    #: Quantiles reported by :meth:`to_dict` (the paper's SLA is a p95
    #: latency threshold, so p95 is part of the default set).
    DEFAULT_QUANTILES: Tuple[float, ...] = (50.0, 90.0, 95.0, 99.0)

    def __init__(
        self,
        min_value: float = DEFAULT_MIN,
        factor: float = DEFAULT_FACTOR,
        buckets: int = DEFAULT_BUCKETS,
    ):
        if min_value <= 0 or factor <= 1 or buckets < 2:
            raise ValueError("need min_value > 0, factor > 1, buckets >= 2")
        self._counts: List[int] = [0] * buckets
        self.count: int = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._min_value = min_value
        self._factor = factor
        self._inv_log_factor = 1.0 / math.log(factor)

    def reset(self) -> None:
        """Forget every sample, keeping the bucket layout."""
        counts = self._counts
        for index in range(len(counts)):
            counts[index] = 0
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def layout(self) -> Tuple[float, float, int]:
        """``(min_value, factor, buckets)`` -- mergeable iff layouts match."""
        return self._min_value, self._factor, len(self._counts)

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram (same layout only)."""
        if other.layout() != self.layout():
            raise ValueError(
                f"histogram layouts differ: {self.layout()} vs {other.layout()}"
            )
        counts = self._counts
        for index, bucket_count in enumerate(other._counts):
            counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def observe(self, value: float) -> None:
        if value <= self._min_value:
            index = 0
        else:
            index = 1 + int(math.log(value / self._min_value) * self._inv_log_factor)
            last = len(self._counts) - 1
            if index > last:
                index = last
        self._counts[index] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Estimated value at percentile ``q`` (0..100)."""
        if not self.count:
            return None
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q!r}")
        # The extremes are tracked exactly; don't pay the bucket error there.
        if q == 0:
            return self.min
        if q == 100:
            return self.max
        rank = q / 100.0 * (self.count - 1)
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative > rank:
                estimate = self._bucket_midpoint(index)
                # Exact extremes beat the bucket estimate at the edges.
                assert self.min is not None and self.max is not None
                return min(self.max, max(self.min, estimate))
        return self.max  # pragma: no cover - unreachable (counts sum to count)

    def _bucket_midpoint(self, index: int) -> float:
        if index == 0:
            return self._min_value
        lower = self._min_value * self._factor ** (index - 1)
        return lower * math.sqrt(self._factor)

    def to_dict(self, quantiles: Optional[Sequence[float]] = None) -> Dict[str, object]:
        if quantiles is None:
            quantiles = self.DEFAULT_QUANTILES
        out: Dict[str, object] = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
        }
        for q in quantiles:
            out[quantile_label(q)] = self.percentile(q)
        return out


def quantile_label(q: float) -> str:
    """``50.0 -> "p50"``, ``99.9 -> "p99.9"`` -- stable snapshot keys."""
    text = f"{q:g}"
    return f"p{text}"


def merge_histograms(histograms: Iterable[Histogram]) -> Histogram:
    """Aggregate same-layout histograms into a fresh one.

    Used by the sliding-window SLA view: each window slice is one
    :class:`Histogram`, and a windowed percentile is a percentile of the
    merged slices.
    """
    out: Optional[Histogram] = None
    for h in histograms:
        if out is None:
            out = Histogram(*h.layout())
        out.merge(h)
    if out is None:
        raise ValueError("cannot merge zero histograms")
    return out


class MetricsRegistry:
    """Lazily created, label-aware instruments plus on-demand snapshots."""

    def __init__(self, quantiles: Optional[Sequence[float]] = None) -> None:
        self._counters: Dict[InstrumentKey, Counter] = {}
        self._gauges: Dict[InstrumentKey, Gauge] = {}
        self._histograms: Dict[InstrumentKey, Histogram] = {}
        self._kinds: Dict[str, str] = {}
        #: Quantile list rendered into histogram snapshots.
        self.quantiles: Tuple[float, ...] = (
            tuple(quantiles) if quantiles is not None else Histogram.DEFAULT_QUANTILES
        )

    # ------------------------------------------------------------------
    # Instrument access (get-or-create)
    # ------------------------------------------------------------------
    def _check_kind(self, name: str, kind: str) -> None:
        existing = self._kinds.setdefault(name, kind)
        if existing != kind:
            raise ValueError(f"metric {name!r} already registered as a {existing}")

    def counter(self, name: str, **labels: object) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            self._check_kind(name, "counter")
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            self._check_kind(name, "gauge")
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        *,
        min_value: float = Histogram.DEFAULT_MIN,
        factor: float = Histogram.DEFAULT_FACTOR,
        buckets: int = Histogram.DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            self._check_kind(name, "histogram")
            instrument = self._histograms[key] = Histogram(min_value, factor, buckets)
        return instrument

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Everything, as plain JSON-serializable dicts with stable keys."""
        return {
            "counters": {
                format_key(k): c.value for k, c in sorted(self._counters.items())
            },
            "gauges": {format_key(k): g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                format_key(k): h.to_dict(self.quantiles)
                for k, h in sorted(self._histograms.items())
            },
        }

    def counter_value(self, name: str, **labels: object) -> float:
        instrument = self._counters.get(_key(name, labels))
        return instrument.value if instrument is not None else 0.0

    def counter_total(self, name: str) -> float:
        """Sum of one counter family over all label sets."""
        return sum(c.value for (n, __), c in self._counters.items() if n == name)
