"""The per-node dispatcher: lazy, loss-free reconfiguration (section IV).

One dispatcher runs next to every pub/sub server.  It holds the full
current global plan (pushed reliably by the load balancer) and watches the
local server's traffic over loopback -- publications, subscriptions and
unsubscriptions -- to implement the transition protocol:

* **Wrong server** (Fig. 3a): a publication arriving at a server not in the
  channel's mapping is forwarded to the correct server(s); the publisher is
  redirected with a :class:`~repro.core.messages.MappingNotice`; local
  subscribers are asked to move via a :class:`SwitchNotice` published on
  the channel itself, together with the first publication after the change.
* **Correct server** (Fig. 3b): while old servers still hold subscribers
  for a moved channel, every publication is also forwarded to them.
* **Stale publishers** under *all-publishers* replication published to too
  few servers; the dispatcher completes the fan-out and redirects them.
* **Termination**: an old server's dispatcher announces
  :class:`NoMoreSubscribers` the moment its last local subscriber leaves,
  and every transition expires after the plan-entry timeout.  As a
  robustness addition, a draining server with subscribers remaining at
  expiry publishes one final switch notice so no subscriber is stranded on
  a channel that went quiet during the window.

The dispatcher never modifies the pub/sub server -- it only uses loopback
subscriptions, plain publishes and direct cloud-internal sends, exactly the
constraint the paper works under ("ready-to-use pub/sub servers that cannot
be modified").
"""

from __future__ import annotations

from random import Random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Set, Tuple

from repro.broker.commands import PublishCmd
from repro.broker.server import PubSubServer
from repro.core.messages import (
    AppEnvelope,
    MappingNotice,
    NoMoreSubscribers,
    PlanPush,
    SwitchNotice,
)
from repro.core.plan import ChannelMapping, Plan, ReplicationMode
from repro.obs.trace import (
    NULL_TRACER,
    PlanAppliedEvent,
    SwitchNoticeEvent,
    Tracer,
)
from repro.sim.actor import Actor
from repro.sim.kernel import Simulator


def dispatcher_id(server_id: str) -> str:
    """Deterministic dispatcher node id for a given server."""
    return f"dispatcher@{server_id}"


@dataclass
class _Watch:
    """Transition state for one channel whose mapping just changed."""

    version: int
    mapping: ChannelMapping
    #: True when this server was in the old mapping but not the new one.
    draining: bool
    #: local subscribers that held the channel under the *old* mapping and
    #: have not yet confirmed the new one (by re-subscribing with the new
    #: version, unsubscribing, or disconnecting).  Once empty, peers are
    #: told to stop forwarding toward this server.
    stale_subscribers: Set[str] = field(default_factory=set)
    #: whether NoMoreSubscribers was already announced for this watch
    announced: bool = False


@dataclass
class _RepairBuffer:
    """Publications parked while failed-over subscribers resubscribe.

    Created when a repair plan re-homes a dead server's channel onto this
    server; flushed (republished locally) on the first subscribe so clients
    racing their resubscribe against in-flight traffic do not miss the
    window.  Bounded in both time and size -- overflow drops the oldest
    message, keeping the documented at-most-once semantics during repair.
    """

    deadline: float
    messages: Deque[Tuple[AppEnvelope, int]]


class Dispatcher(Actor):
    """Reconfiguration agent co-located with one pub/sub server."""

    def __init__(
        self,
        sim: Simulator,
        server: PubSubServer,
        initial_plan: Plan,
        rng: Random,
        *,
        plan_entry_timeout_s: float = 30.0,
        repair_buffer_s: float = 5.0,
        repair_buffer_max_msgs: int = 64,
        repair_replay_enabled: bool = True,
        tracer: Tracer = NULL_TRACER,
    ):
        super().__init__(sim, dispatcher_id(server.node_id), is_infra=True)
        self.server = server
        self.plan = initial_plan
        self._rng = rng
        self._timeout = plan_entry_timeout_s
        self._buffer_window = repair_buffer_s
        self._buffer_max = repair_buffer_max_msgs
        #: test-only kill switch (see DynamothConfig.repair_replay_enabled)
        self.repair_replay_enabled = repair_replay_enabled
        self._tracer = tracer

        self._watch: Dict[str, _Watch] = {}
        #: the balancer node id, learned from plan pushes (drain
        #: announcements are copied there so the balancer's own straggler
        #: tracker stops re-seeding drained entries into future pushes)
        self._balancer_id = None
        #: straggler registry: channel -> {server: forwarding deadline}.
        #: A server appears here if a recent plan change made it an *old*
        #: server for the channel -- it may still hold subscribers that
        #: have not reconciled.  Every dispatcher maintains this from the
        #: full plan stream, so forwarding survives *chained* migrations
        #: (pub1 -> pub2 -> pub3 while a subscriber is still stuck behind
        #: pub1's congested downlink).  Entries are dropped on a
        #: NoMoreSubscribers broadcast or when the deadline passes.
        self._stragglers: Dict[str, Dict[str, float]] = {}
        #: channel -> plan version for which a switch notice went out
        self._switch_sent: Dict[str, int] = {}
        #: resolved-mapping cache; cleared on every plan push (avoids a
        #: ring hash per observed publication)
        self._mapping_cache: Dict[str, ChannelMapping] = {}
        self._msg_counter = 0
        #: servers the balancer confirmed dead (from plan pushes): no
        #: forwarding toward them, and CH fallbacks resolve past them
        self._failed: Set[str] = set()
        #: channel -> parked publications awaiting a post-repair subscribe
        self._repair_buffers: Dict[str, _RepairBuffer] = {}

        # --- counters ---
        self.forwarded_publications = 0
        self.redirects_sent = 0
        self.switch_notices_sent = 0
        self.plans_received = 0
        self.buffered_publications = 0
        self.replayed_publications = 0

        server.add_observer(self._on_publication)
        server.add_subscribe_listener(self._on_subscribe)
        server.add_unsubscribe_listener(self._on_unsubscribe)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _mapping(self, channel: str) -> ChannelMapping:
        cached = self._mapping_cache.get(channel)
        if cached is None:
            cached = self.plan.mapping(channel)
            if (
                cached.version == 0
                and self._failed
                and any(s in self._failed for s in cached.servers)
            ):
                # CH fallback landing on a dead server: walk the ring past
                # every confirmed-failed server.  (Explicitly mapped
                # channels are re-homed by the balancer's repair plan
                # instead.)
                cached = ChannelMapping(
                    ReplicationMode.SINGLE,
                    (self.plan.ring.lookup(channel, exclude=self._failed),),
                    0,
                )
            self._mapping_cache[channel] = cached
        return cached

    def _straggler_targets(self, channel: str, mapping: ChannelMapping) -> list:
        """Straggler servers that still need forwarded copies (pruned)."""
        registry = self._stragglers.get(channel)
        if not registry:
            return []
        now = self.sim.now
        my_id = self.server.node_id
        targets = []
        for server, deadline in list(registry.items()):
            if deadline <= now or server in self._failed:
                del registry[server]
                continue
            if server == my_id:
                continue
            if (
                server in mapping.servers
                and mapping.mode is not ReplicationMode.ALL_SUBSCRIBERS
            ):
                # a mapping member receives the traffic directly
                continue
            targets.append(server)
        if not registry:
            del self._stragglers[channel]
        return targets

    def _prune_failed_stragglers(self) -> None:
        """Forwarding toward a confirmed-dead server is wasted egress."""
        for channel in list(self._stragglers):
            registry = self._stragglers[channel]
            for server in list(registry):
                if server in self._failed:
                    del registry[server]
            if not registry:
                del self._stragglers[channel]

    def _forward_targets(self, mapping: ChannelMapping) -> tuple:
        """Servers a misrouted publication must be forwarded to."""
        if mapping.mode is ReplicationMode.ALL_PUBLISHERS:
            return mapping.servers
        if mapping.mode is ReplicationMode.ALL_SUBSCRIBERS:
            return (self._rng.choice(mapping.servers),)
        return mapping.servers

    def _forward(self, channel: str, envelope: AppEnvelope, payload_size: int, dst: str) -> None:
        """Ship a publication to another pub/sub server inside the cloud."""
        forwarded = envelope.as_forwarded()
        self.send(dst, PublishCmd(channel, forwarded, payload_size), payload_size)
        self.forwarded_publications += 1
        if self._tracer.enabled:
            self._tracer.metrics.counter(
                "forwarded_publications_total", server=self.server.node_id
            ).inc()

    def _redirect(self, client_id: str, channel: str, mapping: ChannelMapping) -> None:
        self.send(client_id, MappingNotice(channel, mapping), MappingNotice.WIRE_SIZE)
        self.redirects_sent += 1
        if self._tracer.enabled:
            self._tracer.metrics.counter(
                "redirects_total", server=self.server.node_id
            ).inc()

    def _maybe_switch_notice(self, channel: str, mapping: ChannelMapping) -> None:
        """Publish a switch notice locally, once per (channel, version)."""
        if self._switch_sent.get(channel, -1) >= mapping.version:
            return
        if self.server.subscriber_count(channel) == 0:
            return
        self._switch_sent[channel] = mapping.version
        self._msg_counter += 1
        envelope = AppEnvelope(
            msg_id=f"{self.node_id}:{self._msg_counter}",
            sender=self.node_id,
            body=SwitchNotice(channel, mapping),
            plan_version=mapping.version,
            sent_at=self.sim.now,
        )
        # Control traffic: the reliability layer must not sequence it.
        cmd = PublishCmd(channel, envelope, SwitchNotice.WIRE_SIZE, control=True)
        self.send(self.server.node_id, cmd, SwitchNotice.WIRE_SIZE)
        self.switch_notices_sent += 1
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                SwitchNoticeEvent(
                    self.sim.now, self.server.node_id, channel, mapping.version
                )
            )

    # ------------------------------------------------------------------
    # Plan pushes
    # ------------------------------------------------------------------
    def receive(self, message: Any, src_id: str) -> None:
        if isinstance(message, PlanPush):
            self._balancer_id = src_id
            failed = set(message.failed_servers)
            if failed != self._failed:
                # Applied even when the plan itself is stale or a duplicate
                # (resurrections re-push the same version): routing must
                # stop targeting dead servers immediately.
                self._failed = failed
                self._mapping_cache.clear()
                self._prune_failed_stragglers()
            self._handle_plan(message.plan, message.stragglers)
        elif isinstance(message, NoMoreSubscribers):
            registry = self._stragglers.get(message.channel)
            if registry is not None:
                registry.pop(message.server_id, None)
                if not registry:
                    del self._stragglers[message.channel]
        else:
            raise TypeError(f"{self.node_id}: unexpected message {type(message).__name__}")

    def _handle_plan(self, new_plan: Plan, pushed_stragglers=None) -> None:
        if new_plan.version <= self.plan.version:
            return  # stale or duplicate push
        changed = self.plan.diff(new_plan)
        self.plan = new_plan
        self._mapping_cache.clear()
        self.plans_received += 1
        if self._tracer.enabled:
            self._tracer.emit(
                PlanAppliedEvent(self.sim.now, self.node_id, new_plan.version)
            )

        if pushed_stragglers:
            # Merge the balancer's plan-history view: it covers moves that
            # happened before this dispatcher existed (chained migrations).
            my = self.server.node_id
            for channel, entries in pushed_stragglers.items():
                registry = self._stragglers.setdefault(channel, {})
                for server, deadline in entries.items():
                    if server != my and registry.get(server, 0.0) < deadline:
                        registry[server] = deadline

        my_id = self.server.node_id
        now = self.sim.now
        for channel, (old, new) in changed.items():  # diff order is sorted
            # Every dispatcher records the displaced servers as potential
            # stragglers, regardless of its own involvement: a later plan
            # change may put this server into the channel's mapping, and
            # it must then keep forwarding toward *all* earlier homes that
            # still hold unreconciled subscribers (chained migrations).
            # Under all-subscribers, old servers that stay in the replica
            # set are stragglers too -- a subscriber holding only the old
            # replica misses publications landing on the new ones; under
            # the other modes publishers cover shared servers directly.
            sources = set(old.servers)
            if new.mode is not ReplicationMode.ALL_SUBSCRIBERS:
                sources -= set(new.servers)
            if sources:
                registry = self._stragglers.setdefault(channel, {})
                deadline = now + self._timeout
                for server in sorted(sources):
                    if registry.get(server, 0.0) < deadline:
                        registry[server] = deadline

            if (
                self._buffer_window > 0.0
                and self._buffer_max > 0
                and my_id in new.servers
                and set(old.servers) & self._failed
            ):
                # This server inherited the channel from a dead one: park
                # incoming publications until a failed-over subscriber's
                # resubscribe lands, then replay them (at-most-once).
                self._repair_buffers[channel] = _RepairBuffer(
                    deadline=now + self._buffer_window,
                    messages=deque(maxlen=self._buffer_max),
                )

            involved = my_id in old.servers or my_id in new.servers
            if not involved:
                continue
            drained = set(old.servers) - set(new.servers)
            draining = my_id in drained
            stale = (
                set(self.server.subscribers(channel))
                if my_id in old.servers
                else set()
            )
            watch = _Watch(
                version=new.version,
                mapping=new,
                draining=draining,
                stale_subscribers=stale,
            )
            self._watch[channel] = watch
            self.sim.schedule(self._timeout, self._expire_watch, channel, new.version)
            if my_id in old.servers and not stale:
                # Nothing to reconcile here: tell the peers at once.
                self._announce_drained(channel, watch)

    def _announce_drained(self, channel: str, watch: _Watch) -> None:
        """Tell *all* dispatchers no unreconciled subscriber remains here.

        Broadcast (rather than new-mapping-only) because under chained
        migrations the servers currently forwarding toward us may not be
        in the mapping we were displaced by.
        """
        if watch.announced:
            return
        watch.announced = True
        notice = NoMoreSubscribers(channel, self.server.node_id)
        for server in self.plan.active_servers:
            if server != self.server.node_id:
                self.send(dispatcher_id(server), notice, NoMoreSubscribers.WIRE_SIZE)
        if self._balancer_id is not None:
            self.send(self._balancer_id, notice, NoMoreSubscribers.WIRE_SIZE)

    def _expire_watch(self, channel: str, version: int) -> None:
        if not self.alive:
            return  # this dispatcher's node crashed after scheduling
        watch = self._watch.get(channel)
        if watch is None or watch.version != version:
            return  # superseded by a newer plan change
        if watch.draining and self.server.subscriber_count(channel) > 0:
            # Final nudge: the channel went quiet during the whole window,
            # so no publication carried the switch notice.  Emit one now so
            # the remaining subscribers still move over.
            self._switch_sent.pop(channel, None)
            self._maybe_switch_notice(channel, watch.mapping)
        del self._watch[channel]

    # ------------------------------------------------------------------
    # Local traffic observation (loopback)
    # ------------------------------------------------------------------
    def _on_publication(
        self, channel: str, publisher_id: str, payload: Any, payload_size: int
    ) -> None:
        if not isinstance(payload, AppEnvelope):
            return
        envelope = payload
        if isinstance(envelope.body, SwitchNotice):
            return  # our own (or a peer dispatcher's) control publication

        watch = self._watch.get(channel)
        mapping = self._mapping(channel)
        if watch is not None:
            self._maybe_switch_notice(channel, mapping)
        if self._repair_buffers and self.server.node_id in mapping.servers:
            self._buffer_for_repair(channel, envelope, payload_size)
        if envelope.forwarded:
            return  # a peer dispatcher already handled routing

        my_id = self.server.node_id
        if my_id not in mapping.servers:
            # Wrong server: Initialization / Publishing-on-old-server cases.
            self._redirect(envelope.sender, channel, mapping)
            self._maybe_switch_notice(channel, mapping)
            targets = set(self._forward_targets(mapping))
            # ... and cover straggler servers the correct servers may not
            # know about (their registry merge could still be in flight).
            targets.update(self._straggler_targets(channel, mapping))
            for target in sorted(targets):
                self._forward(channel, envelope, payload_size, target)
            return

        # Correct server.
        if envelope.plan_version < mapping.version:
            self._redirect(envelope.sender, channel, mapping)
            if mapping.mode is ReplicationMode.ALL_PUBLISHERS:
                # A stale publisher likely missed the other replicas; the
                # subscriber-side dedup absorbs any double send.
                for server in mapping.servers:
                    if server != my_id:
                        self._forward(channel, envelope, payload_size, server)
        for server in self._straggler_targets(channel, mapping):
            self._forward(channel, envelope, payload_size, server)

    def _buffer_for_repair(self, channel: str, envelope: AppEnvelope, payload_size: int) -> None:
        buffer = self._repair_buffers.get(channel)
        if buffer is None:
            return
        if buffer.deadline <= self.sim.now:
            del self._repair_buffers[channel]
            return
        buffer.messages.append((envelope, payload_size))
        self.buffered_publications += 1

    def _flush_repair_buffer(self, channel: str) -> None:
        """Replay parked publications now that a subscriber (re)attached.

        The buffer is popped *before* republishing, so the replayed copies
        (which come back through ``_on_publication`` as forwarded traffic)
        cannot re-enter it.  Subscribers already attached dedup the replays
        by message id.
        """
        buffer = self._repair_buffers.pop(channel, None)
        if buffer is None:
            return
        if buffer.deadline <= self.sim.now:
            return
        if not self.repair_replay_enabled:
            return  # test-only breakage: park the messages and drop them
        for envelope, size in buffer.messages:
            self.send(
                self.server.node_id,
                PublishCmd(channel, envelope.as_forwarded(), size),
                size,
            )
            self.replayed_publications += 1
        if self._tracer.enabled and buffer.messages:
            self._tracer.metrics.counter(
                "repair_replays_total", server=self.server.node_id
            ).inc(len(buffer.messages))

    def _on_subscribe(self, channel: str, client_id: str, plan_version: int) -> None:
        if self._repair_buffers:
            self._flush_repair_buffer(channel)
        watch = self._watch.get(channel)
        if watch is not None and plan_version >= watch.version:
            # The client confirmed the new mapping; it is reconciled.
            watch.stale_subscribers.discard(client_id)
            if not watch.stale_subscribers:
                self._announce_drained(channel, watch)
        mapping = self._mapping(channel)
        if self.server.node_id not in mapping.servers:
            # Client subscribed on an incorrect server (section IV-A.4).
            self._redirect(client_id, channel, mapping)
        elif plan_version < mapping.version:
            # Valid server, stale plan: under replication the client must
            # still learn the full mapping -- an all-subscribers subscriber
            # has to cover every replica, and a CH-fallback subscriber of
            # an all-publishers channel would otherwise pile onto the
            # ring-determined server instead of picking a random replica.
            self._redirect(client_id, channel, mapping)

    def _on_unsubscribe(self, channel: str, client_id: str) -> None:
        watch = self._watch.get(channel)
        if watch is None:
            return
        watch.stale_subscribers.discard(client_id)
        if not watch.stale_subscribers:
            self._announce_drained(channel, watch)
