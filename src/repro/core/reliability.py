"""Opt-in reliable-delivery layer: sequencing, replay cache, gap tracking.

The repro's base semantics are at-most-once with a repair window
(DESIGN.md 6d).  This module upgrades that, per run, to the delivery
tier selected by :attr:`~repro.core.config.DynamothConfig.delivery_tier`:

* ``at_most_once`` -- the layer is entirely inert (no stamping, no cache,
  zero wire-format change);
* ``at_least_once`` -- the owning broker stamps every application
  publication on a channel with a per-``(server, channel, epoch)``
  monotonic sequence number and keeps a bounded per-channel replay cache
  (count + byte budget, deterministic oldest-first eviction).  Clients
  track the per-stream high-water mark plus missing sequence numbers and
  request replay of the gap -- on redelivery after a killed connection,
  and on resubscribe after a crash/partition failover (the resume point
  rides the SUBSCRIBE command, MigratoryData-style);
* ``exactly_once`` -- at-least-once plus the client's existing message-id
  dedup, and replayed-but-already-seen sequence numbers are dropped
  *before* the dedup bookkeeping so replay can never recycle the window.

Epochs make broker restarts explicit: a restarted server id starts a new
epoch (its boot count, threaded in by the cluster), so a fresh seq=1
stream is never mistaken for a regression and stale resume points are
ignored rather than replayed from the wrong stream.

The optional causal mode (``causal_order=True``, VCube-PS-style per-topic
causal broadcast) adds publisher metadata to every envelope: a per-sender
FIFO counter and a dependency snapshot of the highest publication the
sender had *itself delivered* from every other publisher on the channel.
The client parks deliveries whose dependencies have not arrived and
releases them in causal order, with a park timeout that force-flushes (in
arrival order) so a genuinely lost dependency cannot wedge the channel --
the flush is surfaced as a ``causal_timeout`` trace event and excused by
the causal-order oracle.

Everything here is deterministic: caches evict by insertion order, all
iteration is over ordered structures, and the layer draws from no RNG.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Set, Tuple

from repro.core.config import DELIVERY_TIERS, DynamothConfig

__all__ = [
    "DELIVERY_TIERS",
    "ReliabilityConfig",
    "CacheEntry",
    "ReplaySlice",
    "ChannelReplayCache",
    "BrokerReliability",
    "ObserveOutcome",
    "ClientReliability",
    "reliability_config_from",
]


@dataclass(frozen=True, slots=True)
class ReliabilityConfig:
    """Immutable snapshot of the reliability knobs one cluster runs with."""

    delivery_tier: str = "at_most_once"
    causal_order: bool = False
    cache_max_msgs: int = 256
    cache_max_bytes: int = 262144
    replay_retry_cooldown_s: float = 1.0
    causal_park_timeout_s: float = 2.0
    #: test-only kill switch: with replay disabled the broker still stamps
    #: sequence numbers but ignores every replay/resume request *silently*
    #: (no gap notices either) -- the loss the gap-free oracle must catch.
    replay_enabled: bool = True

    @property
    def reliable(self) -> bool:
        return self.delivery_tier != "at_most_once"

    @property
    def exactly_once(self) -> bool:
        return self.delivery_tier == "exactly_once"

    @property
    def replay_active(self) -> bool:
        """Whether sequencing/caching runs at all.

        A zero count *or* byte budget degrades the tier to plain
        at-most-once by construction: nothing is stamped, so the wire
        traffic is byte-identical to an ``at_most_once`` run.
        """
        return self.reliable and self.cache_max_msgs > 0 and self.cache_max_bytes > 0


@dataclass(frozen=True, slots=True)
class CacheEntry:
    """One cached publication, replayable by sequence number."""

    seq: int
    payload: object
    payload_size: int
    wire_size: int


@dataclass(frozen=True, slots=True)
class ReplaySlice:
    """The broker's answer to one replay request.

    ``gap_through`` > 0 means sequence numbers ``<= gap_through`` inside
    the requested range were already evicted and are unrecoverable.
    """

    entries: Tuple[CacheEntry, ...] = ()
    gap_through: int = 0


class ChannelReplayCache:
    """Bounded FIFO of the newest publications on one channel.

    Eviction is deterministic: strictly oldest-first, applied whenever
    either the count or the byte budget is exceeded.  ``floor`` is the
    highest evicted (or never-cached) sequence number -- everything at or
    below it is gone for good.
    """

    __slots__ = ("entries", "bytes_used", "floor", "next_seq")

    def __init__(self) -> None:
        self.entries: Deque[CacheEntry] = deque()
        self.bytes_used = 0
        #: highest seq no longer replayable (0 = nothing lost yet)
        self.floor = 0
        #: next sequence number to stamp (1-based)
        self.next_seq = 1

    def stamp(self) -> int:
        seq = self.next_seq
        self.next_seq = seq + 1
        return seq

    def add(self, entry: CacheEntry, max_msgs: int, max_bytes: int) -> None:
        entries = self.entries
        entries.append(entry)
        self.bytes_used += entry.wire_size
        while entries and (len(entries) > max_msgs or self.bytes_used > max_bytes):
            evicted = entries.popleft()
            self.bytes_used -= evicted.wire_size
            self.floor = evicted.seq

    def slice_after(self, after_seq: int, up_to_seq: int) -> ReplaySlice:
        """Entries with ``after_seq < seq <= up_to_seq``, plus the evicted gap."""
        selected = tuple(
            e for e in self.entries if after_seq < e.seq <= up_to_seq
        )
        gap_through = self.floor if self.floor > after_seq else 0
        return ReplaySlice(selected, gap_through)


class BrokerReliability:
    """Per-broker sequencing + replay-cache state (one per server boot)."""

    __slots__ = ("config", "epoch", "_caches", "replayed_messages",
                 "replayed_bytes", "unrecoverable_gaps")

    def __init__(self, config: ReliabilityConfig, epoch: int) -> None:
        self.config = config
        #: boot count of this server id; restarts bump it so clients can
        #: tell a fresh stream from a sequence regression.
        self.epoch = epoch
        self._caches: Dict[str, ChannelReplayCache] = {}
        # --- counters (metrics / bench) ---
        self.replayed_messages = 0
        self.replayed_bytes = 0
        self.unrecoverable_gaps = 0

    def cache_for(self, channel: str) -> ChannelReplayCache:
        cache = self._caches.get(channel)
        if cache is None:
            cache = ChannelReplayCache()
            self._caches[channel] = cache
        return cache

    def stamp_and_cache(
        self, channel: str, payload: object, payload_size: int, wire_size: int
    ) -> int:
        """Assign the publication's seq and retain it for replay."""
        cache = self.cache_for(channel)
        seq = cache.stamp()
        cache.add(
            CacheEntry(seq, payload, payload_size, wire_size),
            self.config.cache_max_msgs,
            self.config.cache_max_bytes,
        )
        return seq

    def replay_slice(
        self, channel: str, epoch: int, after_seq: int, up_to_seq: int
    ) -> Optional[ReplaySlice]:
        """The entries to resend, or ``None`` when nothing applies.

        A request against another epoch targets a stream this boot never
        produced; replying would resend the wrong messages, so it is
        ignored (the client's stream state resets on the first delivery
        of the new epoch).
        """
        if not self.config.replay_enabled or epoch != self.epoch:
            return None
        cache = self._caches.get(channel)
        if cache is None:
            return None
        return cache.slice_after(after_seq, up_to_seq)


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ObserveOutcome:
    """What the client should do with one sequenced delivery."""

    #: deliver to the application (False = stale/duplicate seq, drop)
    deliver: bool
    #: (after_seq, up_to_seq) replay request to send, if any
    request: Optional[Tuple[int, int]] = None


class _Stream:
    """Client-side view of one (server, channel) sequence stream."""

    __slots__ = ("epoch", "max_seq", "missing", "last_request_t")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.max_seq = 0
        self.missing: Set[int] = set()
        self.last_request_t = -1e18

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.max_seq = 0
        self.missing.clear()
        self.last_request_t = -1e18


class ClientReliability:
    """Gap tracking, resume points, and causal ordering for one client."""

    __slots__ = ("config", "_streams", "_fifo_next", "_delivered_vec",
                 "gap_requests", "unrecoverable")

    def __init__(self, config: ReliabilityConfig) -> None:
        self.config = config
        #: (server, channel) -> stream state
        self._streams: Dict[Tuple[str, str], _Stream] = {}
        #: causal mode: (channel, sender) -> own FIFO publication counter
        self._fifo_next: Dict[Tuple[str, str], int] = {}
        #: causal mode: (channel, sender) -> highest pub_seq delivered
        self._delivered_vec: Dict[Tuple[str, str], int] = {}
        # --- counters ---
        self.gap_requests = 0
        self.unrecoverable = 0

    # --- sequence streams ---------------------------------------------
    def stream(self, server: str, channel: str) -> _Stream:
        key = (server, channel)
        stream = self._streams.get(key)
        if stream is None:
            stream = _Stream(-1)
            self._streams[key] = stream
        return stream

    def observe(
        self, server: str, channel: str, seq: int, epoch: int,
        replayed: bool, now: float,
    ) -> ObserveOutcome:
        """Record one sequenced delivery; decide delivery + gap repair."""
        stream = self.stream(server, channel)
        if epoch != stream.epoch:
            # New boot of the server id (or first contact): fresh stream.
            stream.reset(epoch)
            if seq > 1:
                # Joining mid-stream is normal (we subscribed late); only
                # what arrives after our high-water mark is owed to us.
                stream.max_seq = seq
                return ObserveOutcome(True)
        if seq > stream.max_seq:
            if seq > stream.max_seq + 1:
                stream.missing.update(range(stream.max_seq + 1, seq))
            stream.max_seq = seq
        elif seq in stream.missing:
            stream.missing.remove(seq)
        else:
            # At or below the high-water mark and not a known hole: a
            # replayed duplicate.  exactly_once drops it here, before any
            # msg-id bookkeeping; at_least_once lets it through (the app
            # may see it again -- that is the tier's contract).
            if self.config.exactly_once:
                return ObserveOutcome(False)
            return ObserveOutcome(True)
        request = None
        if stream.missing and (
            now - stream.last_request_t >= self.config.replay_retry_cooldown_s
        ):
            stream.last_request_t = now
            request = (min(stream.missing) - 1, max(stream.missing))
            self.gap_requests += 1
        return ObserveOutcome(True, request)

    def forget_through(self, server: str, channel: str, epoch: int, through_seq: int) -> None:
        """Broker said seqs <= through_seq are evicted: stop chasing them."""
        stream = self._streams.get((server, channel))
        if stream is None or stream.epoch != epoch:
            return
        lost = {s for s in stream.missing if s <= through_seq}
        if lost:
            stream.missing -= lost
            self.unrecoverable += len(lost)

    def resume_point(self, server: str, channel: str) -> Tuple[int, int]:
        """(resume_after, resume_epoch) for a SUBSCRIBE on this stream."""
        stream = self._streams.get((server, channel))
        if stream is None or stream.epoch < 0:
            return (-1, -1)
        after = min(stream.missing) - 1 if stream.missing else stream.max_seq
        return (after, stream.epoch)

    def drop_channel(self, channel: str) -> None:
        """Clean unsubscribe: the stream position is no longer meaningful."""
        for key in [k for k in self._streams if k[1] == channel]:
            del self._streams[key]
        for table in (self._fifo_next, self._delivered_vec):
            for key in [k for k in table if k[0] == channel]:
                del table[key]

    # --- causal metadata ----------------------------------------------
    def stamp_publication(
        self, channel: str, sender: str
    ) -> Tuple[int, Tuple[Tuple[str, int], ...]]:
        """(pub_seq, deps) metadata for one outgoing publication."""
        key = (channel, sender)
        pub_seq = self._fifo_next.get(key, 0) + 1
        self._fifo_next[key] = pub_seq
        deps = tuple(
            (other, self._delivered_vec[(ch, other)])
            for ch, other in sorted(self._delivered_vec)
            if ch == channel and other != sender
        )
        return pub_seq, deps

    def deliverable(
        self, channel: str, sender: str, pub_seq: int,
        deps: Tuple[Tuple[str, int], ...],
    ) -> bool:
        """Causal check: FIFO from the sender plus all dependencies seen."""
        vec = self._delivered_vec
        if pub_seq > vec.get((channel, sender), 0) + 1:
            return False
        for dep_sender, dep_seq in deps:
            if dep_sender == sender:
                continue
            if vec.get((channel, dep_sender), 0) < dep_seq:
                return False
        return True

    def note_app_delivery(self, channel: str, sender: str, pub_seq: int) -> None:
        if pub_seq <= 0:
            return
        key = (channel, sender)
        if pub_seq > self._delivered_vec.get(key, 0):
            self._delivered_vec[key] = pub_seq


def reliability_config_from(config: DynamothConfig) -> Optional[ReliabilityConfig]:
    """Build the cluster's reliability snapshot; ``None`` when inert."""
    if config.delivery_tier == "at_most_once" and not config.causal_order:
        return None
    return ReliabilityConfig(
        delivery_tier=config.delivery_tier,
        causal_order=config.causal_order,
        cache_max_msgs=config.replay_cache_max_msgs,
        cache_max_bytes=config.replay_cache_max_bytes,
        replay_retry_cooldown_s=config.replay_retry_cooldown_s,
        causal_park_timeout_s=config.causal_park_timeout_s,
        replay_enabled=config.reliable_replay_enabled,
    )
