"""The central Dynamoth load balancer (sections III-B, IV-A.1).

A single Load Balancer node aggregates the LLA reports into a
:class:`~repro.core.metrics.ClusterLoadView`, and periodically decides
whether a new plan is needed.  New plans are generated at most once every
``T_wait`` seconds (so one reconfiguration settles before the next) through
the two-step rebalancer of :mod:`repro.core.rebalance`, then pushed
reliably to every dispatcher.

The balancer also drives elasticity: it asks the cloud for an extra server
when migration alone cannot relieve an overload, and decommissions drained
servers when the cluster is underloaded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Protocol, Set, Tuple

from repro.core.config import DynamothConfig
from repro.core.dispatcher import dispatcher_id
from repro.core.messages import (
    LoadReport,
    MappingNotice,
    NoMoreSubscribers,
    PlanPush,
    ServerSpawned,
)
from repro.core.metrics import ClusterLoadView
from repro.core.plan import Plan
from repro.core.rebalance import generate_decision
from repro.core.stragglers import StragglerTracker
from repro.obs.trace import (
    NULL_TRACER,
    DecommissionEvent,
    LoadReportEvent,
    LoadSnapshotEvent,
    MigrationSettledEvent,
    MigrationStartEvent,
    PlanGeneratedEvent,
    PlanPushedEvent,
    ServerReadyEvent,
    SpawnRequestEvent,
    Tracer,
)
from repro.sim.actor import Actor
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTask


class CloudOperations(Protocol):
    """What the balancer needs from the hosting cloud (the cluster)."""

    def request_spawn(self) -> None:
        """Rent one more pub/sub server; a ``ServerSpawned`` message will
        arrive at the balancer once it has booted."""
        ...

    def request_decommission(self, server_id: str) -> None:
        """Shut a drained server down after the forwarding grace period."""
        ...


@dataclass(frozen=True)
class BalancerEvent:
    """A timestamped control-plane action, kept for the experiment plots."""

    time: float
    kind: str  # "rebalance" | "spawn-request" | "server-ready" | "decommission"
    detail: str = ""


class LoadBalancer(Actor):
    """The cluster-wide plan generator."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: DynamothConfig,
        initial_plan: Plan,
        cloud: CloudOperations,
        default_nominal_bps: float,
        rng: random.Random,
        *,
        tracer: Tracer = NULL_TRACER,
    ):
        super().__init__(sim, node_id, is_infra=True)
        self.config = config
        self.plan = initial_plan
        self._cloud = cloud
        self._default_nominal_bps = default_nominal_bps
        self._rng = rng
        self._tracer = tracer

        self.view = ClusterLoadView(config.load_window_s)
        self.active_servers: List[str] = list(initial_plan.active_servers)
        self.bootstrap_servers: Set[str] = set(initial_plan.active_servers)
        self.pending_spawns = 0
        self._last_plan_time = -float("inf")
        self._pool_changed = False

        self.events: List[BalancerEvent] = []
        #: (time, {server: LR}) samples, one per evaluation tick (Figure 6)
        self.load_history: List[Tuple[float, Dict[str, float]]] = []
        #: MappingNotice broadcasts sent under the eager-push strawman
        self.eager_notices_sent = 0
        #: recently displaced servers per channel, shipped with each push
        self._stragglers = StragglerTracker(config.plan_entry_timeout_s)

        self._task = PeriodicTask(sim, config.lb_eval_interval_s, self._evaluate)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    def receive(self, message: Any, src_id: str) -> None:
        if isinstance(message, LoadReport):
            self.view.add_report(message)
            tracer = self._tracer
            if tracer.enabled:
                tracer.emit(
                    LoadReportEvent(
                        self.sim.now,
                        message.server_id,
                        message.load_ratio,
                        message.cpu_utilization,
                        len(message.channels),
                    )
                )
                tracer.metrics.gauge(
                    "reported_load_ratio", server=message.server_id
                ).set(message.load_ratio)
        elif isinstance(message, ServerSpawned):
            self._on_server_ready(message.server_id)
        elif isinstance(message, NoMoreSubscribers):
            # stop re-seeding this straggler into future plan pushes
            self._stragglers.drain(message.channel, message.server_id)
            if self._tracer.enabled:
                self._tracer.emit(
                    MigrationSettledEvent(self.sim.now, message.channel, message.server_id)
                )
        else:
            raise TypeError(f"{self.node_id}: unexpected message {type(message).__name__}")

    def _on_server_ready(self, server_id: str) -> None:
        if server_id not in self.active_servers:
            self.active_servers.append(server_id)
        self.pending_spawns = max(0, self.pending_spawns - 1)
        self._pool_changed = True
        self.events.append(BalancerEvent(self.sim.now, "server-ready", server_id))
        if self._tracer.enabled:
            self._tracer.emit(ServerReadyEvent(self.sim.now, server_id))

    # ------------------------------------------------------------------
    # Periodic evaluation
    # ------------------------------------------------------------------
    def _evaluate(self, now: float) -> None:
        self.view.prune(now)
        ratios = {s: self.view.load_ratio(s) for s in self.active_servers}
        self.load_history.append((now, ratios))
        if self._tracer.enabled:
            self._tracer.emit(LoadSnapshotEvent(now, dict(ratios)))

        waited_enough = (now - self._last_plan_time) >= self.config.t_wait_s
        if not (waited_enough or self._pool_changed):
            return
        # Only decide once every active server has reported at least once
        # (a fresh view would read as an idle cluster and trigger a bogus
        # scale-down).
        if not all(self.view.has_report(s) for s in self.bootstrap_servers):
            return

        decision = generate_decision(
            self.plan,
            self.view,
            self.config,
            self.active_servers,
            self.bootstrap_servers,
            self._default_nominal_bps,
            allow_scale_down=self.pending_spawns == 0,
        )
        self._pool_changed = False
        if decision.is_noop:
            return

        if decision.spawn_servers > 0:
            self._maybe_spawn()

        for server_id in decision.decommission:
            if server_id in self.active_servers:
                self.active_servers.remove(server_id)
            self.events.append(BalancerEvent(now, "decommission", server_id))

        if decision.mappings or decision.decommission:
            previous_plan = self.plan
            self.plan = self.plan.evolve(
                mappings=decision.mappings, active_servers=tuple(self.active_servers)
            )
            self._stragglers.record_plan_change(previous_plan, self.plan, now)
            self._stragglers.prune(now)
            tracer = self._tracer
            if tracer.enabled:
                changed = previous_plan.diff(self.plan)
                tracer.emit(
                    PlanGeneratedEvent(
                        now,
                        self.plan.version,
                        tuple(changed),
                        tuple(decision.decommission),
                        decision.spawn_servers > 0,
                    )
                )
                for channel, (old, new) in changed.items():
                    tracer.emit(
                        MigrationStartEvent(
                            now,
                            self.plan.version,
                            channel,
                            tuple(old.servers),
                            tuple(new.servers),
                            new.mode.value,
                        )
                    )
                tracer.metrics.counter("plans_generated_total").inc()
                tracer.metrics.gauge("plan_version").set(self.plan.version)
                tracer.metrics.gauge("plan_size").set(
                    len(self.plan.explicit_channels())
                )
            self._push_plan(extra_recipients=decision.decommission)
            if self.config.eager_plan_push:
                self._eager_push(previous_plan)
            self._last_plan_time = now
            self.events.append(
                BalancerEvent(
                    now,
                    "rebalance",
                    f"v{self.plan.version}: {len(decision.mappings)} mappings, "
                    f"{len(decision.decommission)} decommissions",
                )
            )

        # Decommissioned servers keep running through the forwarding grace
        # window; the cloud shuts them down afterwards.
        for server_id in decision.decommission:
            self.view.forget_server(server_id)
            self._cloud.request_decommission(server_id)
            if self._tracer.enabled:
                self._tracer.emit(DecommissionEvent(now, server_id))

    def _maybe_spawn(self) -> None:
        total = len(self.active_servers) + self.pending_spawns
        if self.pending_spawns > 0 or total >= self.config.max_servers:
            return
        self.pending_spawns += 1
        self.events.append(BalancerEvent(self.sim.now, "spawn-request"))
        if self._tracer.enabled:
            self._tracer.emit(SpawnRequestEvent(self.sim.now))
        self._cloud.request_spawn()

    def _push_plan(self, extra_recipients: List[str] = ()) -> None:
        push = PlanPush(self.plan, self._stragglers.snapshot())
        size = PlanPush.WIRE_SIZE + 32 * len(self.plan.explicit_channels())
        recipients = list(self.active_servers) + list(extra_recipients)
        for server_id in recipients:
            self.send(dispatcher_id(server_id), push, size)
        if self._tracer.enabled:
            self._tracer.emit(
                PlanPushedEvent(self.sim.now, self.plan.version, tuple(recipients))
            )

    def _eager_push(self, previous_plan: Plan) -> None:
        """Strawman propagation: notify *every* client of every change.

        This is what the paper's lazy scheme avoids; the ablation
        benchmark uses it to quantify the message overhead and spikes.
        """
        changed = previous_plan.diff(self.plan)
        if not changed:
            return
        client_ids = getattr(self._cloud, "all_client_ids", lambda: [])()
        for channel, (__, new_mapping) in changed.items():  # diff order sorted
            notice = MappingNotice(channel, new_mapping)
            for client_id in client_ids:
                self.send(client_id, notice, MappingNotice.WIRE_SIZE)
                self.eager_notices_sent += 1

    # ------------------------------------------------------------------
    # Introspection for experiments
    # ------------------------------------------------------------------
    def rebalance_times(self) -> List[float]:
        return [e.time for e in self.events if e.kind == "rebalance"]

    def average_load_ratio(self) -> float:
        return self.view.average_load_ratio(self.active_servers)
