"""The central Dynamoth load balancer (sections III-B, IV-A.1).

A single Load Balancer node aggregates the LLA reports into a
:class:`~repro.core.metrics.ClusterLoadView`, and periodically decides
whether a new plan is needed.  New plans are generated at most once every
``T_wait`` seconds (so one reconfiguration settles before the next)
through the configured :class:`~repro.core.policy.RebalancePolicy`
(``DynamothConfig.rebalance_policy``; the default ``paper`` policy is the
two-step rebalancer of :mod:`repro.core.rebalance`), then pushed reliably
to every dispatcher.  The balancer itself never places a channel -- every
placement decision, including plan repair after a server failure, goes
through the policy seam.

The balancer also drives elasticity: it asks the cloud for an extra server
when migration alone cannot relieve an overload, and decommissions drained
servers when the cluster is underloaded.
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol, Set, Tuple

from repro.core.config import DynamothConfig
from repro.core.dispatcher import dispatcher_id
from repro.core.messages import (
    LoadReport,
    MappingNotice,
    NoMoreSubscribers,
    PlanPush,
    ServerSpawned,
)
from repro.core.metrics import ClusterLoadView
from repro.core.plan import ChannelMapping, Plan, ReplicationMode
from repro.core.policy import PolicyContext, RebalancePolicy, make_policy
from repro.core.stragglers import StragglerTracker
from repro.obs.trace import (
    NULL_TRACER,
    DecommissionEvent,
    LoadReportEvent,
    LoadSnapshotEvent,
    MigrationSettledEvent,
    MigrationStartEvent,
    PlanGeneratedEvent,
    PlanPushedEvent,
    PlanRepairDoneEvent,
    PlanRepairStartEvent,
    ServerFailureConfirmedEvent,
    ServerReadyEvent,
    ServerResurrectedEvent,
    ServerSuspectEvent,
    SpawnRequestEvent,
    Tracer,
)
from repro.sim.actor import Actor
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTask


class CloudOperations(Protocol):
    """What the balancer needs from the hosting cloud (the cluster)."""

    def request_spawn(self) -> None:
        """Rent one more pub/sub server; a ``ServerSpawned`` message will
        arrive at the balancer once it has booted."""
        ...

    def request_decommission(self, server_id: str) -> None:
        """Shut a drained server down after the forwarding grace period."""
        ...


@dataclass(frozen=True)
class BalancerEvent:
    """A timestamped control-plane action, kept for the experiment plots."""

    time: float
    kind: str  # "rebalance" | "spawn-request" | "server-ready" | "decommission"
    detail: str = ""


class LoadBalancer(Actor):
    """The cluster-wide plan generator."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: DynamothConfig,
        initial_plan: Plan,
        cloud: CloudOperations,
        default_nominal_bps: float,
        rng: Random,
        *,
        tracer: Tracer = NULL_TRACER,
    ):
        super().__init__(sim, node_id, is_infra=True)
        self.config = config
        self.plan = initial_plan
        self._cloud = cloud
        self._default_nominal_bps = default_nominal_bps
        self._rng = rng
        self._tracer = tracer

        self.view = ClusterLoadView(config.load_window_s)
        self.active_servers: List[str] = list(initial_plan.active_servers)
        self.bootstrap_servers: Set[str] = set(initial_plan.active_servers)
        self.pending_spawns = 0
        self._last_plan_time = -float("inf")
        self._pool_changed = False

        self.events: List[BalancerEvent] = []
        #: (time, {server: LR}) samples, one per evaluation tick (Figure 6)
        self.load_history: List[Tuple[float, Dict[str, float]]] = []
        #: ground-truth plan ledger: every plan this balancer pushed, with
        #: its push time.  Plans are immutable so entries are just shared
        #: references; ``repro.check`` oracles replay convergence against
        #: this history.
        self.plan_history: List[Tuple[float, Plan]] = [(sim.now, initial_plan)]
        #: MappingNotice broadcasts sent under the eager-push strawman
        self.eager_notices_sent = 0
        #: recently displaced servers per channel, shipped with each push
        self._stragglers = StragglerTracker(config.plan_entry_timeout_s)

        # --- heartbeat failure detection (repro.faults recovery path) ---
        #: servers confirmed dead and not yet resurrected
        self.failed_servers: Set[str] = set()
        #: server -> time its silence crossed the suspect threshold
        self._suspect_since: Dict[str, float] = {}
        #: server -> arrival time of its most recent LoadReport.  Kept
        #: separately from ``view`` because the sliding load window prunes
        #: reports far sooner than the failure-confirmation timeout.
        self._last_report_at: Dict[str, float] = {}
        #: failures confirmed while no live server existed to re-home onto;
        #: repaired as soon as a spawn completes
        self._pending_repairs: List[str] = []

        #: Read-only live-SLA signal (``repro.obs.sla.SlaMonitor``), wired
        #: by the cluster when SLA monitoring is configured.  The balancer
        #: polls it each evaluation tick so windows drain on sim time even
        #: when deliveries stop, and mirrors the violation count into a
        #: gauge -- it must never feed SLA state back into plan decisions
        #: (that would couple placement to the observability layer).
        self.sla_monitor: Optional[Any] = None

        #: The rebalancing policy every placement decision goes through
        #: (``config.rebalance_policy``; see :mod:`repro.core.policy`).
        self.policy: RebalancePolicy = make_policy(config)

        #: Optional load-history recorder (``repro.lab.LoadHistoryRecorder``),
        #: wired by the cluster or an experiment.  Called once per
        #: evaluation tick with the balancer itself; purely observational,
        #: like ``sla_monitor``.
        self.history_recorder: Optional[Any] = None

        self._task = PeriodicTask(sim, config.lb_eval_interval_s, self._evaluate)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        # Monitor the bootstrap servers from t=0: a server that dies before
        # its first report must still be detected (otherwise the
        # all-bootstrap-reported gate would block plan generation forever).
        now = self.sim.now
        for server_id in self.active_servers:
            self._last_report_at.setdefault(server_id, now)
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    def receive(self, message: Any, src_id: str) -> None:
        if isinstance(message, LoadReport):
            self._last_report_at[message.server_id] = self.sim.now
            self._suspect_since.pop(message.server_id, None)
            if message.server_id in self.failed_servers:
                # A "dead" server is talking again (e.g. its LLA was only
                # stalled, or a partition healed): re-admit it.
                self._on_server_resurrected(message.server_id)
            self.view.add_report(message)
            tracer = self._tracer
            if tracer.enabled:
                tracer.emit(
                    LoadReportEvent(
                        self.sim.now,
                        message.server_id,
                        message.load_ratio,
                        message.cpu_utilization,
                        len(message.channels),
                    )
                )
                tracer.metrics.gauge(
                    "reported_load_ratio", server=message.server_id
                ).set(message.load_ratio)
        elif isinstance(message, ServerSpawned):
            self._on_server_ready(message.server_id)
        elif isinstance(message, NoMoreSubscribers):
            # stop re-seeding this straggler into future plan pushes
            self._stragglers.drain(message.channel, message.server_id)
            if self._tracer.enabled:
                self._tracer.emit(
                    MigrationSettledEvent(self.sim.now, message.channel, message.server_id)
                )
        else:
            raise TypeError(f"{self.node_id}: unexpected message {type(message).__name__}")

    def _on_server_ready(self, server_id: str) -> None:
        if server_id in self.failed_servers:
            # A crashed server came back (restart with the same id).
            self._on_server_resurrected(server_id)
        if server_id not in self.active_servers:
            self.active_servers.append(server_id)
        self.pending_spawns = max(0, self.pending_spawns - 1)
        self._pool_changed = True
        self._last_report_at.setdefault(server_id, self.sim.now)
        self.events.append(BalancerEvent(self.sim.now, "server-ready", server_id))
        if self._tracer.enabled:
            self._tracer.emit(ServerReadyEvent(self.sim.now, server_id))
        if self._pending_repairs:
            # Failures confirmed while the pool was empty: repair now that
            # a live server exists to take the channels.
            pending, self._pending_repairs = self._pending_repairs, []
            for dead_id in pending:
                self._repair_plan(dead_id, self.sim.now)

    # ------------------------------------------------------------------
    # Periodic evaluation
    # ------------------------------------------------------------------
    def _evaluate(self, now: float) -> None:
        self.view.prune(now)
        self._check_heartbeats(now)
        monitor = self.sla_monitor
        if monitor is not None:
            monitor.poll(now)
            if self._tracer.enabled:
                self._tracer.metrics.gauge("sla_violations_active").set(
                    len(monitor.active_scopes())
                )
        ratios = {s: self.view.load_ratio(s) for s in self.active_servers}
        self.load_history.append((now, ratios))
        if self._tracer.enabled:
            self._tracer.emit(LoadSnapshotEvent(now, dict(ratios)))
        recorder = self.history_recorder
        if recorder is not None:
            recorder.record_tick(now, self)

        waited_enough = (now - self._last_plan_time) >= self.config.t_wait_s
        if not (waited_enough or self._pool_changed):
            return
        # Only decide once every active server has reported at least once
        # (a fresh view would read as an idle cluster and trigger a bogus
        # scale-down).
        if not all(self.view.has_report(s) for s in self.bootstrap_servers):
            return

        decision = self.policy.decide(
            self._policy_context(now, allow_scale_down=self.pending_spawns == 0)
        )
        self._pool_changed = False
        if decision.is_noop:
            return

        if decision.spawn_servers > 0:
            self._maybe_spawn()

        for server_id in decision.decommission:
            if server_id in self.active_servers:
                self.active_servers.remove(server_id)
            self.events.append(BalancerEvent(now, "decommission", server_id))

        if decision.mappings or decision.decommission:
            previous_plan = self.plan
            self.plan = self.plan.evolve(
                mappings=decision.mappings, active_servers=tuple(self.active_servers)
            )
            self._stragglers.record_plan_change(previous_plan, self.plan, now)
            self._stragglers.prune(now)
            self._emit_plan_events(
                previous_plan,
                now,
                decommissioned=tuple(decision.decommission),
                spawn_requested=decision.spawn_servers > 0,
            )
            self._push_plan(extra_recipients=decision.decommission)
            if self.config.eager_plan_push:
                self._eager_push(previous_plan)
            self._last_plan_time = now
            self.events.append(
                BalancerEvent(
                    now,
                    "rebalance",
                    f"v{self.plan.version}: {len(decision.mappings)} mappings, "
                    f"{len(decision.decommission)} decommissions",
                )
            )

        # Decommissioned servers keep running through the forwarding grace
        # window; the cloud shuts them down afterwards.
        for server_id in decision.decommission:
            self.view.forget_server(server_id)
            # Planned removal, not a failure: stop monitoring its heartbeat.
            self._last_report_at.pop(server_id, None)
            self._suspect_since.pop(server_id, None)
            self._cloud.request_decommission(server_id)
            if self._tracer.enabled:
                self._tracer.emit(DecommissionEvent(now, server_id))

    def _policy_context(
        self,
        now: float,
        *,
        active_servers: Optional[List[str]] = None,
        allow_scale_down: bool = True,
    ) -> PolicyContext:
        """Snapshot the balancer's state for one policy call."""
        servers = self.active_servers if active_servers is None else active_servers
        return PolicyContext(
            now=now,
            plan=self.plan,
            view=self.view,
            config=self.config,
            active_servers=tuple(servers),
            bootstrap_servers=frozenset(self.bootstrap_servers),
            default_nominal_bps=self._default_nominal_bps,
            allow_scale_down=allow_scale_down,
        )

    def _emit_plan_events(
        self,
        previous_plan: Plan,
        now: float,
        *,
        decommissioned: Tuple[str, ...] = (),
        spawn_requested: bool = False,
    ) -> None:
        """Trace one adopted plan: generation record plus per-channel moves."""
        tracer = self._tracer
        if not tracer.enabled:
            return
        changed = previous_plan.diff(self.plan)
        tracer.emit(
            PlanGeneratedEvent(
                now,
                self.plan.version,
                tuple(changed),
                decommissioned,
                spawn_requested,
            )
        )
        for channel, (old, new) in changed.items():
            tracer.emit(
                MigrationStartEvent(
                    now,
                    self.plan.version,
                    channel,
                    tuple(old.servers),
                    tuple(new.servers),
                    new.mode.value,
                )
            )
        tracer.metrics.counter("plans_generated_total").inc()
        tracer.metrics.gauge("plan_version").set(self.plan.version)
        tracer.metrics.gauge("plan_size").set(len(self.plan.explicit_channels()))

    # ------------------------------------------------------------------
    # Heartbeat failure detection & plan repair (repro.faults subsystem)
    # ------------------------------------------------------------------
    def _check_heartbeats(self, now: float) -> None:
        """Suspect, then confirm, servers whose LLA reports stopped.

        A monitored server silent for ``heartbeat_suspect_s`` becomes a
        suspect; one silent for ``heartbeat_confirm_s`` longer is confirmed
        dead and its channels are re-homed.  Detection never acts while
        reports keep arriving, so failure-free runs are unaffected.
        """
        if not self.config.failure_detection:
            return
        suspect_after = self.config.heartbeat_suspect_s
        confirm_after = suspect_after + self.config.heartbeat_confirm_s
        for server_id in list(self.active_servers):
            last = self._last_report_at.get(server_id)
            if last is None:
                continue  # not monitored (no report and no spawn record)
            silence = now - last
            if silence >= confirm_after:
                self._confirm_failure(server_id, now, silence)
            elif silence >= suspect_after and server_id not in self._suspect_since:
                self._suspect_since[server_id] = now
                self.events.append(BalancerEvent(now, "server-suspect", server_id))
                if self._tracer.enabled:
                    self._tracer.emit(ServerSuspectEvent(now, server_id, silence))

    def _confirm_failure(self, server_id: str, now: float, silence: float) -> None:
        self._suspect_since.pop(server_id, None)
        self._last_report_at.pop(server_id, None)
        self.failed_servers.add(server_id)
        if server_id in self.active_servers:
            self.active_servers.remove(server_id)
        # A dead bootstrap server must not gate plan generation forever.
        self.bootstrap_servers.discard(server_id)
        self.events.append(BalancerEvent(now, "server-failed", server_id))
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(ServerFailureConfirmedEvent(now, server_id, silence))
            tracer.metrics.counter("server_failures_total").inc()
        self._repair_plan(server_id, now)
        if (
            self.config.replace_failed_servers
            or len(self.active_servers) < self.config.min_servers
        ):
            self._maybe_spawn()

    def _repair_plan(self, dead_id: str, now: float) -> None:
        """Re-home every channel the dead server carried onto live servers.

        Covers both explicitly mapped channels and consistent-hashing
        fallback channels the view observed traffic for; fallback channels
        the balancer never saw are handled client-side by the
        exclusion-aware ring lookup.  Repair bypasses ``T_wait`` -- waiting
        out the settle window would prolong the outage.
        """
        channels = sorted(
            set(self.plan.channels_on(dead_id)) | set(self.view.channel_loads(dead_id))
        )
        live = list(self.active_servers)
        if not live:
            # Nothing to re-home onto; repair once a spawn completes.
            self._pending_repairs.append(dead_id)
            self.view.forget_server(dead_id)
            self._maybe_spawn()
            return

        # Seed the estimator with the dead server too: its last load
        # reports carry the per-channel egress weights that decide where
        # each re-homed channel lands.  Without it every repaired channel
        # would look weightless and pile onto one "least loaded" target.
        ctx = self._policy_context(now, active_servers=live + [dead_id])
        estimator = ctx.make_estimator()
        mappings: Dict[str, ChannelMapping] = {}
        for channel in channels:
            current = self.plan.mapping(channel)
            if dead_id not in current.servers:
                continue  # observed on the dead server but homed elsewhere
            survivors = tuple(
                s for s in current.servers if s != dead_id and s in live
            )
            if not survivors:
                # Where an orphaned channel lands is a *policy* question.
                target = self.policy.place_unknown_channel(
                    ctx, estimator, channel, live
                )
                if target is None:
                    target = estimator.least_loaded(live)
                if target is None:
                    continue  # unreachable: live is non-empty
                estimator.migrate(channel, dead_id, target)
                mappings[channel] = ChannelMapping(ReplicationMode.SINGLE, (target,))
            elif len(survivors) == 1:
                # A replicated channel down to one replica collapses to
                # SINGLE; the next regular rebalance re-replicates it if
                # the thresholds still hold.
                mappings[channel] = ChannelMapping(ReplicationMode.SINGLE, survivors)
            else:
                mappings[channel] = ChannelMapping(current.mode, survivors)

        if self._tracer.enabled:
            self._tracer.emit(PlanRepairStartEvent(now, dead_id, tuple(mappings)))
        previous_plan = self.plan
        self.plan = previous_plan.evolve(
            mappings=mappings, active_servers=tuple(self.active_servers)
        )
        self._stragglers.record_plan_change(previous_plan, self.plan, now)
        self._drop_failed_stragglers()
        self._stragglers.prune(now)
        self.view.forget_server(dead_id)
        self._emit_plan_events(previous_plan, now)
        self._push_plan()
        self._last_plan_time = now
        self.events.append(
            BalancerEvent(
                now, "repair", f"{dead_id} -> v{self.plan.version}: {len(mappings)} channels"
            )
        )
        if self._tracer.enabled:
            self._tracer.emit(PlanRepairDoneEvent(now, dead_id, self.plan.version))

    def _drop_failed_stragglers(self) -> None:
        """Forwarding toward a dead server is wasted egress: stop it."""
        for channel, registry in self._stragglers.snapshot().items():
            for server_id in registry:
                if server_id in self.failed_servers:
                    self._stragglers.drain(channel, server_id)

    def _on_server_resurrected(self, server_id: str) -> None:
        now = self.sim.now
        self.failed_servers.discard(server_id)
        if server_id not in self.active_servers:
            self.active_servers.append(server_id)
        self._pool_changed = True
        self._last_report_at.setdefault(server_id, now)
        self.events.append(BalancerEvent(now, "server-resurrected", server_id))
        if self._tracer.enabled:
            self._tracer.emit(ServerResurrectedEvent(now, server_id))
        # Re-push the current plan so dispatchers clear the server from
        # their failed sets (receive() applies that even to a same-version
        # push); the next evaluation rebalances onto the returned capacity.
        self._push_plan()

    def _maybe_spawn(self) -> None:
        total = len(self.active_servers) + self.pending_spawns
        if self.pending_spawns > 0 or total >= self.config.max_servers:
            return
        self.pending_spawns += 1
        self.events.append(BalancerEvent(self.sim.now, "spawn-request"))
        if self._tracer.enabled:
            self._tracer.emit(SpawnRequestEvent(self.sim.now))
        self._cloud.request_spawn()

    def _push_plan(self, extra_recipients: List[str] = ()) -> None:
        if self.plan_history[-1][1] is not self.plan:
            self.plan_history.append((self.sim.now, self.plan))
        push = PlanPush(
            self.plan, self._stragglers.snapshot(), tuple(sorted(self.failed_servers))
        )
        size = PlanPush.WIRE_SIZE + 32 * len(self.plan.explicit_channels())
        recipients = list(self.active_servers) + list(extra_recipients)
        for server_id in recipients:
            self.send(dispatcher_id(server_id), push, size)
        if self._tracer.enabled:
            self._tracer.emit(
                PlanPushedEvent(self.sim.now, self.plan.version, tuple(recipients))
            )

    def _eager_push(self, previous_plan: Plan) -> None:
        """Strawman propagation: notify *every* client of every change.

        This is what the paper's lazy scheme avoids; the ablation
        benchmark uses it to quantify the message overhead and spikes.
        """
        changed = previous_plan.diff(self.plan)
        if not changed:
            return
        client_ids = getattr(self._cloud, "all_client_ids", lambda: [])()
        for channel, (__, new_mapping) in changed.items():  # diff order sorted
            notice = MappingNotice(channel, new_mapping)
            for client_id in client_ids:
                self.send(client_id, notice, MappingNotice.WIRE_SIZE)
                self.eager_notices_sent += 1

    # ------------------------------------------------------------------
    # Introspection for experiments
    # ------------------------------------------------------------------
    def rebalance_times(self) -> List[float]:
        return [e.time for e in self.events if e.kind == "rebalance"]

    def average_load_ratio(self) -> float:
        return self.view.average_load_ratio(self.active_servers)
