"""Consistent hashing ring.

Dynamoth uses consistent hashing in two roles:

* as the universal *fallback* mapping ("plan 0"): a client or dispatcher
  with no plan entry for a channel hashes the channel onto the bootstrap
  ring (section II-C);
* as the *baseline* load-distribution scheme the paper compares against
  (:mod:`repro.baselines.consistent_hashing`).

Each server owns ``vnodes`` virtual identifiers; a channel maps to the
server owning the first identifier clockwise of the channel's hash.  Adding
or removing a server therefore only remaps ~1/N of the channels.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Collection, Dict, List, Sequence, Tuple


def _hash64(key: str) -> int:
    """Stable 64-bit hash (Python's ``hash()`` is process-randomized)."""
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRing:
    """A consistent-hashing ring with virtual nodes."""

    def __init__(self, servers: Sequence[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes!r}")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        self._servers: Dict[str, bool] = {}
        for server in servers:
            self.add_server(server)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def servers(self) -> List[str]:
        """Servers currently on the ring, in insertion order."""
        return list(self._servers)

    def __len__(self) -> int:
        return len(self._servers)

    def __contains__(self, server_id: str) -> bool:
        return server_id in self._servers

    def add_server(self, server_id: str) -> None:
        """Place ``server_id``'s virtual identifiers on the ring."""
        if server_id in self._servers:
            raise ValueError(f"server already on ring: {server_id}")
        self._servers[server_id] = True
        for i in range(self.vnodes):
            point = _hash64(f"{server_id}#vnode{i}")
            index = bisect.bisect_left(self._keys, point)
            self._keys.insert(index, point)
            self._points.insert(index, (point, server_id))

    def remove_server(self, server_id: str) -> None:
        """Remove all of ``server_id``'s virtual identifiers."""
        if server_id not in self._servers:
            raise KeyError(f"server not on ring: {server_id}")
        del self._servers[server_id]
        kept = [(p, s) for (p, s) in self._points if s != server_id]
        self._points = kept
        self._keys = [p for (p, __) in kept]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, channel: str, exclude: Collection[str] = ()) -> str:
        """Server responsible for ``channel``.

        ``exclude`` names servers to walk past on the ring -- the failure
        fallback: when a channel's ring-determined server is known dead,
        every node excluding the same failed set independently agrees on
        the next live server clockwise.  If every server is excluded the
        primary is returned anyway (the caller has nowhere better to go).
        """
        if not self._points:
            raise RuntimeError("consistent hash ring is empty")
        point = _hash64(channel)
        index = bisect.bisect_right(self._keys, point)
        if index == len(self._keys):
            index = 0
        if not exclude:
            return self._points[index][1]
        total = len(self._points)
        for offset in range(total):
            __, server = self._points[(index + offset) % total]
            if server not in exclude:
                return server
        return self._points[index][1]

    def lookup_n(self, channel: str, n: int) -> List[str]:
        """The ``n`` distinct servers clockwise of ``channel``'s hash.

        Used when a fallback needs several candidate servers (e.g. seeding
        replication before any plan exists).
        """
        if not self._points:
            raise RuntimeError("consistent hash ring is empty")
        n = min(n, len(self._servers))
        point = _hash64(channel)
        index = bisect.bisect_right(self._keys, point)
        result: List[str] = []
        seen = set()
        total = len(self._points)
        for offset in range(total):
            __, server = self._points[(index + offset) % total]
            if server not in seen:
                seen.add(server)
                result.append(server)
                if len(result) == n:
                    break
        return result

    def copy(self) -> "ConsistentHashRing":
        ring = ConsistentHashRing(vnodes=self.vnodes)
        ring._points = list(self._points)
        ring._keys = list(self._keys)
        ring._servers = dict(self._servers)
        return ring

    def assignment(self, channels: Sequence[str]) -> Dict[str, str]:
        """Map each channel to its server (bulk convenience)."""
        return {c: self.lookup(c) for c in channels}
