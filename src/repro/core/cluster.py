"""Cluster wiring: build a complete Dynamoth deployment in one simulator.

:class:`DynamothCluster` assembles the whole architecture of Figure 1:

* ``n`` pub/sub server nodes, each with a co-located Local Load Analyzer
  and Dispatcher;
* one Load Balancer node (Dynamoth's, the consistent-hashing baseline's,
  or none for manually planned micro-benchmarks);
* the network transport with WAN latency injection for clients and a cloud
  LAN between infrastructure nodes;
* an elastic server pool: the balancer can rent additional servers (ready
  after ``spawn_delay_s``) and decommission drained ones.

This is the main entry point of the library::

    cluster = DynamothCluster(seed=42, initial_servers=2)
    client = cluster.create_client("alice")
    client.subscribe("room:1", lambda ch, body, env: print(body))
    client.publish("room:1", {"hello": "world"}, payload_size=64)
    cluster.run_for(5.0)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.broker.config import BrokerConfig
from repro.broker.server import PubSubServer
from repro.core.balancer import LoadBalancer
from repro.core.client import DynamothClient
from repro.core.config import DynamothConfig
from repro.core.dispatcher import Dispatcher, dispatcher_id
from repro.core.lla import LocalLoadAnalyzer
from repro.core.messages import PlanPush, ServerSpawned
from repro.core.plan import ChannelMapping, Plan
from repro.core.reliability import BrokerReliability, reliability_config_from
from repro.net.latency import LatencyModel
from repro.net.transport import Transport
from repro.obs.sla import SlaConfig, SlaMonitor
from repro.obs.trace import (
    NULL_TRACER,
    LlaStallEvent,
    ServerCrashEvent,
    ServerRestartEvent,
    Tracer,
)
from repro.sim.actor import Actor
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

#: Balancer selection: Dynamoth's hierarchical balancer, the
#: consistent-hashing baseline, or no balancer (static plans).
BALANCER_DYNAMOTH = "dynamoth"
BALANCER_CONSISTENT_HASHING = "consistent-hashing"
BALANCER_NONE = "none"

LB_NODE_ID = "load-balancer"


class DynamothCluster:
    """A fully wired Dynamoth deployment inside one simulation."""

    def __init__(
        self,
        *,
        seed: int = 0,
        config: Optional[DynamothConfig] = None,
        broker_config: Optional[BrokerConfig] = None,
        initial_servers: int = 1,
        balancer: str = BALANCER_DYNAMOTH,
        wan_model: Optional[LatencyModel] = None,
        lan_model: Optional[LatencyModel] = None,
        tracer: Optional[Tracer] = None,
        scheduler: str = "heap",
        gc_managed: bool = False,
    ):
        if initial_servers < 1:
            raise ValueError("initial_servers must be >= 1")
        self.config = config if config is not None else DynamothConfig()
        self.broker_config = broker_config if broker_config is not None else BrokerConfig()
        #: reliability-layer snapshot shared by all brokers and clients;
        #: ``None`` (plain at_most_once) keeps every component inert.
        self.reliability_config = reliability_config_from(self.config)
        #: server id -> boot count: a restarted id gets a new epoch so its
        #: fresh sequence stream is never mistaken for a regression.
        self._boot_counts: Dict[str, int] = {}
        self.sim = Simulator(scheduler=scheduler, gc_managed=gc_managed)
        self.rng = RngRegistry(seed)
        #: shared flight recorder; the no-op NULL_TRACER unless one is
        #: passed in, so untraced runs pay only guard checks.
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled:
            self.tracer.attach_kernel(self.sim)
        #: Live SLA monitor (observability only); built when tracing is on
        #: and the config sets a threshold.  It rides the tracer's observer
        #: hook, so it sees every DeliveryEvent as it is emitted.
        self.sla_monitor: Optional[SlaMonitor] = None
        if self.tracer.enabled and self.config.sla_threshold_s is not None:
            self.sla_monitor = SlaMonitor(
                self.tracer,
                SlaConfig(
                    threshold_s=self.config.sla_threshold_s,
                    quantile=self.config.sla_quantile,
                    window_s=self.config.sla_window_s,
                    slices=self.config.sla_window_slices,
                ),
            )
            self.tracer.add_observer(self.sla_monitor)
        self.transport = Transport(
            self.sim,
            self.rng.stream("net"),
            lan_model=lan_model,
            wan_model=wan_model,
        )

        self.servers: Dict[str, PubSubServer] = {}
        self.dispatchers: Dict[str, Dispatcher] = {}
        self.llas: Dict[str, LocalLoadAnalyzer] = {}
        self.clients: Dict[str, DynamothClient] = {}
        self._server_counter = 0
        self._decommissioned: List[str] = []
        #: ids crashed via :meth:`crash_server` and not yet restarted
        self.crashed_servers: Set[str] = set()
        #: server-hours accounting for the cloud cost model: id -> start
        self._server_started: Dict[str, float] = {}
        self._server_stopped: Dict[str, float] = {}
        #: rental seconds of closed intervals whose id was later reused
        #: (crash -> restart); keeps :meth:`server_seconds` correct
        self._server_closed_seconds = 0.0

        bootstrap_ids = [self._next_server_id() for __ in range(initial_servers)]
        self.plan = Plan.bootstrap(bootstrap_ids, vnodes=self.config.vnodes_per_server)

        self.balancer_kind = balancer
        self.balancer: Optional[LoadBalancer] = None
        if balancer == BALANCER_DYNAMOTH:
            self.balancer = LoadBalancer(
                self.sim,
                LB_NODE_ID,
                self.config,
                self.plan,
                self,
                self.broker_config.nominal_egress_bps,
                self.rng.stream("balancer"),
                tracer=self.tracer,
            )
        elif balancer == BALANCER_CONSISTENT_HASHING:
            # Imported lazily to avoid a package cycle.
            from repro.baselines.consistent_hashing import ConsistentHashingBalancer

            self.balancer = ConsistentHashingBalancer(
                self.sim,
                LB_NODE_ID,
                self.config,
                self.plan,
                self,
                self.broker_config.nominal_egress_bps,
                self.rng.stream("balancer"),
                tracer=self.tracer,
            )
        elif balancer != BALANCER_NONE:
            raise ValueError(f"unknown balancer kind: {balancer!r}")

        if self.balancer is not None:
            self.transport.register(self.balancer)
            self._wire_tap(self.balancer)
            self.balancer.sla_monitor = self.sla_monitor

        for server_id in bootstrap_ids:
            self._materialize_server(server_id)

        if self.balancer is not None:
            self.balancer.start()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _wire_tap(self, actor: Actor) -> None:
        """Attach the tracer's per-message tap when tracing is enabled."""
        if self.tracer.enabled:
            actor.tap = self.tracer.message_tap

    # ------------------------------------------------------------------
    # Server pool
    # ------------------------------------------------------------------
    def _next_server_id(self) -> str:
        self._server_counter += 1
        return f"pub{self._server_counter}"

    def _materialize_server(self, server_id: str) -> PubSubServer:
        """Create and wire a pub/sub server node plus its LLA/dispatcher."""
        boot = self._boot_counts.get(server_id, 0) + 1
        self._boot_counts[server_id] = boot
        reliability = None
        if self.reliability_config is not None and self.reliability_config.replay_active:
            reliability = BrokerReliability(self.reliability_config, epoch=boot)
        server = PubSubServer(
            self.sim,
            server_id,
            self.broker_config,
            tracer=self.tracer,
            reliability=reliability,
        )
        port = self.transport.register(server, self.broker_config.actual_egress_bps)
        self.servers[server_id] = server
        self._wire_tap(server)

        current_plan = self.balancer.plan if self.balancer is not None else self.plan
        dispatcher = Dispatcher(
            self.sim,
            server,
            current_plan,
            self.rng.stream(f"dispatcher:{server_id}"),
            plan_entry_timeout_s=self.config.plan_entry_timeout_s,
            repair_buffer_s=self.config.repair_buffer_s,
            repair_buffer_max_msgs=self.config.repair_buffer_max_msgs,
            repair_replay_enabled=self.config.repair_replay_enabled,
            tracer=self.tracer,
        )
        self.transport.register(dispatcher)
        self.dispatchers[server_id] = dispatcher
        self._wire_tap(dispatcher)

        lla = LocalLoadAnalyzer(
            self.sim,
            server,
            port,
            LB_NODE_ID,
            report_interval_s=self.config.lla_report_interval_s,
            tracer=self.tracer,
        )
        self.transport.register(lla)
        self.llas[server_id] = lla
        self._wire_tap(lla)
        self._server_started[server_id] = self.sim.now
        if self.balancer is not None:
            lla.start()
        return server

    # --- CloudOperations protocol (called by the balancer) ---
    def request_spawn(self) -> None:
        """Rent a server; it boots after ``spawn_delay_s``."""
        server_id = self._next_server_id()
        self.sim.schedule(self.config.spawn_delay_s, self._finish_spawn, server_id)

    def _finish_spawn(self, server_id: str) -> None:
        self._materialize_server(server_id)
        if self.balancer is not None:
            # Loopback control message: the cloud tells the LB it is ready.
            self.balancer.receive(ServerSpawned(server_id), "cloud")

    def request_decommission(self, server_id: str) -> None:
        """Shut a drained server down after the forwarding grace window."""
        grace = self.config.plan_entry_timeout_s + 2.0
        self.sim.schedule(grace, self._finish_decommission, server_id)

    def _finish_decommission(self, server_id: str) -> None:
        server = self.servers.pop(server_id, None)
        if server is None:
            return
        self.llas.pop(server_id).stop()
        dispatcher = self.dispatchers.pop(server_id)
        server.close_all_connections()
        server.shutdown()
        dispatcher.shutdown()
        self.transport.unregister(server_id)
        self.transport.unregister(dispatcher.node_id)
        self.transport.unregister(f"lla@{server_id}")
        self._decommissioned.append(server_id)
        self._server_stopped[server_id] = self.sim.now

    # ------------------------------------------------------------------
    # Fault injection surface (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def colocated_node_ids(self, server_id: str) -> Tuple[str, str, str]:
        """All transport node ids living on one server machine."""
        return (server_id, dispatcher_id(server_id), f"lla@{server_id}")

    def crash_server(self, server_id: str) -> PubSubServer:
        """Hard-crash a server node (and its co-located LLA/dispatcher).

        Unlike a decommission there is no connection teardown -- a crashed
        machine sends no FIN.  Clients and peers simply stop hearing from
        it; in-flight messages to it are dropped on arrival.  Returns the
        dead server object for post-mortem inspection.
        """
        server = self.servers.pop(server_id, None)
        if server is None:
            raise KeyError(f"unknown or already-dead server: {server_id}")
        lla = self.llas.pop(server_id)
        dispatcher = self.dispatchers.pop(server_id)
        lla.stop()
        server.shutdown()
        dispatcher.shutdown()
        lla.shutdown()
        for node_id in self.colocated_node_ids(server_id):
            self.transport.unregister(node_id)
        self.crashed_servers.add(server_id)
        self._server_stopped[server_id] = self.sim.now
        if self.tracer.enabled:
            self.tracer.emit(ServerCrashEvent(self.sim.now, server_id))
        return server

    def restart_server(self, server_id: str) -> PubSubServer:
        """Boot a fresh, empty server under a previously crashed id.

        State (subscriptions, buffers) is *not* recovered -- clients
        resubscribe through the normal recovery path.  The balancer learns
        about the comeback via the cloud's ready notification.
        """
        if server_id in self.servers:
            raise ValueError(f"server {server_id} is already running")
        if server_id not in self.crashed_servers:
            raise KeyError(f"server {server_id} was never crashed")
        self.crashed_servers.discard(server_id)
        # Fold the finished rental interval into the closed accumulator so
        # server_seconds() stays correct when the id is reused.
        started = self._server_started.pop(server_id, None)
        stopped = self._server_stopped.pop(server_id, None)
        if started is not None and stopped is not None:
            self._server_closed_seconds += max(0.0, stopped - started)
        server = self._materialize_server(server_id)
        if self.tracer.enabled:
            self.tracer.emit(ServerRestartEvent(self.sim.now, server_id))
        if self.balancer is not None:
            self.balancer.receive(ServerSpawned(server_id), "cloud")
        return server

    def stall_lla(self, server_id: str) -> None:
        """Freeze a server's LLA: its load reports stop (gray failure)."""
        self.llas[server_id].stop()
        if self.tracer.enabled:
            self.tracer.emit(LlaStallEvent(self.sim.now, server_id, True))

    def resume_lla(self, server_id: str) -> None:
        self.llas[server_id].start()
        if self.tracer.enabled:
            self.tracer.emit(LlaStallEvent(self.sim.now, server_id, False))

    def all_client_ids(self) -> List[str]:
        """Currently connected clients (used by the eager-push strawman)."""
        return list(self.clients)

    def server_seconds(self, until: Optional[float] = None) -> float:
        """Total rented server time -- the cloud-cost metric.

        Implements the cost-model direction of the paper's future work:
        "integrating a cost model in our load balancing model in order to
        minimize Cloud-related costs".
        """
        horizon = self.sim.now if until is None else until
        total = self._server_closed_seconds
        for server_id, started in self._server_started.items():
            stopped = self._server_stopped.get(server_id, horizon)
            total += max(0.0, min(stopped, horizon) - started)
        return total

    @property
    def active_server_ids(self) -> List[str]:
        if self.balancer is not None:
            return list(self.balancer.active_servers)
        return list(self.servers)

    @property
    def server_count(self) -> int:
        return len(self.servers)

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def create_client(self, client_id: str) -> DynamothClient:
        client = DynamothClient(
            self.sim,
            client_id,
            self.plan.ring,
            self.rng.stream(f"client:{client_id}"),
            plan_entry_timeout_s=self.config.plan_entry_timeout_s,
            resubscribe_grace_s=self.config.resubscribe_grace_s,
            ping_interval_s=self.config.client_ping_interval_s,
            ping_miss_limit=self.config.client_ping_miss_limit,
            subscribe_ack_timeout_s=self.config.subscribe_ack_timeout_s,
            reconnect_backoff_base_s=self.config.reconnect_backoff_base_s,
            reconnect_backoff_max_s=self.config.reconnect_backoff_max_s,
            failed_server_ttl_s=self.config.failed_server_ttl_s,
            tracer=self.tracer,
            reliability=self.reliability_config,
        )
        self.transport.register(client)
        self.clients[client_id] = client
        self._wire_tap(client)
        return client

    def remove_client(self, client_id: str) -> None:
        client = self.clients.pop(client_id, None)
        if client is None:
            return
        client.disconnect()
        self.transport.unregister(client_id)

    # ------------------------------------------------------------------
    # Static plans (micro-benchmarks, Experiment 1)
    # ------------------------------------------------------------------
    def set_static_mapping(self, channel: str, mapping: ChannelMapping) -> None:
        """Force a channel mapping and push the plan to all dispatchers.

        Only meaningful with ``balancer=BALANCER_NONE`` -- an active
        balancer would override it on its next rebalance.
        """
        if self.balancer is not None:
            raise RuntimeError("static mappings require balancer='none'")
        self.plan = self.plan.evolve(mappings={channel: mapping})
        push = PlanPush(self.plan)
        for server_id in self.servers:
            dispatcher = self.dispatchers[server_id]
            dispatcher.receive(push, LB_NODE_ID)

    def current_plan(self) -> Plan:
        return self.balancer.plan if self.balancer is not None else self.plan

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_until(self, time: float) -> None:
        self.sim.run_until(time)

    def run_for(self, duration: float) -> None:
        self.sim.run_until(self.sim.now + duration)
