"""The hierarchical rebalancer: Algorithms 1 & 2 plus low-load draining.

All functions here are *pure* with respect to the simulation: they consume
the current :class:`~repro.core.plan.Plan`, the aggregated
:class:`~repro.core.metrics.ClusterLoadView` and a
:class:`~repro.core.config.DynamothConfig`, and produce a
:class:`RebalanceDecision` describing mapping changes, servers to rent and
servers to drain.  The :class:`~repro.core.balancer.LoadBalancer` actor
turns decisions into plan pushes and cloud API calls.

Plan generation is a two-step process (section III-B): (1) channel-level
rebalancing decides replication schemes per channel (Algorithm 1); (2)
system-level rebalancing migrates channels between servers (Algorithm 2
for high load, a symmetric draining pass for low load).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.config import DynamothConfig
from repro.core.metrics import ClusterLoadView
from repro.core.plan import ChannelMapping, Plan, ReplicationMode


@dataclass
class RebalanceDecision:
    """Outcome of one plan-generation pass."""

    #: proposed channel assignments (version stamps are assigned by
    #: ``Plan.evolve`` when the decision is applied)
    mappings: Dict[str, ChannelMapping] = field(default_factory=dict)
    #: how many additional servers should be rented from the cloud
    spawn_servers: int = 0
    #: servers that are fully drained and can be decommissioned
    decommission: List[str] = field(default_factory=list)
    #: human-readable trace of what was decided and why
    notes: List[str] = field(default_factory=list)

    @property
    def changes_plan(self) -> bool:
        return bool(self.mappings)

    @property
    def is_noop(self) -> bool:
        return not (self.mappings or self.spawn_servers or self.decommission)


class LoadEstimator:
    """Predicts per-server load ratios under hypothetical plans.

    Seeded from the measured egress of each server; migrations and
    replication changes shift the per-channel egress contributions around,
    and :meth:`load_ratio` answers "what would ``LR_i`` be if this plan
    were applied" -- the ``estimateLR`` step of Algorithm 2.
    """

    def __init__(
        self,
        view: ClusterLoadView,
        servers: Sequence[str],
        default_nominal_bps: float,
        *,
        cpu_aware: bool = False,
    ):
        self.cpu_aware = cpu_aware
        self._egress: Dict[str, float] = {}
        self._nominal: Dict[str, float] = {}
        #: per-server, per-channel egress contribution (bytes/s)
        self._contrib: Dict[str, Dict[str, float]] = {}
        #: per-server CPU utilization and per-channel CPU contribution
        #: (fractions of one core), tracked only under the CPU-aware
        #: extension (the paper's future work)
        self._cpu: Dict[str, float] = {}
        self._cpu_contrib: Dict[str, Dict[str, float]] = {}
        for server in servers:
            nominal = view.nominal_egress_bps(server)
            self._nominal[server] = nominal if nominal > 0 else default_nominal_bps
            self._egress[server] = view.load_ratio(server) * self._nominal[server]
            loads = view.channel_loads(server)
            self._contrib[server] = {
                channel: load.bytes_out_per_s for channel, load in loads.items()
            }
            cpu = view.cpu_utilization(server)
            self._cpu[server] = cpu
            total_msgs = sum(load.messages_out_per_s for load in loads.values())
            if cpu > 0 and total_msgs > 0:
                # Attribute CPU to channels proportionally to their
                # delivery counts (deliveries dominate publish costs).
                self._cpu_contrib[server] = {
                    channel: cpu * load.messages_out_per_s / total_msgs
                    for channel, load in loads.items()
                }
            else:
                self._cpu_contrib[server] = {}

    # ------------------------------------------------------------------
    def servers(self) -> List[str]:
        return list(self._egress)

    def add_server(self, server_id: str, nominal_bps: float) -> None:
        if server_id in self._egress:
            return
        self._egress[server_id] = 0.0
        self._nominal[server_id] = nominal_bps
        self._contrib[server_id] = {}
        self._cpu[server_id] = 0.0
        self._cpu_contrib[server_id] = {}

    def load_ratio(self, server_id: str) -> float:
        egress_ratio = self._egress[server_id] / self._nominal[server_id]
        if not self.cpu_aware:
            return egress_ratio
        # CPU-aware extension: a server is as loaded as its most
        # constrained resource.
        return max(egress_ratio, self._cpu.get(server_id, 0.0))

    def nominal(self, server_id: str) -> float:
        return self._nominal[server_id]

    def contribution(self, server_id: str, channel: str) -> float:
        return self._contrib.get(server_id, {}).get(channel, 0.0)

    def channel_total(self, channel: str, servers: Iterable[str]) -> float:
        return sum(self.contribution(s, channel) for s in servers)

    def busiest(self, servers: Iterable[str]) -> Tuple[str, float]:
        best = max(servers, key=self.load_ratio)
        return best, self.load_ratio(best)

    def least_loaded(
        self, servers: Iterable[str], exclude: Iterable[str] = ()
    ) -> Optional[str]:
        excluded = set(exclude)
        candidates = [s for s in servers if s not in excluded]
        if not candidates:
            return None
        return min(candidates, key=self.load_ratio)

    def migratable_channels(self, server_id: str, exclude: Set[str]) -> List[str]:
        """Channels on ``server_id`` by descending egress contribution."""
        contrib = self._contrib.get(server_id, {})
        channels = [c for c in contrib if c not in exclude and contrib[c] > 0]
        channels.sort(key=lambda c: contrib[c], reverse=True)
        return channels

    # ------------------------------------------------------------------
    # Hypothetical mutations
    # ------------------------------------------------------------------
    def migrate(self, channel: str, src: str, dst: str) -> float:
        """Move ``channel``'s contribution ``src`` -> ``dst``; returns it."""
        amount = self._contrib.get(src, {}).pop(channel, 0.0)
        if src in self._egress:
            self._egress[src] -= amount
        self._egress[dst] += amount
        dst_contrib = self._contrib.setdefault(dst, {})
        dst_contrib[channel] = dst_contrib.get(channel, 0.0) + amount
        cpu_amount = self._cpu_contrib.get(src, {}).pop(channel, 0.0)
        if cpu_amount:
            self._cpu[src] = self._cpu.get(src, 0.0) - cpu_amount
            self._cpu[dst] = self._cpu.get(dst, 0.0) + cpu_amount
            dst_cpu = self._cpu_contrib.setdefault(dst, {})
            dst_cpu[channel] = dst_cpu.get(channel, 0.0) + cpu_amount
        return amount

    def set_replicas(
        self, channel: str, old_servers: Iterable[str], new_servers: Sequence[str]
    ) -> None:
        """Re-spread a channel's total egress evenly over ``new_servers``.

        Both replication schemes split a channel's egress roughly evenly:
        under all-subscribers each replica carries 1/N of the publications
        to all subscribers, under all-publishers each replica carries all
        publications to 1/N of the subscribers.
        """
        total = 0.0
        cpu_total = 0.0
        for server in old_servers:
            amount = self._contrib.get(server, {}).pop(channel, 0.0)
            self._egress[server] -= amount
            total += amount
            cpu_amount = self._cpu_contrib.get(server, {}).pop(channel, 0.0)
            self._cpu[server] = self._cpu.get(server, 0.0) - cpu_amount
            cpu_total += cpu_amount
        if not new_servers:
            return
        share = total / len(new_servers)
        cpu_share = cpu_total / len(new_servers)
        for server in new_servers:
            self._egress[server] += share
            self._contrib.setdefault(server, {})[channel] = share
            self._cpu[server] = self._cpu.get(server, 0.0) + cpu_share
            if cpu_share:
                self._cpu_contrib.setdefault(server, {})[channel] = cpu_share


# ----------------------------------------------------------------------
# Step 1: channel-level rebalancing (Algorithm 1)
# ----------------------------------------------------------------------
def channel_level_rebalance(
    plan: Plan,
    view: ClusterLoadView,
    config: DynamothConfig,
    active_servers: Sequence[str],
    estimator: LoadEstimator,
) -> Tuple[Dict[str, ChannelMapping], List[str]]:
    """Decide per-channel replication (Algorithm 1).

    Returns proposed mappings (only for channels whose scheme or replica
    count should change) and trace notes.  The estimator is updated in
    place so the subsequent system-level pass sees the post-replication
    load distribution.
    """
    proposals: Dict[str, ChannelMapping] = {}
    notes: List[str] = []

    seen: Set[str] = set()
    for server in active_servers:
        seen.update(view.channel_loads(server))

    for channel in sorted(seen):
        current = plan.mapping(channel)
        totals = view.channel_totals(channel, current)
        if totals is None:
            continue
        pubs = totals.publications_per_s
        subs = totals.subscriber_count
        p_ratio = pubs / max(subs, 1)
        s_ratio = subs / max(pubs, 1.0)

        mode: ReplicationMode
        n_servers: int
        if p_ratio > config.all_subs_threshold and pubs > config.publication_threshold:
            mode = ReplicationMode.ALL_SUBSCRIBERS
            n_servers = math.ceil(p_ratio / config.all_subs_threshold)
        elif s_ratio > config.all_pubs_threshold and subs > config.subscriber_threshold:
            mode = ReplicationMode.ALL_PUBLISHERS
            n_servers = math.ceil(s_ratio / config.all_pubs_threshold)
        elif (
            pubs > config.publication_threshold
            and subs > config.subscriber_threshold
            and _exceeds_single_server(channel, current, estimator, config)
        ):
            # Corner case: publications *and* subscribers both very large.
            # All-subscribers wins because all-publishers would send every
            # publication to every server (section III-B.1).
            mode = ReplicationMode.ALL_SUBSCRIBERS
            total = estimator.channel_total(channel, active_servers)
            per_server = config.lr_safe * min(
                estimator.nominal(s) for s in active_servers
            )
            n_servers = math.ceil(total / max(per_server, 1.0))
        else:
            mode = ReplicationMode.SINGLE
            n_servers = 1

        n_servers = max(1, min(n_servers, config.max_replication_servers, len(active_servers)))
        if mode is not ReplicationMode.SINGLE:
            n_servers = max(n_servers, 2)

        if mode is current.mode and n_servers == len(current.servers):
            continue  # nothing to change

        new_servers = _select_replica_servers(
            current, mode, n_servers, active_servers, estimator
        )
        if mode is ReplicationMode.SINGLE and new_servers == list(current.servers):
            continue
        proposal = ChannelMapping(mode, tuple(new_servers))
        proposals[channel] = proposal
        estimator.set_replicas(channel, current.servers, new_servers)
        notes.append(
            f"channel {channel}: {current.mode.value}x{len(current.servers)} -> "
            f"{mode.value}x{len(new_servers)} "
            f"(pubs/s={pubs:.0f}, subs={subs}, P={p_ratio:.1f}, S={s_ratio:.1f})"
        )
    return proposals, notes


def _exceeds_single_server(
    channel: str, mapping: ChannelMapping, estimator: LoadEstimator, config: DynamothConfig
) -> bool:
    # Sum over every server the channel is observed on: during transition
    # windows the traffic may not yet sit on the mapping's servers.
    total = estimator.channel_total(channel, estimator.servers())
    capacity = max(estimator.nominal(s) for s in mapping.servers)
    return total > config.lr_high * capacity


def _select_replica_servers(
    current: ChannelMapping,
    mode: ReplicationMode,
    n_servers: int,
    active_servers: Sequence[str],
    estimator: LoadEstimator,
) -> List[str]:
    """Grow onto the least-loaded servers; shrink off the busiest first."""
    if mode is ReplicationMode.SINGLE:
        # Collapse onto the least-loaded current replica to keep locality.
        keep = min(current.servers, key=estimator.load_ratio)
        return [keep]

    chosen = list(current.servers)
    if len(chosen) > n_servers:
        # Free the busiest replicas first (section III-B.1).
        chosen.sort(key=estimator.load_ratio)
        chosen = chosen[:n_servers]
    while len(chosen) < n_servers:
        candidate = estimator.least_loaded(active_servers, exclude=chosen)
        if candidate is None:
            break
        chosen.append(candidate)
    return chosen


# ----------------------------------------------------------------------
# Step 2a: system-level high-load rebalancing (Algorithm 2)
# ----------------------------------------------------------------------
def high_load_rebalance(
    plan: Plan,
    config: DynamothConfig,
    active_servers: Sequence[str],
    estimator: LoadEstimator,
    replicated: Set[str],
) -> Tuple[Dict[str, ChannelMapping], int, List[str]]:
    """Algorithm 2: migrate busiest channels off overloaded servers.

    ``replicated`` channels are skipped -- their load is managed by the
    channel-level pass.  Returns (mapping proposals, servers to spawn,
    notes).
    """
    proposals: Dict[str, ChannelMapping] = {}
    notes: List[str] = []
    spawn = 0
    exhausted: Set[str] = set()  # servers we could not fix by migration

    for __ in range(len(active_servers) * 4):  # outer-loop safety bound
        candidates = [s for s in active_servers if s not in exhausted]
        if not candidates:
            break
        h_max, lr_max = estimator.busiest(candidates)
        if lr_max < config.lr_high:
            break

        moved_any = False
        skip: Set[str] = set(replicated)
        # Receivers are normally packed only up to LR^safe, preserving
        # headroom.  If that leaves the hotspot above LR^high and nothing
        # moved, a second *relaxed* pass allows placements up to just
        # below LR^high -- "make sure that we do not overload that
        # server" -- provided the move strictly improves on the hotspot.
        # Without the relaxed pass a single pair of oversized channels can
        # wedge the cluster (no placement fits under LR^safe although an
        # obviously better configuration exists).
        relaxed = False
        while estimator.load_ratio(h_max) >= config.lr_safe:
            channels = estimator.migratable_channels(h_max, skip)
            if not channels:
                if not relaxed and estimator.load_ratio(h_max) >= config.lr_high:
                    relaxed = True
                    skip = set(replicated)
                    continue
                break
            c_max = channels[0]
            h_min = estimator.least_loaded(active_servers, exclude=(h_max,))
            if h_min is None:
                break
            contribution = estimator.contribution(h_max, c_max)
            projected = (
                estimator.load_ratio(h_min)
                + contribution / estimator.nominal(h_min)
            )
            ceiling = config.lr_high if relaxed else config.lr_safe
            if projected >= ceiling or (
                relaxed and projected >= estimator.load_ratio(h_max)
            ):
                # this channel cannot be placed usefully; try the
                # next-busiest one
                skip.add(c_max)
                continue
            estimator.migrate(c_max, h_max, h_min)
            proposals[c_max] = ChannelMapping(ReplicationMode.SINGLE, (h_min,))
            skip.add(c_max)
            moved_any = True
            notes.append(
                f"migrate {c_max}: {h_max} -> {h_min} "
                f"({contribution:.0f} B/s, est LR[{h_max}]={estimator.load_ratio(h_max):.2f})"
            )

        if estimator.load_ratio(h_max) >= config.lr_high and not moved_any:
            # Migration cannot relieve this server; rent capacity.
            exhausted.add(h_max)
            spawn = 1
            notes.append(f"server {h_max} overloaded and unfixable by migration; requesting spawn")
        elif estimator.load_ratio(h_max) >= config.lr_safe:
            # Partial relief only -- also worth renting a server.
            exhausted.add(h_max)
            if estimator.load_ratio(h_max) >= config.lr_high:
                spawn = 1
        # else: fixed; loop continues with next-busiest server

    return proposals, spawn, notes


# ----------------------------------------------------------------------
# Step 2b: system-level low-load rebalancing
# ----------------------------------------------------------------------
def low_load_rebalance(
    plan: Plan,
    view: ClusterLoadView,
    config: DynamothConfig,
    active_servers: Sequence[str],
    bootstrap_servers: Set[str],
    estimator: LoadEstimator,
    replicated: Set[str],
) -> Tuple[Dict[str, ChannelMapping], List[str], List[str]]:
    """Drain the least-loaded removable server when the cluster is idle.

    Channels are migrated to other servers as long as the receivers stay
    below ``lr_low_target``; a server whose channels are all gone is
    decommissioned.  Bootstrap servers (the consistent-hashing fallback
    ring) are never removed.  Mirrors section III-B.4.
    """
    proposals: Dict[str, ChannelMapping] = {}
    notes: List[str] = []
    decommission: List[str] = []

    removable = [s for s in active_servers if s not in bootstrap_servers]
    if not removable or len(active_servers) <= config.min_servers:
        return proposals, decommission, notes
    if estimator.busiest(active_servers)[1] >= config.lr_low_target:
        return proposals, decommission, notes

    # Pick the least-loaded removable server that no replicated channel
    # depends on (replica shrinking is the channel-level pass's job).
    candidates = sorted(removable, key=estimator.load_ratio)
    victim: Optional[str] = None
    for server in candidates:
        blocking = [
            c
            for c in plan.channels_on(server)
            if plan.mapping(c).mode is not ReplicationMode.SINGLE
        ]
        if not blocking:
            victim = server
            break
    if victim is None:
        return proposals, decommission, notes

    remaining = [s for s in active_servers if s != victim]
    # Channels living on the victim: explicit mappings plus anything the
    # LLA observed there (CH-fallback channels resolve to bootstrap
    # servers, so they never land on a removable server implicitly).
    channels = set(plan.channels_on(victim)) | set(view.channel_loads(victim))
    channels -= replicated
    moved_all = True
    for channel in sorted(channels, key=lambda c: estimator.contribution(victim, c)):
        target = estimator.least_loaded(remaining)
        if target is None:
            moved_all = False
            break
        contribution = estimator.contribution(victim, channel)
        projected = estimator.load_ratio(target) + contribution / estimator.nominal(target)
        if projected > config.lr_low_target:
            moved_all = False
            notes.append(
                f"low-load drain of {victim} paused: {channel} would push "
                f"{target} to {projected:.2f}"
            )
            break
        estimator.migrate(channel, victim, target)
        proposals[channel] = ChannelMapping(ReplicationMode.SINGLE, (target,))
        notes.append(f"drain {channel}: {victim} -> {target}")

    if moved_all:
        decommission.append(victim)
        notes.append(f"server {victim} drained; decommissioning")
    return proposals, decommission, notes


# ----------------------------------------------------------------------
# Full two-step plan generation
# ----------------------------------------------------------------------
def generate_decision(
    plan: Plan,
    view: ClusterLoadView,
    config: DynamothConfig,
    active_servers: Sequence[str],
    bootstrap_servers: Set[str],
    default_nominal_bps: float,
    *,
    allow_scale_down: bool = True,
) -> RebalanceDecision:
    """Run channel-level then system-level rebalancing (section III-B)."""
    decision = RebalanceDecision()
    estimator = LoadEstimator(
        view, active_servers, default_nominal_bps, cpu_aware=config.cpu_aware_balancing
    )

    # Step 1: channel-level (Algorithm 1)
    channel_proposals, notes = channel_level_rebalance(
        plan, view, config, active_servers, estimator
    )
    decision.mappings.update(channel_proposals)
    decision.notes.extend(notes)

    replicated: Set[str] = {
        c for c, m in channel_proposals.items() if m.mode is not ReplicationMode.SINGLE
    }
    for channel in plan.explicit_channels():
        if channel in channel_proposals:
            continue
        if plan.mapping(channel).mode is not ReplicationMode.SINGLE:
            replicated.add(channel)

    # Step 2: system-level
    lr_values = [estimator.load_ratio(s) for s in active_servers]
    if any(lr >= config.lr_high for lr in lr_values):
        proposals, spawn, notes = high_load_rebalance(
            plan, config, active_servers, estimator, replicated
        )
        decision.mappings.update(proposals)
        decision.spawn_servers = spawn
        decision.notes.extend(notes)
    elif allow_scale_down and (
        sum(lr_values) / len(lr_values) < config.lr_low if lr_values else False
    ):
        proposals, decommission, notes = low_load_rebalance(
            plan,
            view,
            config,
            active_servers,
            bootstrap_servers,
            estimator,
            replicated,
        )
        decision.mappings.update(proposals)
        decision.decommission.extend(decommission)
        decision.notes.extend(notes)

    return decision
