"""The rebalancing-policy seam: what the balancer asks, not how it is answered.

The paper's hierarchical rebalancer (Algorithms 1 & 2) is one point in a
large design space.  :class:`RebalancePolicy` pins down the three questions
every balancer implementation must answer --

* *channel-level*: which channels should change replication scheme,
* *system-level*: which channels should migrate between servers, and
  whether to rent or drain servers,
* *unknown-channel placement*: where a channel with no usable home (its
  server died, or it was never planned) should live --

so that competing answers (:mod:`repro.core.policy.paper`,
:mod:`~repro.core.policy.greedy`, :mod:`~repro.core.policy.ewma`,
:mod:`~repro.core.policy.chbl`) are interchangeable behind one seam.  The
:class:`~repro.core.balancer.LoadBalancer` holds exactly one policy and
calls only through this interface; the offline trace-replay harness
(:mod:`repro.lab`) drives the same interface from recorded load histories.

Policies are *pure* with respect to the simulation: they read a
:class:`PolicyContext` and return a
:class:`~repro.core.rebalance.RebalanceDecision`.  A policy may keep
internal prediction state across calls (EWMA trackers, hash rings), but it
must never touch an RNG, the wall clock, or anything outside the context
-- determinism of the balancer (and of offline replay) depends on it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar, Dict, FrozenSet, List, Optional, Sequence, Tuple, Type

from repro.core.config import DynamothConfig
from repro.core.metrics import ClusterLoadView
from repro.core.plan import ChannelMapping, Plan, ReplicationMode
from repro.core.rebalance import LoadEstimator, RebalanceDecision


@dataclass(frozen=True)
class PolicyContext:
    """Everything a policy may look at when deciding.

    ``view`` is the balancer's aggregated sliding-window load picture; in
    offline replay it is a reconstructed view with identical query
    semantics.  ``allow_scale_down`` mirrors the balancer's rule that no
    server is drained while a spawn is still booting.
    """

    now: float
    plan: Plan
    view: ClusterLoadView
    config: DynamothConfig
    active_servers: Tuple[str, ...]
    bootstrap_servers: FrozenSet[str]
    default_nominal_bps: float
    allow_scale_down: bool = True

    def make_estimator(
        self, servers: Optional[Sequence[str]] = None
    ) -> LoadEstimator:
        """A fresh load estimator seeded from the context's view."""
        return LoadEstimator(
            self.view,
            self.active_servers if servers is None else servers,
            self.default_nominal_bps,
            cpu_aware=self.config.cpu_aware_balancing,
        )


@dataclass
class SystemDecision:
    """Outcome of one system-level pass (migrations + elasticity)."""

    mappings: Dict[str, ChannelMapping] = field(default_factory=dict)
    spawn_servers: int = 0
    decommission: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)


def replicated_channels(
    plan: Plan, channel_proposals: Dict[str, ChannelMapping]
) -> set[str]:
    """Channels whose load is managed by channel-level replication.

    System-level passes must skip these: moving a replica around would
    fight the channel-level scheme.  Mirrors the set construction of the
    pre-seam ``generate_decision`` exactly.
    """
    replicated = {
        c
        for c, m in channel_proposals.items()
        if m.mode is not ReplicationMode.SINGLE
    }
    for channel in plan.explicit_channels():
        if channel in channel_proposals:
            continue
        if plan.mapping(channel).mode is not ReplicationMode.SINGLE:
            replicated.add(channel)
    return replicated


class RebalancePolicy(ABC):
    """One rebalancing strategy behind the policy seam.

    Subclasses implement the two planning hooks and (optionally) override
    unknown-channel placement; :meth:`decide` composes them in the same
    two-step structure as the paper's plan generation (section III-B), so
    the ``paper`` policy is byte-identical to the pre-seam balancer and
    every other policy slots into the identical control flow.
    """

    #: Registry key (``DynamothConfig.rebalance_policy`` value).
    name: ClassVar[str] = ""
    #: Whether channel-level replication follows Algorithm 1's thresholds.
    #: The ``repro.check`` replication-soundness oracle only asserts the
    #: threshold rules against policies that claim them.
    algorithm1_replication: ClassVar[bool] = False

    def __init__(self, config: DynamothConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # The three seam hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def channel_level(
        self, ctx: PolicyContext, estimator: LoadEstimator
    ) -> Tuple[Dict[str, ChannelMapping], List[str]]:
        """Per-channel replication decisions (Algorithm 1's slot).

        Returns proposed mappings plus trace notes, and must update the
        estimator in place so the system-level pass sees the
        post-replication load distribution.
        """

    @abstractmethod
    def system_level(
        self,
        ctx: PolicyContext,
        estimator: LoadEstimator,
        replicated: set[str],
    ) -> SystemDecision:
        """Server-to-server migration and elasticity (Algorithm 2's slot)."""

    def place_unknown_channel(
        self,
        ctx: PolicyContext,
        estimator: LoadEstimator,
        channel: str,
        candidates: Sequence[str],
    ) -> Optional[str]:
        """Pick a home for a channel with no usable current server.

        Called by the balancer's plan repair (a channel's only server
        died) and by the replay harness when demand appears on an
        unplanned channel.  The default -- the least-loaded candidate --
        matches the pre-seam repair behaviour; CHBL overrides it with a
        bounded-load ring walk.
        """
        return estimator.least_loaded(candidates)

    # ------------------------------------------------------------------
    # Composition (shared by every policy)
    # ------------------------------------------------------------------
    def decide(self, ctx: PolicyContext) -> RebalanceDecision:
        """Run channel-level then system-level planning (section III-B)."""
        decision = RebalanceDecision()
        estimator = ctx.make_estimator()

        channel_proposals, notes = self.channel_level(ctx, estimator)
        decision.mappings.update(channel_proposals)
        decision.notes.extend(notes)

        replicated = replicated_channels(ctx.plan, channel_proposals)

        system = self.system_level(ctx, estimator, replicated)
        decision.mappings.update(system.mappings)
        decision.spawn_servers = system.spawn_servers
        decision.decommission.extend(system.decommission)
        decision.notes.extend(system.notes)
        return decision


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[RebalancePolicy]] = {}


def register_policy(cls: Type[RebalancePolicy]) -> Type[RebalancePolicy]:
    """Class decorator adding a policy to the registry (keyed by ``name``)."""
    if not cls.name:
        raise ValueError(f"policy class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate policy name: {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def policy_class(name: str) -> Type[RebalancePolicy]:
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown rebalance policy {name!r}; "
            f"registered: {', '.join(available_policies())}"
        )
    return cls


def make_policy(config: DynamothConfig) -> RebalancePolicy:
    """Instantiate the policy named by ``config.rebalance_policy``."""
    return policy_class(config.rebalance_policy)(config)


def available_policies() -> List[str]:
    """Registered policy names, sorted for stable CLI/report output."""
    return sorted(_REGISTRY)
