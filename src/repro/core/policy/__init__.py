"""Pluggable rebalancing policies (the balancer's decision seam).

Importing this package registers the built-in policies:

* ``paper`` -- Dynamoth's Algorithms 1 & 2 (byte-identical to the
  pre-seam balancer),
* ``least_loaded`` -- greedy busiest-channel-to-least-loaded migration,
* ``ewma_predictive`` -- trend-extrapolated load, acts before overload,
* ``headroom_pace`` -- receivers scored by projected spare capacity,
* ``chbl`` -- consistent hashing with bounded loads (Mirrokni et al.).

Select one via ``DynamothConfig.rebalance_policy``; compare them offline
with ``python -m repro.lab compare`` (see :mod:`repro.lab`).
"""

from repro.core.policy.base import (
    PolicyContext,
    RebalancePolicy,
    SystemDecision,
    available_policies,
    make_policy,
    policy_class,
    register_policy,
    replicated_channels,
)
from repro.core.policy.chbl import BoundedLoadPolicy
from repro.core.policy.ewma import EwmaPredictivePolicy
from repro.core.policy.greedy import HeadroomPacePolicy, LeastLoadedPolicy
from repro.core.policy.paper import PaperPolicy

__all__ = [
    "BoundedLoadPolicy",
    "EwmaPredictivePolicy",
    "HeadroomPacePolicy",
    "LeastLoadedPolicy",
    "PaperPolicy",
    "PolicyContext",
    "RebalancePolicy",
    "SystemDecision",
    "available_policies",
    "make_policy",
    "policy_class",
    "register_policy",
    "replicated_channels",
]
