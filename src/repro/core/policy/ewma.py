"""EWMA-predictive policy: act on where load is *going*, not where it is.

Per server the policy keeps an exponentially-weighted moving average of
the load ratio (``policy_ewma_alpha``) plus a trend term (the EWMA's own
rate of change).  The effective load used for every threshold test is

    predicted_LR = ewma + trend * policy_ewma_horizon_s

so a server that is ramping toward overload is relieved *before* it
crosses ``LR^high``, and a momentary spike that the EWMA smooths away
does not trigger churn.  Migration mechanics are shared with the greedy
policies (:func:`repro.core.policy.greedy.greedy_relief`); only the load
lens differs.
"""

from __future__ import annotations

from typing import ClassVar, Dict, Optional, Sequence

from repro.core.config import DynamothConfig
from repro.core.policy.base import PolicyContext, register_policy
from repro.core.policy.greedy import LoadFn, _GreedyBase
from repro.core.rebalance import LoadEstimator


@register_policy
class EwmaPredictivePolicy(_GreedyBase):
    """Trend-extrapolating variant of the greedy migration policy."""

    name: ClassVar[str] = "ewma_predictive"

    def __init__(self, config: DynamothConfig) -> None:
        super().__init__(config)
        self._ewma: Dict[str, float] = {}
        self._trend: Dict[str, float] = {}
        self._last_t: Optional[float] = None

    def _load_fn(self, ctx: PolicyContext, estimator: LoadEstimator) -> LoadFn:
        bias = self._update_predictions(ctx, estimator)

        def load(server: str) -> float:
            return estimator.load_ratio(server) + bias.get(server, 0.0)

        return load

    def _update_predictions(
        self, ctx: PolicyContext, estimator: LoadEstimator
    ) -> Dict[str, float]:
        """Advance per-server EWMA/trend state; return predicted-load biases.

        The bias (predicted minus measured) is what gets *added* to the
        live estimator ratio, so hypothetical migrations during the pass
        shift predicted loads exactly as they shift measured ones.
        """
        alpha = ctx.config.policy_ewma_alpha
        horizon = ctx.config.policy_ewma_horizon_s
        now = ctx.now
        if self._last_t is not None and now == self._last_t:
            # Repair and decide can both run at the same sim time; the
            # EWMA must advance once per time step, so re-derive biases
            # from the already-updated state.
            return {
                server: (
                    self._ewma.get(server, estimator.load_ratio(server))
                    + self._trend.get(server, 0.0) * horizon
                    - estimator.load_ratio(server)
                )
                for server in ctx.active_servers
            }
        dt = None if self._last_t is None else now - self._last_t
        bias: Dict[str, float] = {}
        next_ewma: Dict[str, float] = {}
        next_trend: Dict[str, float] = {}
        for server in ctx.active_servers:
            lr = estimator.load_ratio(server)
            prev_ewma = self._ewma.get(server)
            if prev_ewma is None:
                ewma = lr
                trend = 0.0
            else:
                ewma = alpha * lr + (1.0 - alpha) * prev_ewma
                if dt is not None and dt > 0:
                    trend = (ewma - prev_ewma) / dt
                else:
                    trend = self._trend.get(server, 0.0)
            next_ewma[server] = ewma
            next_trend[server] = trend
            predicted = ewma + trend * horizon
            bias[server] = predicted - lr
        # Servers that left the pool are forgotten wholesale.
        self._ewma = next_ewma
        self._trend = next_trend
        self._last_t = now
        return bias

    def place_unknown_channel(
        self,
        ctx: PolicyContext,
        estimator: LoadEstimator,
        channel: str,
        candidates: Sequence[str],
    ) -> Optional[str]:
        load = self._load_fn(ctx, estimator)
        pool = list(candidates)
        if not pool:
            return None
        return min(pool, key=load)
