"""Greedy migration policies: ``least_loaded`` and ``headroom_pace``.

Both keep whatever replication schemes already exist (their channel-level
pass proposes nothing) and fight hotspots purely by migrating SINGLE
channels.  They differ in how a receiver is chosen:

* ``least_loaded`` always packs onto the server with the lowest current
  load ratio -- the textbook greedy baseline.
* ``headroom_pace`` scores receivers by *projected* headroom: how much
  spare capacity a server will still have after its recent load growth
  rate (an EWMA of ``dLR/dt``) has run for ``policy_pace_weight`` more
  seconds.  A near-idle server whose load is ramping fast scores worse
  than a busier but flat one, which matters under flash crowds where the
  least-loaded server this tick is everyone's favourite target next tick.

Both reuse the paper's low-load draining for scale-down, so server-hour
accounting stays comparable across policies.
"""

from __future__ import annotations

from typing import Callable, ClassVar, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import DynamothConfig
from repro.core.plan import ChannelMapping, ReplicationMode
from repro.core.policy.base import (
    PolicyContext,
    RebalancePolicy,
    SystemDecision,
    register_policy,
)
from repro.core.rebalance import LoadEstimator, low_load_rebalance

LoadFn = Callable[[str], float]
ReceiverFn = Callable[[Sequence[str], Tuple[str, ...]], Optional[str]]


def greedy_relief(
    ctx: PolicyContext,
    estimator: LoadEstimator,
    replicated: Set[str],
    load: LoadFn,
    pick_receiver: ReceiverFn,
    *,
    tag: str,
) -> SystemDecision:
    """Move the busiest channels off hotspots until every server is safe.

    Shares the paper's Algorithm-2 skeleton (hotspot selection, skip set,
    strict-improvement check) but with a pluggable effective-load function
    and receiver chooser, and without the relaxed second pass: receivers
    are never packed past ``lr_safe``.  Spawns one server whenever a
    hotspot cannot be brought under ``lr_high`` by migration.
    """
    cfg = ctx.config
    out = SystemDecision()
    active = list(ctx.active_servers)
    exhausted: Set[str] = set()

    for __ in range(len(active) * 4):  # outer-loop safety bound
        candidates = [s for s in active if s not in exhausted]
        if not candidates:
            break
        src = max(candidates, key=load)
        if load(src) < cfg.lr_high:
            break

        skip: Set[str] = set(replicated)
        while load(src) >= cfg.lr_safe:
            channels = estimator.migratable_channels(src, skip)
            if not channels:
                break
            c_max = channels[0]
            dst = pick_receiver(active, (src,))
            if dst is None:
                break
            contribution = estimator.contribution(src, c_max)
            projected = load(dst) + contribution / estimator.nominal(dst)
            if projected >= cfg.lr_safe or projected >= load(src):
                skip.add(c_max)  # does not fit usefully; try next-busiest
                continue
            estimator.migrate(c_max, src, dst)
            out.mappings[c_max] = ChannelMapping(ReplicationMode.SINGLE, (dst,))
            out.notes.append(
                f"{tag}: migrate {c_max}: {src} -> {dst} "
                f"({contribution:.0f} B/s, est LR[{src}]={load(src):.2f})"
            )

        if load(src) >= cfg.lr_high:
            exhausted.add(src)
            out.spawn_servers = 1
            out.notes.append(
                f"{tag}: server {src} still over LR^high after migration; "
                "requesting spawn"
            )
        elif load(src) >= cfg.lr_safe:
            exhausted.add(src)
    return out


def drain_when_idle(
    ctx: PolicyContext,
    estimator: LoadEstimator,
    replicated: Set[str],
    load: Optional[LoadFn] = None,
) -> Tuple[Dict[str, ChannelMapping], List[str], List[str]]:
    """The paper's low-load drain, gated on mean effective load < LR^low."""
    effective = load if load is not None else estimator.load_ratio
    values = [effective(s) for s in ctx.active_servers]
    if not values or not ctx.allow_scale_down:
        return {}, [], []
    if sum(values) / len(values) >= ctx.config.lr_low:
        return {}, [], []
    return low_load_rebalance(
        ctx.plan,
        ctx.view,
        ctx.config,
        ctx.active_servers,
        set(ctx.bootstrap_servers),
        estimator,
        replicated,
    )


class _GreedyBase(RebalancePolicy):
    """Shared skeleton: no channel-level proposals, relief then drain."""

    def channel_level(
        self, ctx: PolicyContext, estimator: LoadEstimator
    ) -> Tuple[Dict[str, ChannelMapping], List[str]]:
        return {}, []

    def _load_fn(self, ctx: PolicyContext, estimator: LoadEstimator) -> LoadFn:
        return estimator.load_ratio

    def _receiver_fn(
        self, ctx: PolicyContext, estimator: LoadEstimator, load: LoadFn
    ) -> ReceiverFn:
        def pick(candidates: Sequence[str], exclude: Tuple[str, ...]) -> Optional[str]:
            pool = [s for s in candidates if s not in exclude]
            if not pool:
                return None
            return min(pool, key=load)

        return pick

    def system_level(
        self,
        ctx: PolicyContext,
        estimator: LoadEstimator,
        replicated: set[str],
    ) -> SystemDecision:
        load = self._load_fn(ctx, estimator)
        decision = greedy_relief(
            ctx,
            estimator,
            replicated,
            load,
            self._receiver_fn(ctx, estimator, load),
            tag=self.name,
        )
        if not decision.mappings and not decision.spawn_servers:
            proposals, decommission, notes = drain_when_idle(
                ctx, estimator, replicated, load
            )
            decision.mappings.update(proposals)
            decision.decommission.extend(decommission)
            decision.notes.extend(notes)
        return decision


@register_policy
class LeastLoadedPolicy(_GreedyBase):
    """Greedy baseline: busiest channel moves to the least-loaded server."""

    name: ClassVar[str] = "least_loaded"


@register_policy
class HeadroomPacePolicy(_GreedyBase):
    """Headroom/pace scoring: prefer receivers with spare *future* capacity.

    Keeps an EWMA of each server's load-ratio growth rate (its *pace*,
    in LR/s) across decide calls.  Effective load is the measured ratio
    plus ``pace * policy_pace_weight`` (only positive pace penalises --
    cooling servers are judged by their measured load), so a fast-ramping
    server is treated as already carrying the load it is about to have.
    """

    name: ClassVar[str] = "headroom_pace"

    #: smoothing for the pace EWMA (fixed; the *horizon* is the knob)
    PACE_ALPHA: ClassVar[float] = 0.5

    def __init__(self, config: DynamothConfig) -> None:
        super().__init__(config)
        self._last_lr: Dict[str, float] = {}
        self._pace: Dict[str, float] = {}
        self._last_t: Optional[float] = None

    def _load_fn(self, ctx: PolicyContext, estimator: LoadEstimator) -> LoadFn:
        self._update_pace(ctx, estimator)
        weight = ctx.config.policy_pace_weight
        pace = self._pace

        def load(server: str) -> float:
            return estimator.load_ratio(server) + max(pace.get(server, 0.0), 0.0) * weight

        return load

    def _update_pace(self, ctx: PolicyContext, estimator: LoadEstimator) -> None:
        now = ctx.now
        if self._last_t is not None and now == self._last_t:
            return  # repair + decide at the same sim time: advance once
        dt = None if self._last_t is None else now - self._last_t
        current = {s: estimator.load_ratio(s) for s in ctx.active_servers}
        for server in ctx.active_servers:
            lr = current[server]
            prev = self._last_lr.get(server)
            if prev is not None and dt is not None and dt > 0:
                rate = (lr - prev) / dt
                old = self._pace.get(server, 0.0)
                self._pace[server] = (
                    self.PACE_ALPHA * rate + (1.0 - self.PACE_ALPHA) * old
                )
        # Forget servers that left the pool; adopt newcomers with zero pace.
        self._last_lr = current
        self._pace = {s: self._pace.get(s, 0.0) for s in ctx.active_servers}
        self._last_t = now

    def place_unknown_channel(
        self,
        ctx: PolicyContext,
        estimator: LoadEstimator,
        channel: str,
        candidates: Sequence[str],
    ) -> Optional[str]:
        load = self._load_fn(ctx, estimator)
        pool = list(candidates)
        if not pool:
            return None
        return min(pool, key=load)
