"""Consistent Hashing with Bounded Loads (CHBL) as a rebalancing policy.

Mirrokni et al. ("Consistent Hashing with Bounded Loads", SODA 2018, see
PAPERS.md): hash every item onto a ring, but cap each server's load at
``(1 + epsilon)`` times its fair share; an item whose ring-home is full
walks clockwise to the first server with spare bounded capacity.  The
bound makes the worst-case server load provably close to average while
keeping the ring's small-movement property (changing the pool only
remaps O(1/N) of the channels).

Translated to Dynamoth:

* *fair share* is capacity-weighted -- server ``i``'s bound is
  ``(1 + eps) * total_egress * nominal_i / sum(nominal)`` bytes/s, so a
  beefier server legitimately holds more channels;
* *placement* (:meth:`place_unknown_channel`) walks the ring from the
  channel's hash and returns the first server whose bounded capacity
  still fits the channel;
* *rebalancing* only touches channels on servers that exceed their
  bound, moving them to their own bounded walk target -- channels on
  within-bound servers never move, which keeps churn low by
  construction;
* *elasticity*: a spawn is requested when even the bound itself implies
  unsafe load (``(1+eps) * avg_LR >= LR^high``: no walk can fix that) or
  when an over-bound channel has no in-bound target; draining reuses the
  paper's low-load pass.

Replicated channels (non-SINGLE mappings) are left to whatever scheme
created them, exactly like the other non-paper policies.
"""

from __future__ import annotations

from typing import ClassVar, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import DynamothConfig
from repro.core.hashing import ConsistentHashRing
from repro.core.plan import ChannelMapping, ReplicationMode
from repro.core.policy.base import (
    PolicyContext,
    RebalancePolicy,
    SystemDecision,
    register_policy,
)
from repro.core.policy.greedy import drain_when_idle
from repro.core.rebalance import LoadEstimator


@register_policy
class BoundedLoadPolicy(RebalancePolicy):
    """epsilon-bounded consistent-hashing placement and rebalancing."""

    name: ClassVar[str] = "chbl"

    def __init__(self, config: DynamothConfig) -> None:
        super().__init__(config)
        self._ring: Optional[ConsistentHashRing] = None
        self._ring_members: Optional[frozenset[str]] = None

    # ------------------------------------------------------------------
    # Ring maintenance
    # ------------------------------------------------------------------
    def _ring_for(self, active_servers: Sequence[str]) -> ConsistentHashRing:
        """The policy's own ring over the *current* pool.

        Rebuilt (in sorted order, so the ring is identical regardless of
        how the membership change arrived) only when the pool actually
        changes -- consistent hashing's stability guarantee depends on
        the ring surviving across decide calls.
        """
        members = frozenset(active_servers)
        if self._ring is None or members != self._ring_members:
            self._ring = ConsistentHashRing(
                sorted(members), vnodes=self.config.vnodes_per_server
            )
            self._ring_members = members
        return self._ring

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def _bounds(
        self, estimator: LoadEstimator, active_servers: Sequence[str]
    ) -> Dict[str, float]:
        """Per-server egress bound: (1 + eps) * capacity-weighted share."""
        eps = self.config.chbl_epsilon
        total = sum(
            estimator.load_ratio(s) * estimator.nominal(s) for s in active_servers
        )
        capacity = sum(estimator.nominal(s) for s in active_servers)
        if capacity <= 0:
            return {s: 0.0 for s in active_servers}
        return {
            s: (1.0 + eps) * total * estimator.nominal(s) / capacity
            for s in active_servers
        }

    def _bounded_walk(
        self,
        ring: ConsistentHashRing,
        estimator: LoadEstimator,
        bounds: Dict[str, float],
        channel: str,
        amount: float,
        exclude: Tuple[str, ...] = (),
    ) -> Optional[str]:
        """First server clockwise of ``channel`` that fits ``amount``."""
        for server in ring.lookup_n(channel, len(ring)):
            if server in exclude:
                continue
            egress = estimator.load_ratio(server) * estimator.nominal(server)
            if egress + amount <= bounds.get(server, 0.0):
                return server
        return None

    # ------------------------------------------------------------------
    # Seam hooks
    # ------------------------------------------------------------------
    def channel_level(
        self, ctx: PolicyContext, estimator: LoadEstimator
    ) -> Tuple[Dict[str, ChannelMapping], List[str]]:
        return {}, []

    def system_level(
        self,
        ctx: PolicyContext,
        estimator: LoadEstimator,
        replicated: set[str],
    ) -> SystemDecision:
        out = SystemDecision()
        cfg = self.config
        active = list(ctx.active_servers)
        if not active:
            return out
        ring = self._ring_for(active)
        bounds = self._bounds(estimator, active)

        # Even a perfectly bounded assignment would be unsafe: the bound
        # itself sits above LR^high on some server.  Rent capacity first;
        # shuffling channels cannot help.
        over_high = any(
            bounds[s] >= cfg.lr_high * estimator.nominal(s) for s in active
        )
        if over_high and len(active) > 0:
            avg_lr = sum(estimator.load_ratio(s) for s in active) / len(active)
            if avg_lr * (1.0 + cfg.chbl_epsilon) >= cfg.lr_high:
                out.spawn_servers = 1
                out.notes.append(
                    f"chbl: bound ((1+{cfg.chbl_epsilon:g}) x fair share) "
                    "exceeds LR^high; requesting spawn"
                )

        # Relocate channels off over-bound servers, busiest first.
        overloaded = [
            s
            for s in active
            if estimator.load_ratio(s) * estimator.nominal(s) > bounds[s]
        ]
        overloaded.sort(
            key=lambda s: estimator.load_ratio(s) * estimator.nominal(s) - bounds[s],
            reverse=True,
        )
        unplaceable = False
        for server in overloaded:
            skip: Set[str] = set(replicated)
            while (
                estimator.load_ratio(server) * estimator.nominal(server)
                > bounds[server]
            ):
                channels = estimator.migratable_channels(server, skip)
                if not channels:
                    break
                channel = channels[0]
                amount = estimator.contribution(server, channel)
                target = self._bounded_walk(
                    ring, estimator, bounds, channel, amount, exclude=(server,)
                )
                if target is None:
                    unplaceable = True
                    skip.add(channel)
                    continue
                estimator.migrate(channel, server, target)
                out.mappings[channel] = ChannelMapping(
                    ReplicationMode.SINGLE, (target,)
                )
                skip.add(channel)
                out.notes.append(
                    f"chbl: rebound {channel}: {server} -> {target} "
                    f"({amount:.0f} B/s)"
                )
        if unplaceable and not out.spawn_servers:
            out.spawn_servers = 1
            out.notes.append(
                "chbl: over-bound channel with no in-bound target; "
                "requesting spawn"
            )

        if out.mappings or out.spawn_servers:
            return out

        proposals, decommission, notes = drain_when_idle(
            ctx, estimator, replicated
        )
        out.mappings.update(proposals)
        out.decommission.extend(decommission)
        out.notes.extend(notes)
        return out

    def place_unknown_channel(
        self,
        ctx: PolicyContext,
        estimator: LoadEstimator,
        channel: str,
        candidates: Sequence[str],
    ) -> Optional[str]:
        pool = list(candidates)
        if not pool:
            return None
        ring = self._ring_for(pool)
        bounds = self._bounds(estimator, pool)
        amount = estimator.channel_total(channel, estimator.servers())
        target = self._bounded_walk(ring, estimator, bounds, channel, amount)
        if target is not None:
            return target
        # Every server is over bound (e.g. the channel's own demand dwarfs
        # the bound) -- fall back to the least-loaded candidate.
        return estimator.least_loaded(pool)
