"""The paper's hierarchical rebalancer behind the policy seam.

This policy is a *pure delegation* to :mod:`repro.core.rebalance` -- the
hooks call the exact Algorithm 1 / Algorithm 2 / low-load-drain functions
with the exact gating that ``generate_decision`` composes, so plans
produced through the seam are byte-identical to the pre-seam balancer
(asserted by the seam-equivalence tests and the CI ``policy-lab`` gate).
Any behavioural change to the paper's algorithms belongs in
:mod:`repro.core.rebalance`, not here.
"""

from __future__ import annotations

from typing import ClassVar, Dict, List, Tuple

from repro.core.plan import ChannelMapping
from repro.core.policy.base import (
    PolicyContext,
    RebalancePolicy,
    SystemDecision,
    register_policy,
)
from repro.core.rebalance import (
    LoadEstimator,
    channel_level_rebalance,
    high_load_rebalance,
    low_load_rebalance,
)


@register_policy
class PaperPolicy(RebalancePolicy):
    """Dynamoth's Algorithms 1 & 2 plus low-load draining (section III-B)."""

    name: ClassVar[str] = "paper"
    algorithm1_replication: ClassVar[bool] = True

    def channel_level(
        self, ctx: PolicyContext, estimator: LoadEstimator
    ) -> Tuple[Dict[str, ChannelMapping], List[str]]:
        return channel_level_rebalance(
            ctx.plan, ctx.view, ctx.config, ctx.active_servers, estimator
        )

    def system_level(
        self,
        ctx: PolicyContext,
        estimator: LoadEstimator,
        replicated: set[str],
    ) -> SystemDecision:
        decision = SystemDecision()
        lr_values = [estimator.load_ratio(s) for s in ctx.active_servers]
        if any(lr >= ctx.config.lr_high for lr in lr_values):
            proposals, spawn, notes = high_load_rebalance(
                ctx.plan, ctx.config, ctx.active_servers, estimator, replicated
            )
            decision.mappings.update(proposals)
            decision.spawn_servers = spawn
            decision.notes.extend(notes)
        elif ctx.allow_scale_down and (
            sum(lr_values) / len(lr_values) < ctx.config.lr_low
            if lr_values
            else False
        ):
            proposals, decommission, notes = low_load_rebalance(
                ctx.plan,
                ctx.view,
                ctx.config,
                ctx.active_servers,
                set(ctx.bootstrap_servers),
                estimator,
                replicated,
            )
            decision.mappings.update(proposals)
            decision.decommission.extend(decommission)
            decision.notes.extend(notes)
        return decision
