"""Plans: the channel -> servers lookup structure at the heart of Dynamoth.

A :class:`Plan` is "a more elaborate version of a lookup table where the
keys are the channels and the values are the list of servers that should be
used for each channel" (section II-A), extended with the channel-level
replication mode.  A channel without an explicit entry falls back to
consistent hashing over the bootstrap ring ("plan 0", section II-C).

Every :class:`ChannelMapping` carries the plan version at which it last
changed; publications embed the version their publisher acted on, which is
how dispatchers detect stale publishers during reconfiguration.
"""

from __future__ import annotations

import enum
from random import Random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.hashing import ConsistentHashRing


class ReplicationMode(enum.Enum):
    """How a channel is spread over its servers (Figure 2)."""

    #: One server handles everything (Figure 2a).
    SINGLE = "single"
    #: Subscribers subscribe on *all* servers; each publication goes to one
    #: random server.  For publication-heavy channels (Figure 2b).
    ALL_SUBSCRIBERS = "all-subscribers"
    #: Publishers publish to *all* servers; each subscriber subscribes on
    #: one.  For subscriber-heavy channels (Figure 2c).
    ALL_PUBLISHERS = "all-publishers"


@dataclass(frozen=True)
class ChannelMapping:
    """The servers (and scheme) serving one channel.

    ``version`` is the plan version at which this mapping last changed;
    version 0 denotes the consistent-hashing fallback.
    """

    mode: ReplicationMode
    servers: Tuple[str, ...]
    version: int = 0

    def __post_init__(self) -> None:
        if not self.servers:
            raise ValueError("a mapping needs at least one server")
        if len(set(self.servers)) != len(self.servers):
            raise ValueError(f"duplicate servers in mapping: {self.servers}")
        if self.mode is ReplicationMode.SINGLE and len(self.servers) != 1:
            raise ValueError("SINGLE mapping must have exactly one server")
        if self.mode is not ReplicationMode.SINGLE and len(self.servers) < 2:
            raise ValueError(f"{self.mode.value} mapping needs >= 2 servers")

    # ------------------------------------------------------------------
    # Routing rules (Figure 2)
    # ------------------------------------------------------------------
    def publish_targets(self, rng: Random) -> Tuple[str, ...]:
        """Servers a publisher must send one publication to."""
        if self.mode is ReplicationMode.ALL_PUBLISHERS:
            return self.servers
        if self.mode is ReplicationMode.ALL_SUBSCRIBERS:
            return (rng.choice(self.servers),)
        return self.servers  # SINGLE: the one server

    def subscribe_targets(self, rng: Random) -> Tuple[str, ...]:
        """Servers a subscriber must hold subscriptions on."""
        if self.mode is ReplicationMode.ALL_SUBSCRIBERS:
            return self.servers
        if self.mode is ReplicationMode.ALL_PUBLISHERS:
            return (rng.choice(self.servers),)
        return self.servers

    def is_valid_subscription_set(self, subscribed: Iterable[str]) -> bool:
        """Whether a subscriber holding ``subscribed`` needs no change."""
        held = set(subscribed)
        if not held <= set(self.servers):
            return False
        if self.mode is ReplicationMode.ALL_SUBSCRIBERS:
            return held == set(self.servers)
        return len(held) == 1

    def same_assignment(self, other: "ChannelMapping") -> bool:
        """Equality ignoring the version stamp."""
        return self.mode is other.mode and set(self.servers) == set(other.servers)

    # ------------------------------------------------------------------
    # Wire format (JSON-safe dicts; used by trace tooling and repro.check)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode.value,
            "servers": list(self.servers),
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChannelMapping":
        return cls(
            ReplicationMode(data["mode"]),
            tuple(data["servers"]),
            int(data.get("version", 0)),
        )


class Plan:
    """An immutable global channel assignment.

    Channels absent from ``mappings`` resolve through the bootstrap
    consistent-hashing ring with ``version=0``.
    """

    __slots__ = ("version", "_mappings", "ring", "active_servers")

    def __init__(
        self,
        version: int,
        mappings: Mapping[str, ChannelMapping],
        ring: ConsistentHashRing,
        active_servers: Tuple[str, ...],
    ) -> None:
        self.version = version
        self._mappings: Dict[str, ChannelMapping] = dict(mappings)
        self.ring = ring
        #: Servers currently rented; a mapping may only reference these.
        self.active_servers = tuple(active_servers)
        for channel, mapping in self._mappings.items():
            unknown = set(mapping.servers) - set(active_servers)
            if unknown:
                raise ValueError(
                    f"mapping for {channel!r} references inactive servers {sorted(unknown)}"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def bootstrap(cls, servers: Iterable[str], vnodes: int = 64) -> "Plan":
        """"Plan 0": no explicit mappings, pure consistent hashing."""
        servers = tuple(servers)
        ring = ConsistentHashRing(servers, vnodes=vnodes)
        return cls(0, {}, ring, servers)

    def evolve(
        self,
        *,
        mappings: Optional[Mapping[str, ChannelMapping]] = None,
        active_servers: Optional[Iterable[str]] = None,
    ) -> "Plan":
        """Produce the next plan version with updated state.

        Mappings passed with a stale version stamp are re-stamped with the
        new plan version *iff* they differ from the current assignment;
        unchanged assignments keep their original stamp so clients are not
        needlessly notified.
        """
        new_version = self.version + 1
        merged = dict(self._mappings)
        if mappings is not None:
            for channel, proposed in mappings.items():
                current = self.mapping(channel)
                if current.same_assignment(proposed):
                    continue
                merged[channel] = ChannelMapping(
                    proposed.mode, proposed.servers, new_version
                )
        servers = tuple(active_servers) if active_servers is not None else self.active_servers
        return Plan(new_version, merged, self.ring, servers)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def mapping(self, channel: str) -> ChannelMapping:
        """The mapping for ``channel`` (explicit or CH fallback)."""
        explicit = self._mappings.get(channel)
        if explicit is not None:
            return explicit
        return ChannelMapping(ReplicationMode.SINGLE, (self.ring.lookup(channel),), 0)

    def explicit_mapping(self, channel: str) -> Optional[ChannelMapping]:
        return self._mappings.get(channel)

    def explicit_channels(self) -> List[str]:
        return list(self._mappings)

    def servers_for(self, channel: str) -> Tuple[str, ...]:
        return self.mapping(channel).servers

    def channels_on(self, server_id: str) -> List[str]:
        """Explicitly mapped channels that involve ``server_id``."""
        return [c for c, m in self._mappings.items() if server_id in m.servers]

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot; :meth:`from_dict` round-trips it losslessly.

        The ring is stored as its member servers plus the vnode count --
        placement is derived from stable md5 hashing, so rebuilding the
        ring from membership reproduces the identical point set.
        """
        return {
            "version": self.version,
            "active_servers": list(self.active_servers),
            "ring": {"servers": self.ring.servers, "vnodes": self.ring.vnodes},
            "mappings": {
                channel: self._mappings[channel].to_dict()
                for channel in sorted(self._mappings)
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Plan":
        ring_spec = data["ring"]
        ring = ConsistentHashRing(ring_spec["servers"], vnodes=ring_spec["vnodes"])
        mappings = {
            channel: ChannelMapping.from_dict(raw)
            for channel, raw in data["mappings"].items()
        }
        return cls(
            int(data["version"]), mappings, ring, tuple(data["active_servers"])
        )

    def diff(self, newer: "Plan") -> Dict[str, Tuple[ChannelMapping, ChannelMapping]]:
        """Channels whose assignment differs between ``self`` and ``newer``.

        Returns ``{channel: (old_mapping, new_mapping)}``.  Only channels
        explicitly mapped in at least one of the two plans are considered
        (a channel in neither is CH-resolved identically by both).
        """
        changed: Dict[str, Tuple[ChannelMapping, ChannelMapping]] = {}
        # sorted so every consumer iterates deterministically regardless
        # of the process's string-hash seed
        candidates = sorted(set(self._mappings) | set(newer._mappings))
        for channel in candidates:
            old = self.mapping(channel)
            new = newer.mapping(channel)
            if not old.same_assignment(new):
                changed[channel] = (old, new)
        return changed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Plan v{self.version} explicit={len(self._mappings)} "
            f"servers={len(self.active_servers)}>"
        )
