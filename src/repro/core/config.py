"""All Dynamoth tunables in one place.

The paper states that "the values of the various threshold parameters were
determined empirically based on the capabilities of the machines at our
disposal"; the defaults here are likewise calibrated against the broker
resource model in :class:`repro.broker.BrokerConfig` so that the paper's
experiment shapes are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Delivery-guarantee tiers of the opt-in reliability layer
#: (``repro.core.reliability``), weakest first.
DELIVERY_TIERS = ("at_most_once", "at_least_once", "exactly_once")


@dataclass
class DynamothConfig:
    """Thresholds and timing parameters of the Dynamoth middleware.

    Attributes
    ----------
    lr_high:
        ``LR^high`` -- a server whose load ratio exceeds this triggers a
        high-load rebalancing (Algorithm 2).
    lr_safe:
        ``LR^safe`` -- the target Algorithm 2 migrates channels until the
        overloaded server's *estimated* load ratio drops below.
    lr_low:
        Global average load ratio below which a low-load rebalancing may
        free servers.
    lr_low_target:
        When draining a server during low-load rebalancing, receiving
        servers must stay below this estimated load ratio.
    t_wait_s:
        ``T_wait`` -- minimum seconds between two plan generations, so the
        configuration overhead of one change settles before the next.
    lla_report_interval_s:
        How often each Local Load Analyzer ships its aggregate metrics to
        the load balancer (the paper's time unit ``t`` is one second).
    lb_eval_interval_s:
        How often the load balancer re-evaluates the cluster state.
    load_window_s:
        Sliding window over which the LB averages reported loads before
        deciding (smooths out per-second noise).
    all_subs_threshold:
        ``AllSubs_threshold`` of Algorithm 1 -- publications-per-subscriber
        ratio beyond which the *all-subscribers* scheme activates.
    publication_threshold:
        Minimum publications/second before all-subscribers replication is
        considered at all.
    all_pubs_threshold:
        ``AllPubs_threshold`` -- subscribers-per-publication ratio beyond
        which the *all-publishers* scheme activates.
    subscriber_threshold:
        Minimum subscriber count before all-publishers replication is
        considered.
    max_replication_servers:
        Upper bound on ``N_servers`` for one channel.
    plan_entry_timeout_s:
        The client/dispatcher timer of section IV-A.5: a client drops idle
        plan entries, and a dispatcher stops forwarding for a moved
        channel, after this long without traffic.
    resubscribe_grace_s:
        After subscribing on a channel's new server, a client waits this
        long before unsubscribing from the old one.  (Robustness addition
        over the paper's "subscribe then unsubscribe immediately": it
        closes the race where a publication processed on the new server
        after forwarding stopped would miss the still-moving subscriber.
        Duplicates this may cause are absorbed by message-id dedup.)
    spawn_delay_s:
        Time for the cloud to boot a newly rented pub/sub server.
    max_servers:
        Hard cap on the rented pool size (8 in the paper's Experiment 2).
    min_servers:
        Never scale below this many servers (the bootstrap set, which also
        forms the consistent-hashing fallback ring, is never despawned).
    vnodes_per_server:
        Virtual identifiers per server on the consistent-hashing ring.
    """

    # --- load ratio thresholds (eq. 1) ---
    lr_high: float = 0.95
    lr_safe: float = 0.80
    lr_low: float = 0.40
    lr_low_target: float = 0.70

    # --- timing ---
    t_wait_s: float = 10.0
    lla_report_interval_s: float = 1.0
    lb_eval_interval_s: float = 1.0
    load_window_s: float = 5.0

    # --- channel-level replication (Algorithm 1) ---
    all_subs_threshold: float = 2000.0
    publication_threshold: float = 1000.0
    all_pubs_threshold: float = 25.0
    subscriber_threshold: float = 300.0
    max_replication_servers: int = 8

    # --- reconfiguration ---
    plan_entry_timeout_s: float = 30.0
    resubscribe_grace_s: float = 0.25

    # --- elasticity ---
    spawn_delay_s: float = 5.0
    max_servers: int = 8
    min_servers: int = 1

    # --- failure detection & recovery (repro.faults subsystem) ---
    #: heartbeat-based failure detection in the load balancer: a monitored
    #: server (one that has reported at least once) silent for this long is
    #: *suspected*...
    heartbeat_suspect_s: float = 3.0
    #: ...and a suspect silent for this much longer is *confirmed* failed,
    #: triggering plan repair.  Detection only ever acts when reports stop
    #: arriving, so it is safe to leave on for failure-free runs.
    heartbeat_confirm_s: float = 2.0
    #: whether the balancer runs heartbeat detection at all
    failure_detection: bool = True
    #: rent a replacement server after confirming a failure (in addition
    #: to the min_servers floor, which always forces one)
    replace_failed_servers: bool = False
    #: a confirmed-failed server that resumes reporting (e.g. its LLA was
    #: only stalled) is re-admitted to the pool; this TTL bounds how long
    #: clients keep refusing to route to a server they found dead.
    failed_server_ttl_s: float = 60.0
    #: client-side liveness probing: PING each subscribed-on server this
    #: often (``None`` disables probing -- the default, because pong
    #: traffic changes measured egress and therefore plans in runs that
    #: do not exercise failures).
    client_ping_interval_s: Optional[float] = None
    #: consecutive unanswered pings before the client declares the server
    #: dead and fails over its subscriptions
    client_ping_miss_limit: int = 3
    #: seconds a recovering client waits for a SubscribeAck before
    #: treating the target server as dead too and retrying elsewhere
    subscribe_ack_timeout_s: float = 2.0
    #: exponential resubscribe backoff: base * 2^attempt, capped
    reconnect_backoff_base_s: float = 0.5
    reconnect_backoff_max_s: float = 10.0
    #: dispatcher-side repair buffering: a repaired channel's new home
    #: holds publications for this long (and at most this many) after the
    #: repair plan arrives, replaying them when the first recovering
    #: subscriber resubscribes.
    repair_buffer_s: float = 5.0
    repair_buffer_max_msgs: int = 64
    #: test-only kill switch for the dispatcher's repair-buffer replay.
    #: Exists so the ``repro.check`` property suite can verify its own
    #: oracles catch a real loss bug; production code never disables it.
    repair_replay_enabled: bool = True

    # --- reliable delivery tier (repro.core.reliability) ---
    #: delivery guarantee for application publications: ``at_most_once``
    #: (the base semantics -- the reliability layer is entirely inert),
    #: ``at_least_once`` (broker-side sequencing + bounded replay cache +
    #: client gap repair), or ``exactly_once`` (at-least-once with
    #: replayed duplicates suppressed via seq watermarks and msg-id dedup).
    delivery_tier: str = "at_most_once"
    #: per-channel causal ordering (VCube-PS-style): publications carry
    #: publisher FIFO counters + dependency snapshots; clients park
    #: deliveries until their causal dependencies have been delivered.
    causal_order: bool = False
    #: replay cache budgets per (server, channel): max cached messages and
    #: max cached payload bytes.  Either at zero degrades a reliable tier
    #: to plain at-most-once (nothing is stamped or cached).
    replay_cache_max_msgs: int = 256
    replay_cache_max_bytes: int = 262144
    #: minimum seconds between two replay requests for the same stream
    replay_retry_cooldown_s: float = 1.0
    #: causal mode: how long an out-of-order delivery may stay parked
    #: before the channel is force-flushed in arrival order
    causal_park_timeout_s: float = 2.0
    #: test-only kill switch for the broker's replay path (sequencing
    #: stays on).  Exists so the ``repro.check`` gap-free oracle can be
    #: shown to catch a real loss bug; production never disables it.
    reliable_replay_enabled: bool = True

    # --- consistent hashing ---
    vnodes_per_server: int = 64

    # --- extensions (the paper's future-work directions) ---
    #: factor CPU utilization into load ratios: a server is as loaded as
    #: its most constrained resource ("integrate CPU load into our load
    #: balancing algorithms")
    cpu_aware_balancing: bool = False
    #: push every mapping change to every connected client immediately
    #: instead of lazily.  This is the strawman the paper argues against
    #: ("sending a new global plan to all clients at reconfiguration time
    #: would create a huge message overhead"); it exists here for the
    #: ablation benchmark that quantifies that overhead.
    eager_plan_push: bool = False

    # --- rebalancing policy (repro.core.policy) ---
    #: Which registered :class:`~repro.core.policy.RebalancePolicy` the
    #: balancer decides through.  ``"paper"`` is Algorithms 1 & 2 exactly;
    #: see ``repro.core.policy.available_policies()`` for alternatives.
    #: Validated against the registry when the policy is instantiated
    #: (``make_policy``), not here, to keep config import-light.
    rebalance_policy: str = "paper"
    #: CHBL's epsilon: each server's egress is bounded by ``(1 + eps)``
    #: times its capacity-weighted fair share (Mirrokni et al.).
    chbl_epsilon: float = 0.25
    #: EWMA smoothing factor for the ``ewma_predictive`` policy (weight of
    #: the newest load-ratio sample).
    policy_ewma_alpha: float = 0.30
    #: How far (seconds) ``ewma_predictive`` extrapolates the load trend.
    policy_ewma_horizon_s: float = 5.0
    #: ``headroom_pace`` look-ahead: seconds of measured load growth added
    #: to a server's effective load when scoring it as a receiver.
    policy_pace_weight: float = 3.0

    # --- live SLA monitoring (repro.obs.sla; observability only) ---
    #: Windowed delivery-latency threshold in seconds.  ``None`` (the
    #: default) disables the live SLA monitor entirely; when set (and a
    #: tracer is attached) the cluster tracks sliding-window latency
    #: quantiles per channel class and per server and emits
    #: ``sla_violation_start``/``sla_violation_end`` trace events.  Purely
    #: observational: plan decisions never read SLA state.
    sla_threshold_s: Optional[float] = None
    #: Quantile the SLA is judged on (the paper uses the 95th percentile).
    sla_quantile: float = 95.0
    #: Sliding-window span (sim seconds) and its slice count.
    sla_window_s: float = 10.0
    sla_window_slices: int = 10

    def __post_init__(self) -> None:
        if not (0 < self.lr_safe <= self.lr_high):
            raise ValueError("need 0 < lr_safe <= lr_high")
        if not (0 <= self.lr_low <= self.lr_low_target <= self.lr_high):
            raise ValueError("need lr_low <= lr_low_target <= lr_high")
        if self.t_wait_s < 0 or self.spawn_delay_s < 0:
            raise ValueError("timings must be non-negative")
        if self.lla_report_interval_s <= 0 or self.lb_eval_interval_s <= 0:
            raise ValueError("intervals must be positive")
        if self.load_window_s < self.lla_report_interval_s:
            raise ValueError("load_window_s must cover at least one report interval")
        if min(self.all_subs_threshold, self.all_pubs_threshold) <= 0:
            raise ValueError("replication ratio thresholds must be positive")
        if self.max_replication_servers < 2:
            raise ValueError("max_replication_servers must be >= 2")
        if not (1 <= self.min_servers <= self.max_servers):
            raise ValueError("need 1 <= min_servers <= max_servers")
        if self.plan_entry_timeout_s <= 0:
            raise ValueError("plan_entry_timeout_s must be positive")
        if self.heartbeat_suspect_s <= 0 or self.heartbeat_confirm_s <= 0:
            raise ValueError("heartbeat timeouts must be positive")
        if self.client_ping_interval_s is not None and self.client_ping_interval_s <= 0:
            raise ValueError("client_ping_interval_s must be positive or None")
        if self.client_ping_miss_limit < 1:
            raise ValueError("client_ping_miss_limit must be >= 1")
        if self.subscribe_ack_timeout_s <= 0:
            raise ValueError("subscribe_ack_timeout_s must be positive")
        if not (0 < self.reconnect_backoff_base_s <= self.reconnect_backoff_max_s):
            raise ValueError("need 0 < reconnect_backoff_base_s <= reconnect_backoff_max_s")
        if self.failed_server_ttl_s <= 0:
            raise ValueError("failed_server_ttl_s must be positive")
        if self.repair_buffer_s < 0 or self.repair_buffer_max_msgs < 0:
            raise ValueError("repair buffer settings must be non-negative")
        if self.delivery_tier not in DELIVERY_TIERS:
            raise ValueError(
                f"delivery_tier must be one of {DELIVERY_TIERS}, "
                f"got {self.delivery_tier!r}"
            )
        if self.replay_cache_max_msgs < 0 or self.replay_cache_max_bytes < 0:
            raise ValueError("replay cache budgets must be non-negative")
        if self.replay_retry_cooldown_s <= 0:
            raise ValueError("replay_retry_cooldown_s must be positive")
        if self.causal_park_timeout_s <= 0:
            raise ValueError("causal_park_timeout_s must be positive")
        if self.vnodes_per_server < 1:
            raise ValueError("vnodes_per_server must be >= 1")
        if not self.rebalance_policy:
            raise ValueError("rebalance_policy must name a registered policy")
        if self.chbl_epsilon <= 0:
            raise ValueError("chbl_epsilon must be positive")
        if not (0 < self.policy_ewma_alpha <= 1):
            raise ValueError("policy_ewma_alpha must be in (0, 1]")
        if self.policy_ewma_horizon_s < 0 or self.policy_pace_weight < 0:
            raise ValueError("policy horizons must be non-negative")
        if self.sla_threshold_s is not None and self.sla_threshold_s <= 0:
            raise ValueError("sla_threshold_s must be positive or None")
        if not (0 < self.sla_quantile <= 100):
            raise ValueError("sla_quantile must be in (0, 100]")
        if self.sla_window_s <= 0 or self.sla_window_slices < 1:
            raise ValueError("need sla_window_s > 0 and sla_window_slices >= 1")
