"""Cluster load view: the load balancer's aggregated picture.

The load balancer receives a stream of :class:`~repro.core.messages.LoadReport`
messages from all LLAs.  :class:`ClusterLoadView` keeps a sliding window of
them per server and answers the questions the rebalancing algorithms ask:

* the (window-averaged) load ratio of each server,
* the egress contribution of each channel on each server (what Algorithm 2
  moves between servers),
* per-channel logical totals -- publications/s and subscriber counts
  de-duplicated across replicas -- which Algorithm 1's ratios are built on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.core.messages import LoadReport
from repro.core.plan import ChannelMapping, ReplicationMode


@dataclass(frozen=True)
class ChannelLoad:
    """Window-averaged load of one channel on one server."""

    publications_per_s: float
    publisher_count: int
    subscriber_count: int
    messages_out_per_s: float
    bytes_out_per_s: float

    @staticmethod
    def zero() -> "ChannelLoad":
        return ChannelLoad(0.0, 0, 0, 0.0, 0.0)


@dataclass(frozen=True)
class ChannelTotals:
    """Logical (replica-deduplicated) totals for one channel."""

    publications_per_s: float
    publisher_count: int
    subscriber_count: int
    bytes_out_per_s: float


class ServerLoadView:
    """Sliding window of one server's load reports."""

    def __init__(self, window_s: float):
        self.window_s = window_s
        self._reports: Deque[LoadReport] = deque()
        self.nominal_egress_bps: float = 0.0
        self.last_report_at: float = 0.0

    def add(self, report: LoadReport) -> None:
        self._reports.append(report)
        self.nominal_egress_bps = report.nominal_egress_bps
        self.last_report_at = report.window_end

    def prune(self, now: float) -> None:
        horizon = now - self.window_s
        reports = self._reports
        while reports and reports[0].window_end < horizon:
            reports.popleft()

    @property
    def report_count(self) -> int:
        return len(self._reports)

    def mean_measured_egress_bps(self) -> float:
        """Window-averaged measured egress in bytes/s (0 when no reports).

        Exposed (rather than derived as ``load_ratio * nominal``) so the
        load-history recorder (:mod:`repro.lab`) can persist the *exact*
        float the load ratio is computed from; re-multiplying would round
        differently and break bit-exact offline replay.
        """
        if not self._reports:
            return 0.0
        total = sum(r.measured_egress_bps for r in self._reports)
        return total / len(self._reports)

    def load_ratio(self) -> float:
        """Window-averaged ``LR_i`` (0 when no reports)."""
        if not self._reports or self.nominal_egress_bps <= 0:
            return 0.0
        return self.mean_measured_egress_bps() / self.nominal_egress_bps

    def cpu_utilization(self) -> float:
        """Window-averaged CPU utilization (0 when no reports)."""
        if not self._reports:
            return 0.0
        return sum(r.cpu_utilization for r in self._reports) / len(self._reports)

    def channel_loads(self) -> Dict[str, ChannelLoad]:
        """Per-channel averages over the window."""
        if not self._reports:
            return {}
        n = len(self._reports)
        sums: Dict[str, List[float]] = {}
        latest_subs: Dict[str, int] = {}
        latest_publishers: Dict[str, int] = {}
        for report in self._reports:
            for snap in report.channels:
                entry = sums.setdefault(snap.channel, [0.0, 0.0, 0.0])
                entry[0] += snap.publications_per_s
                entry[1] += snap.messages_out_per_s
                entry[2] += snap.bytes_out_per_s
                latest_subs[snap.channel] = snap.subscriber_count
                latest_publishers[snap.channel] = max(
                    latest_publishers.get(snap.channel, 0), snap.publisher_count
                )
        return {
            channel: ChannelLoad(
                publications_per_s=entry[0] / n,
                publisher_count=latest_publishers[channel],
                subscriber_count=latest_subs[channel],
                messages_out_per_s=entry[1] / n,
                bytes_out_per_s=entry[2] / n,
            )
            for channel, entry in sums.items()
        }


class ClusterLoadView:
    """All servers' windows plus cross-server aggregation."""

    def __init__(self, window_s: float):
        self.window_s = window_s
        self._servers: Dict[str, ServerLoadView] = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add_report(self, report: LoadReport) -> None:
        view = self._servers.get(report.server_id)
        if view is None:
            view = ServerLoadView(self.window_s)
            self._servers[report.server_id] = view
        view.add(report)

    def prune(self, now: float) -> None:
        for view in self._servers.values():
            view.prune(now)

    def forget_server(self, server_id: str) -> None:
        self._servers.pop(server_id, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def servers(self) -> List[str]:
        return list(self._servers)

    def has_report(self, server_id: str) -> bool:
        view = self._servers.get(server_id)
        return view is not None and view.report_count > 0

    def load_ratio(self, server_id: str) -> float:
        view = self._servers.get(server_id)
        return view.load_ratio() if view is not None else 0.0

    def load_ratios(self, server_ids: Iterable[str]) -> Dict[str, float]:
        return {s: self.load_ratio(s) for s in server_ids}

    def average_load_ratio(self, server_ids: Iterable[str]) -> float:
        ids = list(server_ids)
        if not ids:
            return 0.0
        return sum(self.load_ratio(s) for s in ids) / len(ids)

    def nominal_egress_bps(self, server_id: str) -> float:
        view = self._servers.get(server_id)
        return view.nominal_egress_bps if view is not None else 0.0

    def mean_measured_egress_bps(self, server_id: str) -> float:
        view = self._servers.get(server_id)
        return view.mean_measured_egress_bps() if view is not None else 0.0

    def cpu_utilization(self, server_id: str) -> float:
        view = self._servers.get(server_id)
        return view.cpu_utilization() if view is not None else 0.0

    def channel_loads(self, server_id: str) -> Dict[str, ChannelLoad]:
        view = self._servers.get(server_id)
        return view.channel_loads() if view is not None else {}

    def channel_totals(
        self, channel: str, mapping: ChannelMapping
    ) -> Optional[ChannelTotals]:
        """Logical totals for ``channel``, de-duplicated per the mapping.

        Under *all-subscribers*, each publication hits one replica (sum)
        while every subscriber is connected to all replicas (max).  Under
        *all-publishers* it is the reverse.  Returns ``None`` when no
        server reported the channel.

        All reporting servers are consulted -- not only the mapping's --
        because during reconfiguration windows (and under consistent-
        hashing fallback mismatches) a channel's traffic is observed on
        servers the current plan no longer names.
        """
        per_server: List[Tuple[float, int, int, float]] = []
        for server_id in self._servers:
            load = self.channel_loads(server_id).get(channel)
            if load is not None:
                per_server.append(
                    (
                        load.publications_per_s,
                        load.publisher_count,
                        load.subscriber_count,
                        load.bytes_out_per_s,
                    )
                )
        if not per_server:
            return None
        pubs = [p for p, __, __, __ in per_server]
        publishers = [n for __, n, __, __ in per_server]
        subs = [s for __, __, s, __ in per_server]
        out = sum(b for __, __, __, b in per_server)
        if mapping.mode is ReplicationMode.ALL_SUBSCRIBERS:
            return ChannelTotals(sum(pubs), sum(publishers), max(subs), out)
        if mapping.mode is ReplicationMode.ALL_PUBLISHERS:
            return ChannelTotals(max(pubs), max(publishers), sum(subs), out)
        return ChannelTotals(sum(pubs), sum(publishers), sum(subs), out)
