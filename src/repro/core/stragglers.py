"""Straggler tracking: which servers may still hold stale subscribers.

When a plan change displaces a channel from a server, subscribers stuck
behind slow links may keep their subscription there for a while; the
dispatchers of the channel's current servers forward publications toward
such *straggler* servers until they announce themselves drained or a
timeout passes (section IV-A.5).

With *chained* migrations (pub1 -> pub2 -> pub3 in quick succession) the
knowledge "pub1 may still hold subscribers" must survive across plan
versions and reach dispatchers that did not exist when the first move
happened.  The load balancer therefore maintains a
:class:`StragglerTracker` over the plan history and ships its snapshot
inside every plan push; dispatchers merge it into their local registries.
"""

from __future__ import annotations

from typing import Dict

from repro.core.plan import Plan, ReplicationMode


def forwarding_sources(old_mapping, new_mapping) -> set:
    """Old servers that may still hold subscribers needing forwarded copies.

    Under all-subscribers, servers staying in the replica set count too: a
    subscriber holding only the old replica misses publications landing on
    the new ones.  Under the other modes, publishers cover shared servers
    directly, so only fully-displaced servers are stragglers.
    """
    sources = set(old_mapping.servers)
    if new_mapping.mode is not ReplicationMode.ALL_SUBSCRIBERS:
        sources -= set(new_mapping.servers)
    return sources


class StragglerTracker:
    """Per-channel forwarding deadlines for recently displaced servers."""

    def __init__(self, timeout_s: float):
        self.timeout_s = timeout_s
        self._entries: Dict[str, Dict[str, float]] = {}

    def record_plan_change(self, old_plan: Plan, new_plan: Plan, now: float) -> None:
        """Register every displaced server of every changed channel."""
        deadline = now + self.timeout_s
        for channel, (old, new) in old_plan.diff(new_plan).items():
            sources = forwarding_sources(old, new)
            if not sources:
                continue
            registry = self._entries.setdefault(channel, {})
            for server in sources:
                if registry.get(server, 0.0) < deadline:
                    registry[server] = deadline

    def drain(self, channel: str, server_id: str) -> None:
        """A server announced it holds no stale subscribers anymore."""
        registry = self._entries.get(channel)
        if registry is not None:
            registry.pop(server_id, None)
            if not registry:
                del self._entries[channel]

    def prune(self, now: float) -> None:
        for channel in list(self._entries):
            registry = self._entries[channel]
            for server, deadline in list(registry.items()):
                if deadline <= now:
                    del registry[server]
            if not registry:
                del self._entries[channel]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A copy suitable for embedding in a plan push."""
        return {c: dict(r) for c, r in self._entries.items()}

    def __bool__(self) -> bool:
        return bool(self._entries)
