"""The Dynamoth client library.

Exposes the standard pub/sub API (``subscribe`` / ``unsubscribe`` /
``publish``) while hiding the plan machinery:

* maintains a *partial local plan* -- only the channels this client
  actually uses (section II-C), with per-entry activity timers that expire
  idle entries back to the consistent-hashing fallback (section IV-A.5);
* routes publications and subscriptions according to the channel's
  replication mode (Figure 2);
* reacts to :class:`~repro.core.messages.MappingNotice` redirects and
  :class:`~repro.core.messages.SwitchNotice` publications by lazily
  updating its plan and reconciling its subscriptions (subscribe to the
  new servers first, unsubscribe from the old ones after a short grace);
* deduplicates deliveries on globally unique message ids so that overlap
  windows during reconfiguration never surface duplicates to the
  application.
"""

from __future__ import annotations

from random import Random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional, Set, Tuple

from repro.broker.commands import (
    ConnectionClosed,
    Delivery,
    PingCmd,
    PongReply,
    PublishCmd,
    ReplayGapNotice,
    ReplayRequest,
    SubscribeAck,
    SubscribeCmd,
    UnsubscribeCmd,
)
from repro.core.hashing import ConsistentHashRing
from repro.core.messages import AppEnvelope, MappingNotice, SwitchNotice
from repro.core.plan import ChannelMapping, ReplicationMode
from repro.core.reliability import ClientReliability, ReliabilityConfig
from repro.obs.trace import (
    NULL_TRACER,
    CausalTimeoutEvent,
    ClientFailoverEvent,
    ClientReconnectEvent,
    DeliveryEvent,
    PlanMissEvent,
    PublishEvent,
    SubscribeEvent,
    Tracer,
    UnsubscribeEvent,
    channel_class,
)
from repro.sim.actor import Actor
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTask

#: application delivery callback: (channel, body, envelope) -> None
DeliveryCallback = Callable[[str, Any, AppEnvelope], None]
#: response-time hook: (channel, rtt_seconds, now) -> None
ResponseTimeHook = Callable[[str, float, float], None]


@dataclass
class _PlanEntry:
    mapping: ChannelMapping
    last_activity: float


@dataclass
class _Subscription:
    callback: DeliveryCallback
    #: servers we currently hold (or are establishing) subscriptions on
    servers: Set[str] = field(default_factory=set)


@dataclass
class _Reconcile:
    """An in-flight subscription move awaiting subscribe acks."""

    version: int
    awaiting: Set[str]
    confirm: list
    drop: list


class DynamothClient(Actor):
    """A client node speaking the Dynamoth protocol."""

    #: Dedup window size: ids of the most recent deliveries remembered.
    DEDUP_WINDOW = 8192
    #: Delay before re-establishing subscriptions after a forced disconnect.
    RECONNECT_DELAY_S = 0.5

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        bootstrap_ring: ConsistentHashRing,
        rng: Random,
        *,
        plan_entry_timeout_s: float = 30.0,
        resubscribe_grace_s: float = 0.25,
        ping_interval_s: Optional[float] = None,
        ping_miss_limit: int = 3,
        subscribe_ack_timeout_s: float = 2.0,
        reconnect_backoff_base_s: float = 0.5,
        reconnect_backoff_max_s: float = 10.0,
        failed_server_ttl_s: float = 60.0,
        tracer: Tracer = NULL_TRACER,
        reliability: Optional[ReliabilityConfig] = None,
        dedup_window: Optional[int] = None,
    ):
        super().__init__(sim, node_id, is_infra=False)
        self._ring = bootstrap_ring
        self._rng = rng
        self._plan_entry_timeout = plan_entry_timeout_s
        self._resubscribe_grace = resubscribe_grace_s
        self._ping_interval = ping_interval_s
        self._ping_miss_limit = ping_miss_limit
        self._subscribe_ack_timeout = subscribe_ack_timeout_s
        self._reconnect_backoff_base = reconnect_backoff_base_s
        self._reconnect_backoff_max = reconnect_backoff_max_s
        self._failed_server_ttl = failed_server_ttl_s
        self._tracer = tracer

        self._entries: Dict[str, _PlanEntry] = {}
        #: consistent-hashing fallback mappings, cached because the
        #: bootstrap ring never changes (avoids an md5 per publish)
        self._ch_cache: Dict[str, ChannelMapping] = {}
        self._subs: Dict[str, _Subscription] = {}
        self._reconcile: Dict[str, _Reconcile] = {}
        #: grace-period unsubscribes not yet executed: channel -> servers.
        #: Tracked so a client that disconnects mid-grace still releases
        #: every server-side subscription it holds.
        self._pending_drops: Dict[str, Set[str]] = {}
        #: msg id -> number of occurrences still inside the recency deque.
        #: A dict (not a set) because a duplicate hit *refreshes* the id's
        #: recency by re-appending it -- a replayed message under active
        #: repair must not expire out of the window while its replays are
        #: still arriving (the dedup-window edge the exactly-once tier
        #: depends on).
        self._seen_ids: Dict[str, int] = {}
        self._seen_order: Deque[str] = deque()
        self._dedup_window = dedup_window if dedup_window is not None else self.DEDUP_WINDOW
        self._msg_counter = 0

        # --- reliable delivery tier (repro.core.reliability) ---
        self._rel: Optional[ClientReliability] = (
            ClientReliability(reliability) if reliability is not None else None
        )
        self._causal = reliability is not None and reliability.causal_order
        #: causal mode: per-channel out-of-order deliveries awaiting their
        #: dependencies, in arrival order
        self._parked: Dict[str, list] = {}
        #: invalidates scheduled park-timeout flushes when a channel drains
        self._park_token: Dict[str, int] = {}

        # --- failure detection & recovery (repro.faults subsystem) ---
        #: server -> time this client declared it dead; entries expire
        #: after ``failed_server_ttl_s`` so a restarted server becomes
        #: routable again without any explicit signal.
        self._failed_servers: Dict[str, float] = {}
        #: server -> consecutive unanswered pings
        self._ping_pending: Dict[str, int] = {}
        #: server -> last time this client published through it.  Pure
        #: publishers have no subscriptions to probe, so liveness checks
        #: must also cover recently-used publish targets -- otherwise a
        #: publisher keeps sending into a dead server forever.
        self._publish_targets: Dict[str, float] = {}
        #: channel -> servers whose SubscribeAck we have seen
        self._acked: Dict[str, Set[str]] = {}
        #: channels with a failover recovery in flight
        self._recovery_pending: Set[str] = set()
        #: channel -> newest recovery attempt number (stale timers ignored)
        self._recovery_attempt: Dict[str, int] = {}
        #: liveness probing of subscribed servers; disabled by default
        #: because pong traffic perturbs measured egress.  The sends are
        #: fully deterministic (no RNG, no jitter), so enabling it changes
        #: nothing else.
        self._ping_task: Optional[PeriodicTask] = None
        if ping_interval_s is not None:
            self._ping_task = PeriodicTask(sim, ping_interval_s, self._ping_tick)
            self._ping_task.start()

        #: optional hook fired when the client receives its own publication
        #: back (the paper's response-time metric).
        self.on_response_time: Optional[ResponseTimeHook] = None
        #: optional ground-truth delivery ledger hook: called once per
        #: *non-duplicate* application delivery as ``(channel, envelope,
        #: delivery)``, before the subscription callback.  The
        #: ``repro.check`` property harness uses it to record exactly what
        #: the application saw (including seq/epoch/replayed metadata).
        self.on_delivery: Optional[Callable[[str, AppEnvelope, Delivery], None]] = None
        #: protocol-level tap: every delivery off the wire, pre-dedup
        self.on_wire_delivery: Optional[Callable[[str, Delivery], None]] = None

        # --- counters (metrics / tests) ---
        self.published = 0
        self.delivered = 0
        self.duplicates = 0
        self.redirects = 0
        self.switches = 0
        self.disconnects = 0
        self.failovers = 0
        self.reconnects = 0
        self.resubscribes = 0
        self.causal_timeouts = 0

    # ------------------------------------------------------------------
    # Public pub/sub API (mirrors the standard Redis client interface)
    # ------------------------------------------------------------------
    def _subscribe_cmd(self, channel: str, version: int, server: str) -> SubscribeCmd:
        """SUBSCRIBE for one server, with the replay resume point attached.

        The resume point (last-seen sequence position on that server's
        stream) turns reconnect into gap replay when the reliability layer
        is on; without it (or on first contact) this is a plain SUBSCRIBE.
        """
        rel = self._rel
        if rel is None or not rel.config.replay_active:
            return SubscribeCmd(channel, version)
        after, epoch = rel.resume_point(server, channel)
        if after < 0:
            return SubscribeCmd(channel, version)
        return SubscribeCmd(channel, version, after, epoch)

    def subscribe(self, channel: str, callback: DeliveryCallback) -> None:
        """Subscribe to ``channel``; ``callback`` receives each publication."""
        mapping = self._resolve(channel)
        sub = self._subs.get(channel)
        if sub is None:
            sub = _Subscription(callback)
            self._subs[channel] = sub
        else:
            sub.callback = callback
        desired = self._desired_sub_servers(mapping, sub.servers)
        for server in sorted(desired - sub.servers):
            self.send(
                server,
                self._subscribe_cmd(channel, mapping.version, server),
                SubscribeCmd.WIRE_SIZE,
            )
        for server in sorted(sub.servers - desired):
            self.send(server, UnsubscribeCmd(channel), UnsubscribeCmd.WIRE_SIZE)
        sub.servers = desired
        self._touch(channel)
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                SubscribeEvent(self.sim.now, self.node_id, channel, tuple(sorted(desired)))
            )

    def unsubscribe(self, channel: str) -> None:
        """Drop the subscription to ``channel`` (idempotent)."""
        # Abort any in-flight reconciliation: a late subscribe-ack must
        # not re-establish subscriptions we no longer want.  The pending
        # move's old servers still hold (or will hold) our subscription,
        # so the unsubscribe must reach them too.
        pending = self._reconcile.pop(channel, None)
        sub = self._subs.pop(channel, None)
        self._acked.pop(channel, None)
        self._recovery_pending.discard(channel)
        self._recovery_attempt.pop(channel, None)
        if self._rel is not None:
            # A clean unsubscribe ends the stream position: a later
            # resubscribe starts fresh rather than replaying the time away.
            self._rel.drop_channel(channel)
            self._parked.pop(channel, None)
            self._park_token[channel] = self._park_token.get(channel, 0) + 1
        if sub is None and pending is None:
            return
        targets = set(sub.servers) if sub is not None else set()
        if pending is not None:
            targets |= set(pending.drop) | set(pending.confirm) | pending.awaiting
        for server in sorted(targets):
            self.send(server, UnsubscribeCmd(channel), UnsubscribeCmd.WIRE_SIZE)
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(UnsubscribeEvent(self.sim.now, self.node_id, channel))

    def publish(self, channel: str, body: Any, payload_size: int) -> str:
        """Publish ``body`` on ``channel``; returns the message id."""
        mapping = self._resolve(channel)
        self._msg_counter += 1
        msg_id = f"{self.node_id}:{self._msg_counter}"
        pub_seq = 0
        deps: Tuple[Tuple[str, int], ...] = ()
        if self._causal and self._rel is not None:
            pub_seq, deps = self._rel.stamp_publication(channel, self.node_id)
        envelope = AppEnvelope(
            msg_id, self.node_id, body, mapping.version, self.sim.now, False, pub_seq, deps
        )
        wire_payload = payload_size + AppEnvelope.WIRE_OVERHEAD
        cmd = PublishCmd(channel, envelope, wire_payload)
        targets = mapping.publish_targets(self._rng)
        for server in targets:
            self.send(server, cmd, wire_payload)
        if self._ping_interval is not None:
            for server in targets:
                self._publish_targets[server] = self.sim.now
        self.published += 1
        self._touch(channel)
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                PublishEvent(
                    self.sim.now,
                    msg_id,
                    channel,
                    self.node_id,
                    mapping.version,
                    tuple(targets),
                    payload_size,
                )
            )
            tracer.metrics.counter(
                "publications_total", channel_class=channel_class(channel)
            ).inc()
        return msg_id

    def is_subscribed(self, channel: str) -> bool:
        return channel in self._subs

    def subscription_servers(self, channel: str) -> Set[str]:
        sub = self._subs.get(channel)
        return set(sub.servers) if sub is not None else set()

    def known_mapping(self, channel: str) -> Optional[ChannelMapping]:
        """The client's current plan entry for ``channel`` (None = CH)."""
        entry = self._entries.get(channel)
        return entry.mapping if entry is not None else None

    def disconnect(self) -> None:
        """Leave the system cleanly: drop all subscriptions."""
        if self._ping_task is not None:
            self._ping_task.stop()
        for channel in list(self._subs):
            self.unsubscribe(channel)
        # Flush grace-period drops that have not fired yet; once we are
        # gone nothing else would release those server-side subscriptions.
        for channel, servers in list(self._pending_drops.items()):
            for server in sorted(servers):
                self.send(server, UnsubscribeCmd(channel), UnsubscribeCmd.WIRE_SIZE)
        self._pending_drops.clear()
        self.shutdown()

    # ------------------------------------------------------------------
    # Local plan maintenance
    # ------------------------------------------------------------------
    def _resolve(self, channel: str) -> ChannelMapping:
        """Current mapping for ``channel``: fresh entry or CH fallback."""
        failed = self._live_failed(self.sim.now) if self._failed_servers else ()
        entry = self._entries.get(channel)
        if entry is not None:
            idle = self.sim.now - entry.last_activity
            if idle > self._plan_entry_timeout and channel not in self._subs:
                # Timer expired while not subscribed: drop the entry and
                # fall back to consistent hashing (section IV-A.5).
                del self._entries[channel]
            elif failed and any(s in failed for s in entry.mapping.servers):
                # The entry routes to a server we declared dead: drop it;
                # the repair plan's notices will teach us the new home.
                del self._entries[channel]
            else:
                return entry.mapping
        if failed:
            # Bypass the CH cache: the ring walk must skip dead servers.
            # Not cached -- the failed set shrinks as TTLs expire.
            return ChannelMapping(
                ReplicationMode.SINGLE,
                (self._ring.lookup(channel, exclude=failed),),
                0,
            )
        fallback = self._ch_cache.get(channel)
        tracer = self._tracer
        if fallback is None:
            fallback = ChannelMapping(
                ReplicationMode.SINGLE, (self._ring.lookup(channel),), 0
            )
            self._ch_cache[channel] = fallback
            if tracer.enabled:
                tracer.emit(
                    PlanMissEvent(
                        self.sim.now, self.node_id, channel, fallback.servers[0]
                    )
                )
        if tracer.enabled:
            tracer.metrics.counter(
                "plan_miss_total", channel_class=channel_class(channel)
            ).inc()
        return fallback

    def _touch(self, channel: str) -> None:
        entry = self._entries.get(channel)
        if entry is not None:
            entry.last_activity = self.sim.now

    def _desired_sub_servers(
        self, mapping: ChannelMapping, current: Set[str], *, rebalance: bool = False
    ) -> Set[str]:
        """Servers this subscriber should hold subscriptions on.

        For ALL_PUBLISHERS, an already-held server still in the mapping is
        kept to avoid needless churn -- *except* when ``rebalance`` is set,
        which forces a fresh random pick.  The rebalance case matters when
        a client upgrades from the consistent-hashing fallback: every
        fallback subscriber holds the same ring-determined server, and
        keeping it would pile all of them onto one replica instead of
        spreading them randomly (Figure 2c).
        """
        if mapping.mode is ReplicationMode.ALL_SUBSCRIBERS:
            return set(mapping.servers)
        if mapping.mode is ReplicationMode.ALL_PUBLISHERS:
            if not rebalance:
                keep = current & set(mapping.servers)
                if keep:
                    return {next(iter(sorted(keep)))}
            return {self._rng.choice(mapping.servers)}
        return {mapping.servers[0]}

    def _apply_mapping(self, channel: str, mapping: ChannelMapping) -> None:
        """Adopt a (possibly newer) mapping and reconcile subscriptions."""
        if self._failed_servers:
            failed = self._live_failed(self.sim.now)
            if any(s in failed for s in mapping.servers):
                return  # stale routing info pointing at a dead server
        entry = self._entries.get(channel)
        old = entry.mapping if entry is not None else None
        if old is not None and mapping.version < old.version:
            return  # stale notice
        if entry is None:
            self._entries[channel] = _PlanEntry(mapping, self.sim.now)
        else:
            entry.mapping = mapping
            entry.last_activity = self.sim.now

        sub = self._subs.get(channel)
        if sub is None:
            return
        was_fallback = old is None or old.version == 0
        version_advanced = old is None or mapping.version > old.version
        desired = self._desired_sub_servers(
            mapping, sub.servers, rebalance=was_fallback
        )
        if not version_advanced and desired == sub.servers:
            return  # duplicate notice, nothing to reconcile
        # A still-pending reconcile for this channel is superseded; its
        # not-yet-executed drop/confirm targets must not be forgotten --
        # we hold (or have requested) subscriptions there too.
        prior = self._reconcile.pop(channel, None)
        legacy: Set[str] = set()
        if prior is not None:
            legacy = set(prior.drop) | set(prior.confirm)
        to_add = sorted(desired - sub.servers)
        kept = sorted(desired & sub.servers)
        to_drop = sorted((sub.servers | legacy) - desired)
        # Step 1: establish subscriptions on the new servers.
        for server in to_add:
            self.send(
                server,
                self._subscribe_cmd(channel, mapping.version, server),
                SubscribeCmd.WIRE_SIZE,
            )
        sub.servers = desired
        # Step 2 happens only after every new server *acked* (Redis-style
        # subscribe confirmation): re-subscribe on the kept servers with
        # the new version -- the signal their dispatchers wait for before
        # ending transition forwarding -- and drop the old servers after a
        # short extra grace.  Doing this before the acks would let
        # forwarding stop while our new subscriptions are still in flight,
        # losing messages.
        self._reconcile[channel] = _Reconcile(
            version=mapping.version,
            awaiting=set(to_add),
            confirm=list(kept),
            drop=list(to_drop),
        )
        if not to_add:
            self._finish_reconcile(channel)

    def _finish_reconcile(self, channel: str) -> None:
        pending = self._reconcile.pop(channel, None)
        if pending is None or channel not in self._subs:
            return
        for server in pending.confirm:
            self.send(
                server,
                self._subscribe_cmd(channel, pending.version, server),
                SubscribeCmd.WIRE_SIZE,
            )
        for server in pending.drop:
            self._pending_drops.setdefault(channel, set()).add(server)
            self.sim.schedule(
                self._resubscribe_grace, self._grace_unsubscribe, channel, server
            )

    def _handle_subscribe_ack(self, ack: SubscribeAck) -> None:
        self._acked.setdefault(ack.channel, set()).add(ack.server_id)
        pending = self._reconcile.get(ack.channel)
        if pending is None:
            return
        pending.awaiting.discard(ack.server_id)
        if not pending.awaiting:
            self._finish_reconcile(ack.channel)

    def _grace_unsubscribe(self, channel: str, server: str) -> None:
        drops = self._pending_drops.get(channel)
        if drops is not None:
            drops.discard(server)
            if not drops:
                del self._pending_drops[channel]
        if not self.alive or self.transport is None:
            return  # client left; disconnect() already flushed the drop
        sub = self._subs.get(channel)
        if sub is not None and server in sub.servers:
            return  # mapping changed again; the server is wanted after all
        self.send(server, UnsubscribeCmd(channel), UnsubscribeCmd.WIRE_SIZE)

    # ------------------------------------------------------------------
    # Inbound traffic
    # ------------------------------------------------------------------
    def receive(self, message: Any, src_id: str) -> None:
        if isinstance(message, Delivery):
            # Hot path: one call per application delivery.  ``_touch``,
            # ``_is_duplicate`` and the non-causal tail of ``_deliver_app``
            # are inlined here (the methods remain for the other call
            # sites); ``sim._now`` skips the ``now`` property descriptor.
            delivery = message
            envelope = delivery.payload
            if not isinstance(envelope, AppEnvelope):
                return
            channel = delivery.channel
            sim = self.sim
            entry = self._entries.get(channel)
            if entry is not None:
                entry.last_activity = sim._now

            body = envelope.body
            if isinstance(body, SwitchNotice):
                self.switches += 1
                self._apply_mapping(channel, body.mapping)
                return

            tracer = self._tracer
            if self.on_wire_delivery is not None:
                # Protocol-level tap: fires for every app delivery that
                # made it off the wire, *before* seq/dedup suppression (a
                # hole filled by a cross-stream duplicate is still a
                # filled hole).
                self.on_wire_delivery(channel, delivery)
            rel = self._rel
            if rel is not None and delivery.seq is not None:
                outcome = rel.observe(
                    delivery.server_id,
                    channel,
                    delivery.seq,
                    delivery.epoch,
                    delivery.replayed,
                    sim._now,
                )
                if outcome.request is not None:
                    after, up_to = outcome.request
                    self.send(
                        delivery.server_id,
                        ReplayRequest(channel, delivery.epoch, after, up_to),
                        ReplayRequest.WIRE_SIZE,
                    )
                if not outcome.deliver:
                    # exactly_once: a sequence number already at or below
                    # the stream watermark (and not a known hole) is a
                    # replayed duplicate -- dropped *before* any msg-id
                    # bookkeeping so replay traffic can never cycle fresh
                    # ids out of the dedup window.
                    self.duplicates += 1
                    if tracer.enabled:
                        tracer.metrics.counter(
                            "duplicates_total", client=self.node_id
                        ).inc()
                    return

            # -- inline _is_duplicate --
            msg_id = envelope.msg_id
            seen = self._seen_ids
            order = self._seen_order
            count = seen.get(msg_id)
            seen[msg_id] = (count + 1) if count is not None else 1
            order.append(msg_id)
            if len(order) > self._dedup_window:
                oldest = order.popleft()
                remaining = seen[oldest] - 1
                if remaining:
                    seen[oldest] = remaining
                else:
                    del seen[oldest]
            if count is not None:
                self.duplicates += 1
                if tracer.enabled:
                    tracer.metrics.counter(
                        "duplicates_total", client=self.node_id
                    ).inc()
                return

            if self._causal and rel is not None and envelope.pub_seq > 0:
                if not rel.deliverable(
                    channel, envelope.sender, envelope.pub_seq, envelope.deps
                ):
                    self._park(channel, envelope, delivery)
                    return
                self._deliver_app(channel, envelope, delivery)
                self._release_parked(channel)
                return

            # -- inline _deliver_app (non-causal tail) --
            self.delivered += 1
            if rel is not None and envelope.pub_seq > 0:
                rel.note_app_delivery(channel, envelope.sender, envelope.pub_seq)
            if tracer.enabled:
                latency = sim.now - envelope.sent_at
                tracer.emit(
                    DeliveryEvent(
                        sim.now,
                        self.node_id,
                        channel,
                        envelope.msg_id,
                        envelope.sender,
                        latency,
                        envelope.plan_version,
                        delivery.server_id,
                    )
                )
                tracer.metrics.histogram(
                    "delivery_latency_s", channel_class=channel_class(channel)
                ).observe(latency)
                # Single global counter so streaming runs (which keep no
                # event buffer to count DeliveryEvents in) still report
                # totals.
                tracer.metrics.counter("deliveries_received_total").inc()

            if self.on_delivery is not None:
                self.on_delivery(channel, envelope, delivery)
            if envelope.sender == self.node_id and self.on_response_time is not None:
                self.on_response_time(channel, sim.now - envelope.sent_at, sim.now)

            sub = self._subs.get(channel)
            if sub is not None:
                sub.callback(channel, body, envelope)
        elif isinstance(message, MappingNotice):
            self.redirects += 1
            self._apply_mapping(message.channel, message.mapping)
        elif isinstance(message, SubscribeAck):
            self._handle_subscribe_ack(message)
        elif isinstance(message, PongReply):
            self._ping_pending[message.server_id] = 0
            self._failed_servers.pop(message.server_id, None)
        elif isinstance(message, ReplayGapNotice):
            if self._rel is not None:
                self._rel.forget_through(
                    message.server_id,
                    message.channel,
                    message.epoch,
                    message.through_seq,
                )
        elif isinstance(message, ConnectionClosed):
            self._handle_disconnect(message.server_id)
        else:
            raise TypeError(f"{self.node_id}: unexpected message {type(message).__name__}")

    # repro: scope[hot]
    def _deliver_app(self, channel: str, envelope: AppEnvelope, delivery: Delivery) -> None:
        """Hand one deduplicated publication to the application."""
        self.delivered += 1
        rel = self._rel
        if rel is not None and envelope.pub_seq > 0:
            rel.note_app_delivery(channel, envelope.sender, envelope.pub_seq)
        tracer = self._tracer
        if tracer.enabled:
            latency = self.sim.now - envelope.sent_at
            tracer.emit(
                DeliveryEvent(
                    self.sim.now,
                    self.node_id,
                    channel,
                    envelope.msg_id,
                    envelope.sender,
                    latency,
                    envelope.plan_version,
                    delivery.server_id,
                )
            )
            tracer.metrics.histogram(
                "delivery_latency_s", channel_class=channel_class(channel)
            ).observe(latency)
            # Single global counter so streaming runs (which keep no event
            # buffer to count DeliveryEvents in) still report totals.
            tracer.metrics.counter("deliveries_received_total").inc()

        if self.on_delivery is not None:
            self.on_delivery(channel, envelope, delivery)
        if envelope.sender == self.node_id and self.on_response_time is not None:
            self.on_response_time(channel, self.sim.now - envelope.sent_at, self.sim.now)

        sub = self._subs.get(channel)
        if sub is not None:
            sub.callback(channel, envelope.body, envelope)

    # ------------------------------------------------------------------
    # Causal-order parking (repro.core.reliability, causal mode)
    # ------------------------------------------------------------------
    def _park(self, channel: str, envelope: AppEnvelope, delivery: Delivery) -> None:
        """Hold an out-of-order delivery until its dependencies arrive."""
        parked = self._parked.setdefault(channel, [])
        parked.append((envelope, delivery))
        if len(parked) == 1:
            token = self._park_token.get(channel, 0) + 1
            self._park_token[channel] = token
            self.sim.schedule(
                self._rel.config.causal_park_timeout_s,
                self._flush_parked,
                channel,
                token,
            )

    def _release_parked(self, channel: str) -> None:
        """Deliver every parked message whose dependencies are now met."""
        parked = self._parked.get(channel)
        if not parked:
            return
        rel = self._rel
        progress = True
        while progress and parked:
            progress = False
            for index, (envelope, delivery) in enumerate(parked):
                if rel.deliverable(
                    channel, envelope.sender, envelope.pub_seq, envelope.deps
                ):
                    parked.pop(index)
                    self._deliver_app(channel, envelope, delivery)
                    progress = True
                    break
        if not parked:
            del self._parked[channel]
            # Invalidate the pending timeout flush: nothing left to flush.
            self._park_token[channel] = self._park_token.get(channel, 0) + 1

    def _flush_parked(self, channel: str, token: int) -> None:
        """Park timeout: a dependency is apparently lost for good, so the
        channel is force-flushed in arrival order rather than wedged."""
        if not self.alive or self.transport is None:
            return
        if self._park_token.get(channel) != token:
            return  # the parked set drained (or churned) since scheduling
        parked = self._parked.pop(channel, None)
        if not parked:
            return
        self.causal_timeouts += 1
        if self._tracer.enabled:
            self._tracer.emit(
                CausalTimeoutEvent(self.sim.now, self.node_id, channel, len(parked))
            )
            self._tracer.metrics.counter(
                "causal_timeouts_total", client=self.node_id
            ).inc()
        for envelope, delivery in parked:
            self._deliver_app(channel, envelope, delivery)

    def _is_duplicate(self, msg_id: str) -> bool:
        """Message-id dedup with a count-aware LRU window.

        A duplicate hit re-appends the id (recency refresh): under active
        replay the same id keeps arriving, and the old FIFO window would
        eventually expire it *between* two replays -- double-counting the
        message in the delivery ledger.  Counts track how many times an id
        sits in the deque so eviction only forgets an id when its last
        occurrence leaves the window.
        """
        seen = self._seen_ids
        order = self._seen_order
        count = seen.get(msg_id)
        duplicate = count is not None
        seen[msg_id] = (count + 1) if duplicate else 1
        order.append(msg_id)
        if len(order) > self._dedup_window:
            oldest = order.popleft()
            remaining = seen[oldest] - 1
            if remaining:
                seen[oldest] = remaining
            else:
                del seen[oldest]
        return duplicate

    def _handle_disconnect(self, server_id: str) -> None:
        """A server closed our connection (overload kill or decommission)."""
        self.disconnects += 1
        affected = [c for c, sub in self._subs.items() if server_id in sub.servers]
        for channel in affected:
            self._subs[channel].servers.discard(server_id)
            acked = self._acked.get(channel)
            if acked is not None:
                acked.discard(server_id)
            # The mapping pointing at a decommissioned server is useless;
            # drop it so the reconnect resolves fresh (CH fallback or a
            # notice from the fallback server's dispatcher).
            entry = self._entries.get(channel)
            if entry is not None and server_id in entry.mapping.servers:
                del self._entries[channel]
        if affected:
            self.sim.schedule(self.RECONNECT_DELAY_S, self._reconnect, tuple(affected))

    def _reconnect(self, channels: Tuple[str, ...]) -> None:
        if not self.alive or self.transport is None:
            return
        for channel in channels:
            sub = self._subs.get(channel)
            if sub is None:
                continue
            self.subscribe(channel, sub.callback)

    # ------------------------------------------------------------------
    # Failure detection & failover recovery (repro.faults subsystem)
    # ------------------------------------------------------------------
    def _live_failed(self, now: float) -> Set[str]:
        """Currently-dead servers; expires marks past the TTL."""
        ttl = self._failed_server_ttl
        expired = [s for s, t in self._failed_servers.items() if now - t >= ttl]
        for server in expired:
            del self._failed_servers[server]
        return set(self._failed_servers)

    def _ping_tick(self, now: float) -> None:
        """Probe every subscribed server; declare it dead after N misses.

        A crashed server never answers (its connection vanished without a
        FIN in this failure model), so consecutive unanswered pings are the
        only client-side liveness signal.  Servers this client recently
        published through are probed as well: a pure publisher would
        otherwise never notice its target died.
        """
        servers: Set[str] = set()
        for sub in self._subs.values():
            servers |= sub.servers
        if self._publish_targets:
            window = 5.0 * (self._ping_interval or 1.0)
            stale = [s for s, t in self._publish_targets.items() if now - t > window]
            for server in stale:
                del self._publish_targets[server]
            servers |= set(self._publish_targets)
        for server in list(self._ping_pending):
            if server not in servers:
                del self._ping_pending[server]
        for server in sorted(servers):
            misses = self._ping_pending.get(server, 0)
            if misses >= self._ping_miss_limit:
                self._on_server_failed(server)
                continue
            self._ping_pending[server] = misses + 1
            self.send(server, PingCmd(), PingCmd.WIRE_SIZE)

    def _on_server_failed(self, server_id: str) -> None:
        """Declare ``server_id`` dead and fail its subscriptions over."""
        now = self.sim.now
        if server_id in self._live_failed(now):
            return  # already failing over
        self._failed_servers[server_id] = now
        self._ping_pending.pop(server_id, None)
        self._publish_targets.pop(server_id, None)
        # Any plan entry routing through the dead server is poison.
        for channel in list(self._entries):
            if server_id in self._entries[channel].mapping.servers:
                del self._entries[channel]
        affected = []
        for channel, sub in self._subs.items():
            if server_id not in sub.servers:
                continue
            sub.servers.discard(server_id)
            acked = self._acked.get(channel)
            if acked is not None:
                acked.discard(server_id)
            pending = self._reconcile.get(channel)
            if pending is not None:
                # A reconcile must not wait forever on a dead server's ack.
                pending.awaiting.discard(server_id)
                if server_id in pending.confirm:
                    pending.confirm.remove(server_id)
                if server_id in pending.drop:
                    pending.drop.remove(server_id)
                if not pending.awaiting:
                    self._finish_reconcile(channel)
            affected.append(channel)
        self.failovers += 1
        if self._tracer.enabled:
            self._tracer.emit(
                ClientFailoverEvent(now, self.node_id, server_id, tuple(affected))
            )
            self._tracer.metrics.counter("client_failovers_total").inc()
        for channel in affected:
            if channel not in self._recovery_pending:
                self._recovery_pending.add(channel)
                self._try_recover(channel, 0)

    def _try_recover(self, channel: str, attempt: int) -> None:
        """(Re-)establish the channel's subscriptions on live servers."""
        if not self.alive or self.transport is None:
            return
        sub = self._subs.get(channel)
        if sub is None or channel not in self._recovery_pending:
            self._recovery_pending.discard(channel)
            self._recovery_attempt.pop(channel, None)
            return
        self._recovery_attempt[channel] = attempt
        now = self.sim.now
        failed = self._live_failed(now)
        mapping = self._resolve(channel)
        desired = {
            s
            for s in self._desired_sub_servers(mapping, sub.servers)
            if s not in failed
        }
        if not desired:
            # Every candidate is currently marked dead; back off and retry
            # (marks expire, and repair notices may arrive meanwhile).
            self._schedule_recovery_retry(channel, attempt)
            return
        for server in sorted(desired - sub.servers):
            self.send(
                server,
                self._subscribe_cmd(channel, mapping.version, server),
                SubscribeCmd.WIRE_SIZE,
            )
            self.resubscribes += 1
        sub.servers |= desired
        self.sim.schedule(
            self._subscribe_ack_timeout, self._verify_recovery, channel, attempt
        )

    def _verify_recovery(self, channel: str, attempt: int) -> None:
        """Ack check: recovery is done only when every server confirmed."""
        if not self.alive or self.transport is None:
            return
        if self._recovery_attempt.get(channel) != attempt:
            return  # superseded by a newer recovery round
        sub = self._subs.get(channel)
        if sub is None or channel not in self._recovery_pending:
            self._recovery_pending.discard(channel)
            self._recovery_attempt.pop(channel, None)
            return
        acked = self._acked.get(channel, set())
        missing = {s for s in sub.servers if s not in acked}
        # An empty server set is NOT a recovered subscription: a concurrent
        # failover for another channel may have discarded our only target
        # between _try_recover and this check, making "nothing missing"
        # vacuously true.  Keep retrying until a live server actually acks.
        if not missing and sub.servers:
            self._recovery_pending.discard(channel)
            self._recovery_attempt.pop(channel, None)
            self.reconnects += 1
            if self._tracer.enabled:
                self._tracer.emit(
                    ClientReconnectEvent(
                        self.sim.now,
                        self.node_id,
                        channel,
                        tuple(sorted(sub.servers)),
                        attempt + 1,
                    )
                )
                self._tracer.metrics.counter("client_reconnects_total").inc()
            return
        # No ack within the window: that server is dead (or unreachable)
        # too.  Mark it and retry against the next candidate with
        # exponential backoff.
        for server in sorted(missing):
            self._on_server_failed(server)
        self._schedule_recovery_retry(channel, attempt)

    def _schedule_recovery_retry(self, channel: str, attempt: int) -> None:
        delay = min(
            self._reconnect_backoff_base * (2.0 ** attempt),
            self._reconnect_backoff_max,
        )
        self.sim.schedule(delay, self._try_recover, channel, attempt + 1)
