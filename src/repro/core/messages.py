"""Dynamoth control-plane and data-plane message formats.

Application payloads are always wrapped in an :class:`AppEnvelope` before
being handed to the broker.  The envelope carries the globally unique
message id used for client-side exactly-once delivery (section IV-A.3), the
plan version the publisher routed with (how dispatchers detect stale
publishers), and a ``forwarded`` flag that suppresses dispatcher forwarding
loops.

Control messages either travel as direct actor messages (plan pushes, load
reports, redirect notices) or ride *inside* envelopes published on the
affected channel (switch notices), exactly as in the paper where "all
inter-component communications are done using the pub/sub primitives".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.core.plan import ChannelMapping, Plan


@dataclass(frozen=True, slots=True)
class AppEnvelope:
    """Wrapper around every application publication.

    ``sent_at`` is the publisher's timestamp, used by the experiment
    harness to measure response time exactly as the paper does (publisher
    receives its own state update back).
    """

    msg_id: str
    sender: str
    body: Any
    plan_version: int
    sent_at: float
    forwarded: bool = False
    #: causal-order metadata (``repro.core.reliability``): the sender's
    #: per-channel FIFO publication counter (0 = causal mode off) ...
    pub_seq: int = 0
    #: ... and its dependency snapshot -- (publisher, highest pub_seq the
    #: sender had delivered from that publisher on this channel).
    deps: Tuple[Tuple[str, int], ...] = ()

    def as_forwarded(self) -> "AppEnvelope":
        return AppEnvelope(
            self.msg_id,
            self.sender,
            self.body,
            self.plan_version,
            self.sent_at,
            True,
            self.pub_seq,
            self.deps,
        )

    #: Envelope framing overhead on the wire, bytes.
    WIRE_OVERHEAD = 32


@dataclass(frozen=True, slots=True)
class SwitchNotice:
    """Published *on the channel itself* to migrate its subscribers.

    Sent by a dispatcher together with the first publication on the channel
    after a plan change (section IV, "Subscriber Change"), and -- as a
    robustness addition -- once more when the forwarding window closes
    while subscribers remain on the old server.
    """

    channel: str
    mapping: ChannelMapping

    WIRE_SIZE = 96


@dataclass(frozen=True, slots=True)
class MappingNotice:
    """Direct server-to-client redirect: "you used the wrong server(s)".

    Covers both the *Initialization* case (client guessed by consistent
    hashing) and the *Publishing on old server* case of section IV.
    """

    channel: str
    mapping: ChannelMapping

    WIRE_SIZE = 96


@dataclass(frozen=True, slots=True)
class PlanPush:
    """Load balancer reliably distributing a new global plan to dispatchers.

    ``stragglers`` is the balancer's snapshot of recently displaced
    servers per channel (server -> forwarding deadline): dispatchers
    merge it into their local registries so that forwarding survives
    chained migrations and reaches dispatchers spawned mid-chain.

    ``failed_servers`` lists servers the balancer currently considers
    dead (heartbeat-confirmed): dispatchers stop forwarding toward them,
    drop them from straggler registries, and re-resolve consistent-hashing
    fallbacks past them on the ring.
    """

    plan: Plan
    stragglers: Any = None
    failed_servers: Tuple[str, ...] = ()

    WIRE_SIZE = 512


@dataclass(frozen=True, slots=True)
class NoMoreSubscribers:
    """Dispatcher-to-dispatcher: the old server has no subscribers left for
    ``channel``, so forwarding toward it can stop (section IV-A.5)."""

    channel: str
    server_id: str

    WIRE_SIZE = 64


@dataclass(frozen=True, slots=True)
class ChannelMetricsSnapshot:
    """Per-channel aggregate over one LLA report interval."""

    channel: str
    #: publications received per second (averaged over the interval)
    publications_per_s: float
    #: distinct publishers observed during the interval
    publisher_count: int
    #: current number of subscribers on this server
    subscriber_count: int
    #: deliveries sent per second
    messages_out_per_s: float
    #: egress bytes per second attributable to this channel
    bytes_out_per_s: float


@dataclass(frozen=True, slots=True)
class LoadReport:
    """One LLA's aggregate update message to the load balancer.

    Contains "all metrics for all channels ... as well as the theoretical
    maximum outgoing bandwidth supported by that server node [and] the
    measured outgoing bandwidth on the network interface" (section III-A).
    """

    server_id: str
    window_start: float
    window_end: float
    #: ``T_i`` -- nominal maximum egress bandwidth, bytes/second
    nominal_egress_bps: float
    #: ``M_i`` -- measured egress over the window, bytes/second
    measured_egress_bps: float
    channels: Tuple[ChannelMetricsSnapshot, ...]
    #: fraction of one core consumed over the window (can exceed 1.0 when
    #: the CPU queue grows).  Used by the CPU-aware balancing extension
    #: (the paper's future work: "integrate CPU load into our load
    #: balancing algorithms").
    cpu_utilization: float = 0.0

    WIRE_SIZE = 256

    @property
    def load_ratio(self) -> float:
        """``LR_i = M_i / T_i`` (eq. 1)."""
        return self.measured_egress_bps / self.nominal_egress_bps


@dataclass(frozen=True, slots=True)
class ServerSpawned:
    """Cloud notification: a rented server finished booting."""

    server_id: str

    WIRE_SIZE = 64
