"""Local Load Analyzer (LLA).

One LLA runs co-located with every pub/sub server (section III-A).  The
broker accumulates per-channel counters inline as publications complete
(loopback observation costs neither NIC bandwidth nor measurable CPU);
the LLA drains that window at each report flush and derives per-interval,
per-channel metrics:

* number of publications and the set of distinct publishers,
* number of deliveries sent and egress bytes attributable to the channel,
* the current subscriber count.

At a fixed interval it ships an aggregate :class:`~repro.core.messages.LoadReport`
to the load balancer, including the node's nominal maximum egress bandwidth
``T_i`` and the measured NIC egress ``M_i`` from which the load ratio
``LR_i = M_i / T_i`` (eq. 1) is derived.
"""

from __future__ import annotations

from typing import Any

from repro.broker.server import PubSubServer
from repro.core.messages import ChannelMetricsSnapshot, LoadReport
from repro.net.link import EgressPort
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.actor import Actor
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTask


class LocalLoadAnalyzer(Actor):
    """Per-node load monitor feeding the central load balancer."""

    def __init__(
        self,
        sim: Simulator,
        server: PubSubServer,
        egress_port: EgressPort,
        balancer_id: str,
        *,
        report_interval_s: float = 1.0,
        tracer: Tracer = NULL_TRACER,
    ):
        super().__init__(sim, f"lla@{server.node_id}", is_infra=True)
        self.server = server
        self._port = egress_port
        self._balancer_id = balancer_id
        self.report_interval_s = report_interval_s
        self._tracer = tracer

        self._window_start = sim.now
        self._bytes_at_window_start = egress_port.total_bytes
        self._cpu_at_window_start = server.cpu_time_total
        self.reports_sent = 0

        # Per-publication accounting happens inline in the broker's
        # publish-completion path (``PubSubServer._channel_stats``); the
        # LLA only drains the accumulated window at each report flush
        # instead of paying an observer callback per publication.
        self._task = PeriodicTask(sim, report_interval_s, self._report)

    def start(self) -> None:
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    @property
    def running(self) -> bool:
        """Whether periodic reporting is active (False while stalled)."""
        return self._task.running

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, now: float) -> None:
        duration = now - self._window_start
        if duration <= 0:
            return
        measured_bytes = self._port.total_bytes - self._bytes_at_window_start

        # Batched window flush: the broker accumulated [publications,
        # publisher set, messages_out, bytes_out] per channel inline; one
        # drain here replaces the per-publication observer callback.  The
        # arithmetic is identical, so reports are byte-for-byte the same.
        window = self.server.drain_channel_stats()
        snapshots = []
        channels = sorted(set(window) | set(self.server.channels()))
        for channel in channels:
            stats = window.get(channel)
            if stats is None:
                publications, publishers, messages_out, bytes_out = 0, (), 0, 0
            else:
                publications, publishers, messages_out, bytes_out = stats
            sub_count = self.server.subscriber_count(channel)
            if publications == 0 and messages_out == 0 and sub_count == 0:
                continue
            snapshots.append(
                ChannelMetricsSnapshot(
                    channel=channel,
                    publications_per_s=publications / duration,
                    publisher_count=len(publishers),
                    subscriber_count=sub_count,
                    messages_out_per_s=messages_out / duration,
                    bytes_out_per_s=bytes_out / duration,
                )
            )

        cpu_seconds = self.server.cpu_time_total - self._cpu_at_window_start
        report = LoadReport(
            server_id=self.server.node_id,
            window_start=self._window_start,
            window_end=now,
            nominal_egress_bps=self.server.config.nominal_egress_bps,
            measured_egress_bps=measured_bytes / duration,
            channels=tuple(snapshots),
            cpu_utilization=cpu_seconds / duration,
        )
        size = LoadReport.WIRE_SIZE + 64 * len(snapshots)
        self.send(self._balancer_id, report, size)
        self.reports_sent += 1
        tracer = self._tracer
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.counter("load_reports_total", server=self.server.node_id).inc()
            metrics.gauge("measured_load_ratio", server=self.server.node_id).set(
                report.load_ratio
            )
            metrics.gauge("cpu_utilization", server=self.server.node_id).set(
                report.cpu_utilization
            )
            profiler = tracer.profiler
            if profiler is not None:
                profiler.count("core", "lla.reports", 1)
                profiler.count("core", "lla.channel_snapshots", len(snapshots))

        self._window_start = now
        self._bytes_at_window_start = self._port.total_bytes
        self._cpu_at_window_start = self.server.cpu_time_total

    def receive(self, message: Any, src_id: str) -> None:  # pragma: no cover
        raise TypeError(f"LLA {self.node_id} does not accept messages")
