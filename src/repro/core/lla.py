"""Local Load Analyzer (LLA).

One LLA runs co-located with every pub/sub server (section III-A).  It
registers as an observer of every channel on the local server -- receiving
a copy of each publication over loopback, which costs neither NIC bandwidth
nor measurable CPU -- and keeps per-interval, per-channel metrics:

* number of publications and the set of distinct publishers,
* number of deliveries sent and egress bytes attributable to the channel,
* the current subscriber count.

At a fixed interval it ships an aggregate :class:`~repro.core.messages.LoadReport`
to the load balancer, including the node's nominal maximum egress bandwidth
``T_i`` and the measured NIC egress ``M_i`` from which the load ratio
``LR_i = M_i / T_i`` (eq. 1) is derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Set

from repro.broker.server import PubSubServer
from repro.core.messages import ChannelMetricsSnapshot, LoadReport
from repro.net.link import EgressPort
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.actor import Actor
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTask


@dataclass
class _ChannelAccumulator:
    publications: int = 0
    publishers: Set[str] = field(default_factory=set)
    messages_out: int = 0
    bytes_out: int = 0

    def idle(self) -> bool:
        return self.publications == 0 and self.messages_out == 0


class LocalLoadAnalyzer(Actor):
    """Per-node load monitor feeding the central load balancer."""

    def __init__(
        self,
        sim: Simulator,
        server: PubSubServer,
        egress_port: EgressPort,
        balancer_id: str,
        *,
        report_interval_s: float = 1.0,
        tracer: Tracer = NULL_TRACER,
    ):
        super().__init__(sim, f"lla@{server.node_id}", is_infra=True)
        self.server = server
        self._port = egress_port
        self._balancer_id = balancer_id
        self.report_interval_s = report_interval_s
        self._tracer = tracer

        self._accumulators: Dict[str, _ChannelAccumulator] = {}
        self._window_start = sim.now
        self._bytes_at_window_start = egress_port.total_bytes
        self._cpu_at_window_start = server.cpu_time_total
        self.reports_sent = 0

        server.add_observer(self._on_publication)
        self._task = PeriodicTask(sim, report_interval_s, self._report)

    def start(self) -> None:
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    @property
    def running(self) -> bool:
        """Whether periodic reporting is active (False while stalled)."""
        return self._task.running

    # ------------------------------------------------------------------
    # Observation (loopback, zero network cost)
    # ------------------------------------------------------------------
    def _on_publication(
        self, channel: str, publisher_id: str, payload: Any, payload_size: int
    ) -> None:
        acc = self._accumulators.get(channel)
        if acc is None:
            acc = _ChannelAccumulator()
            self._accumulators[channel] = acc
        fanout = self.server.last_fanout
        wire = payload_size + self.server.config.per_message_overhead_bytes
        acc.publications += 1
        acc.publishers.add(publisher_id)
        acc.messages_out += fanout
        acc.bytes_out += fanout * wire

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, now: float) -> None:
        duration = now - self._window_start
        if duration <= 0:
            return
        measured_bytes = self._port.total_bytes - self._bytes_at_window_start

        snapshots = []
        channels = sorted(set(self._accumulators) | set(self.server.channels()))
        for channel in channels:
            acc = self._accumulators.get(channel, _ChannelAccumulator())
            sub_count = self.server.subscriber_count(channel)
            if acc.idle() and sub_count == 0:
                continue
            snapshots.append(
                ChannelMetricsSnapshot(
                    channel=channel,
                    publications_per_s=acc.publications / duration,
                    publisher_count=len(acc.publishers),
                    subscriber_count=sub_count,
                    messages_out_per_s=acc.messages_out / duration,
                    bytes_out_per_s=acc.bytes_out / duration,
                )
            )

        cpu_seconds = self.server.cpu_time_total - self._cpu_at_window_start
        report = LoadReport(
            server_id=self.server.node_id,
            window_start=self._window_start,
            window_end=now,
            nominal_egress_bps=self.server.config.nominal_egress_bps,
            measured_egress_bps=measured_bytes / duration,
            channels=tuple(snapshots),
            cpu_utilization=cpu_seconds / duration,
        )
        size = LoadReport.WIRE_SIZE + 64 * len(snapshots)
        self.send(self._balancer_id, report, size)
        self.reports_sent += 1
        tracer = self._tracer
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.counter("load_reports_total", server=self.server.node_id).inc()
            metrics.gauge("measured_load_ratio", server=self.server.node_id).set(
                report.load_ratio
            )
            metrics.gauge("cpu_utilization", server=self.server.node_id).set(
                report.cpu_utilization
            )
            profiler = tracer.profiler
            if profiler is not None:
                profiler.count("core", "lla.reports", 1)
                profiler.count("core", "lla.channel_snapshots", len(snapshots))

        self._accumulators.clear()
        self._window_start = now
        self._bytes_at_window_start = self._port.total_bytes
        self._cpu_at_window_start = self.server.cpu_time_total

    def receive(self, message: Any, src_id: str) -> None:  # pragma: no cover
        raise TypeError(f"LLA {self.node_id} does not accept messages")
