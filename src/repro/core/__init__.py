"""Dynamoth core: the paper's primary contribution.

Layered on top of the stock pub/sub servers of :mod:`repro.broker`:

* :mod:`repro.core.plan` -- the *plan*: an elaborate lookup table mapping
  channels to the (possibly replicated) set of servers serving them.
* :mod:`repro.core.hashing` -- the consistent-hashing ring used as the
  universal fallback ("plan 0") and by the baseline balancer.
* :mod:`repro.core.client` -- the Dynamoth client library: partial local
  plans, lazy plan updates, replication-aware publish/subscribe routing and
  exactly-once delivery via globally unique message ids.
* :mod:`repro.core.lla` -- the Local Load Analyzer, co-located with every
  server, reporting per-channel per-second metrics to the load balancer.
* :mod:`repro.core.balancer` / :mod:`repro.core.rebalance` -- the
  hierarchical load balancer: channel-level replication (Algorithm 1) and
  system-level migration with elastic server pool management (Algorithm 2 +
  low-load rebalancing).
* :mod:`repro.core.dispatcher` -- the per-node dispatcher implementing the
  lazy, loss-free reconfiguration protocol of section IV.
* :mod:`repro.core.cluster` -- wiring: builds a whole Dynamoth deployment
  inside a simulator.
"""

from repro.core.config import DynamothConfig
from repro.core.hashing import ConsistentHashRing
from repro.core.plan import ChannelMapping, Plan, ReplicationMode
from repro.core.client import DynamothClient
from repro.core.cluster import DynamothCluster

__all__ = [
    "ChannelMapping",
    "ConsistentHashRing",
    "DynamothClient",
    "DynamothCluster",
    "DynamothConfig",
    "Plan",
    "ReplicationMode",
]
