"""Network fault plane: partitions, loss and jitter per node pair.

Implements the :class:`repro.net.transport.FaultPlane` protocol.  The
plane is consulted once per message send; with no active rules it answers
``0.0`` without touching its RNG stream, so an installed-but-idle plane
leaves the simulation byte-identical to one with no plane at all.
"""

from __future__ import annotations

from random import Random
from typing import Dict, Optional, Set, Tuple


class NetworkFaultPlane:
    """Mutable rule set the transport consults on every send.

    Rules are symmetric (keyed on the unordered node pair).  Randomness --
    loss sampling and jitter draws -- comes exclusively from the dedicated
    ``"chaos-net"`` stream passed in, and is consumed only for messages
    that actually cross a degraded link, keeping everything else on its
    usual deterministic course.
    """

    def __init__(self, rng: Random):
        self._rng = rng
        #: unordered pairs with all traffic cut
        self._cut: Set[Tuple[str, str]] = set()
        #: unordered pair -> (loss probability, jitter bound seconds)
        self._links: Dict[Tuple[str, str], Tuple[float, float]] = {}
        self.messages_cut = 0
        self.messages_lost = 0

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    # ------------------------------------------------------------------
    # Rule management (driven by the FaultInjector)
    # ------------------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        self._cut.add(self._key(a, b))

    def heal(self, a: str, b: str) -> None:
        self._cut.discard(self._key(a, b))

    def degrade(self, a: str, b: str, loss: float, jitter_s: float) -> None:
        """Set (or, with both zero, clear) loss/jitter on a link."""
        if not 0.0 <= loss <= 1.0:
            raise ValueError(f"loss must be in [0, 1], got {loss}")
        if jitter_s < 0.0:
            raise ValueError(f"jitter_s must be >= 0, got {jitter_s}")
        key = self._key(a, b)
        if loss <= 0.0 and jitter_s <= 0.0:
            self._links.pop(key, None)
        else:
            self._links[key] = (loss, jitter_s)

    def clear(self) -> None:
        self._cut.clear()
        self._links.clear()

    @property
    def active(self) -> bool:
        return bool(self._cut or self._links)

    # ------------------------------------------------------------------
    # FaultPlane protocol
    # ------------------------------------------------------------------
    def apply(self, src_id: str, dst_id: str) -> Optional[float]:
        if not self._cut and not self._links:
            return 0.0
        key = (src_id, dst_id) if src_id <= dst_id else (dst_id, src_id)
        if key in self._cut:
            self.messages_cut += 1
            return None
        rule = self._links.get(key)
        if rule is None:
            return 0.0
        loss, jitter_s = rule
        if loss > 0.0 and self._rng.random() < loss:
            self.messages_lost += 1
            return None
        if jitter_s > 0.0:
            return self._rng.random() * jitter_s
        return 0.0
