"""The fault injector: arms a chaos schedule against a live cluster.

The injector owns two dedicated RNG streams -- ``"chaos"`` for expanding
stochastic schedules and ``"chaos-net"`` for the network fault plane -- so
arming a schedule never perturbs any other stream: a run with an armed but
empty schedule is byte-identical to an uninjected run of the same seed.
"""

from __future__ import annotations

from typing import List

from repro.core.cluster import DynamothCluster
from repro.faults.netfaults import NetworkFaultPlane
from repro.faults.schedule import (
    ChaosSchedule,
    ConcreteAction,
    CrashServer,
    DegradeLink,
    HealPartition,
    PartitionNodes,
    RestartServer,
    StallLla,
)
from repro.obs.trace import LinkFaultEvent, PartitionEvent, PartitionHealedEvent


class FaultInjector:
    """Schedules and executes one :class:`ChaosSchedule` on a cluster."""

    def __init__(self, cluster: DynamothCluster, schedule: ChaosSchedule):
        self.cluster = cluster
        self.schedule = schedule
        self._rng = cluster.rng.stream("chaos")
        self.plane = NetworkFaultPlane(cluster.rng.stream("chaos-net"))
        self._armed = False
        #: the expanded, concrete fault timeline (filled by :meth:`arm`)
        self.timeline: List[ConcreteAction] = []

        # --- counters ---
        self.crashes = 0
        self.restarts = 0
        self.partitions = 0
        self.heals = 0
        self.link_faults = 0
        self.lla_stalls = 0

    def arm(self) -> List[ConcreteAction]:
        """Install the fault plane and schedule every action.

        Returns the concrete timeline (stochastic processes expanded), so
        experiments can record exactly which faults will fire.
        """
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        self.cluster.transport.fault_plane = self.plane
        self.timeline = self.schedule.expand(
            self._rng, sorted(self.cluster.servers)
        )
        for action in self.timeline:
            self.cluster.sim.schedule_at(action.at, self._execute, action)
        return self.timeline

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, action: ConcreteAction) -> None:
        if isinstance(action, CrashServer):
            if action.server in self.cluster.servers:
                self.cluster.crash_server(action.server)
                self.crashes += 1
        elif isinstance(action, RestartServer):
            if action.server in self.cluster.crashed_servers:
                self.cluster.restart_server(action.server)
                self.restarts += 1
        elif isinstance(action, PartitionNodes):
            self._partition(action.a, action.b)
            if action.until is not None:
                self.cluster.sim.schedule_at(
                    action.until, self._execute, HealPartition(action.until, action.a, action.b)
                )
        elif isinstance(action, HealPartition):
            self._heal(action.a, action.b)
        elif isinstance(action, DegradeLink):
            self._degrade(action.a, action.b, action.loss, action.jitter_s)
            if action.until is not None:
                self.cluster.sim.schedule_at(
                    action.until,
                    self._execute,
                    DegradeLink(action.until, action.a, action.b, 0.0, 0.0),
                )
        elif isinstance(action, StallLla):
            self._stall(action)
        else:  # pragma: no cover - schedule.expand only emits the above
            raise TypeError(f"unknown fault action: {type(action).__name__}")

    def _group(self, endpoint: str) -> tuple:
        """A server endpoint means the whole machine, not one socket."""
        if endpoint in self.cluster.servers or endpoint in self.cluster.crashed_servers:
            return self.cluster.colocated_node_ids(endpoint)
        return (endpoint,)

    def _partition(self, a: str, b: str) -> None:
        for node_a in self._group(a):
            for node_b in self._group(b):
                self.plane.partition(node_a, node_b)
        self.partitions += 1
        tracer = self.cluster.tracer
        if tracer.enabled:
            tracer.emit(PartitionEvent(self.cluster.sim.now, a, b))

    def _heal(self, a: str, b: str) -> None:
        for node_a in self._group(a):
            for node_b in self._group(b):
                self.plane.heal(node_a, node_b)
        self.heals += 1
        tracer = self.cluster.tracer
        if tracer.enabled:
            tracer.emit(PartitionHealedEvent(self.cluster.sim.now, a, b))

    def _degrade(self, a: str, b: str, loss: float, jitter_s: float) -> None:
        for node_a in self._group(a):
            for node_b in self._group(b):
                self.plane.degrade(node_a, node_b, loss, jitter_s)
        self.link_faults += 1
        tracer = self.cluster.tracer
        if tracer.enabled:
            tracer.emit(LinkFaultEvent(self.cluster.sim.now, a, b, loss, jitter_s))

    def _stall(self, action: StallLla) -> None:
        if action.server not in self.cluster.llas:
            return  # crashed (or decommissioned) in the meantime
        self.cluster.stall_lla(action.server)
        self.lla_stalls += 1
        if action.duration_s is not None:
            self.cluster.sim.schedule(action.duration_s, self._resume_lla, action.server)

    def _resume_lla(self, server_id: str) -> None:
        if server_id in self.cluster.llas:
            self.cluster.resume_lla(server_id)
