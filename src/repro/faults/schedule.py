"""Declarative chaos schedules.

A :class:`ChaosSchedule` is an immutable list of fault actions, each
stamped with its (virtual) execution time.  Deterministic actions name an
exact time and target; the stochastic :class:`RandomCrashes` process is
*expanded* into concrete crash/restart actions by :meth:`ChaosSchedule
.expand` using the injector's dedicated ``"chaos"`` RNG stream -- so the
same seed always yields the same fault timeline, and fault-free runs never
touch that stream at all.
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class CrashServer:
    """Hard-crash ``server`` at time ``at``."""

    at: float
    server: str


@dataclass(frozen=True)
class RestartServer:
    """Restart a previously crashed ``server`` at time ``at``."""

    at: float
    server: str


@dataclass(frozen=True)
class PartitionNodes:
    """Cut all traffic between ``a`` and ``b`` starting at ``at``.

    Endpoints naming a pub/sub server are expanded to the whole machine
    (server + dispatcher + LLA).  ``until`` schedules the matching heal;
    ``None`` means the partition holds until an explicit
    :class:`HealPartition`.
    """

    at: float
    a: str
    b: str
    until: Optional[float] = None


@dataclass(frozen=True)
class HealPartition:
    at: float
    a: str
    b: str


@dataclass(frozen=True)
class DegradeLink:
    """Inject loss and/or jitter on the ``a``--``b`` link at ``at``.

    ``loss`` is a per-message drop probability, ``jitter_s`` a uniform
    extra one-way delay bound.  ``until`` schedules automatic clearing.
    """

    at: float
    a: str
    b: str
    loss: float = 0.0
    jitter_s: float = 0.0
    until: Optional[float] = None


@dataclass(frozen=True)
class StallLla:
    """Freeze ``server``'s LLA reports at ``at`` (a gray failure: the
    broker keeps serving traffic while its heartbeat goes silent).
    ``duration_s=None`` stalls it for good."""

    at: float
    server: str
    duration_s: Optional[float] = None


@dataclass(frozen=True)
class RandomCrashes:
    """Poisson crash process over ``[start, end)`` at ``rate_per_s``.

    Each sampled instant crashes one uniformly chosen *currently-known*
    server; with ``restart_after_s`` set, every crash is followed by a
    restart that much later.  Expanded deterministically from the chaos
    RNG stream before the run starts.
    """

    rate_per_s: float
    start: float
    end: float
    restart_after_s: Optional[float] = None


FaultAction = Union[
    CrashServer,
    RestartServer,
    PartitionNodes,
    HealPartition,
    DegradeLink,
    StallLla,
    RandomCrashes,
]

#: Action types executable as-is (everything except RandomCrashes).
ConcreteAction = Union[
    CrashServer,
    RestartServer,
    PartitionNodes,
    HealPartition,
    DegradeLink,
    StallLla,
]


@dataclass(frozen=True)
class ChaosSchedule:
    """An immutable fault timeline; see the module docstring.

    Construction validates the *declarative* actions: per-action parameter
    ranges, restarts that reference a server never crashed (or not yet
    crashed at restart time), and overlapping partition windows on the
    same node pair.  :class:`RandomCrashes` expansions are exempt -- the
    injector already tolerates crash/restart races in sampled timelines.
    """

    actions: Tuple[FaultAction, ...] = ()

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise ``ValueError`` on an ill-formed schedule."""
        for action in self.actions:
            _validate_params(action)
        concrete = [a for a in self.actions if not isinstance(a, RandomCrashes)]
        concrete.sort(key=lambda a: a.at)
        _validate_crash_restart_order(concrete)
        _validate_partition_windows(concrete)

    @classmethod
    def single_crash(
        cls,
        server: str,
        at: float,
        restart_after_s: Optional[float] = None,
    ) -> "ChaosSchedule":
        """The canonical scenario: crash one broker, optionally restart."""
        actions: List[FaultAction] = [CrashServer(at, server)]
        if restart_after_s is not None:
            actions.append(RestartServer(at + restart_after_s, server))
        return cls(tuple(actions))

    def expand(
        self, rng: Random, server_ids: Sequence[str]
    ) -> List[ConcreteAction]:
        """Resolve stochastic actions into a concrete, time-sorted list.

        ``server_ids`` must be passed in deterministic order (the injector
        sorts them); ``rng`` is consumed only for :class:`RandomCrashes`
        entries, so schedules without them expand identically regardless
        of the stream's state.
        """
        concrete: List[ConcreteAction] = []
        for action in self.actions:
            if isinstance(action, RandomCrashes):
                concrete.extend(self._expand_random(action, rng, server_ids))
            else:
                concrete.append(action)
        # Stable sort on time: simultaneous actions keep schedule order.
        concrete.sort(key=lambda a: a.at)
        return concrete

    @staticmethod
    def _expand_random(
        process: RandomCrashes, rng: Random, server_ids: Sequence[str]
    ) -> List[ConcreteAction]:
        if process.rate_per_s <= 0.0 or not server_ids:
            return []
        out: List[ConcreteAction] = []
        t = process.start
        while True:
            t += rng.expovariate(process.rate_per_s)
            if t >= process.end:
                break
            server = server_ids[rng.randrange(len(server_ids))]
            out.append(CrashServer(t, server))
            if process.restart_after_s is not None:
                out.append(RestartServer(t + process.restart_after_s, server))
        return out


# ----------------------------------------------------------------------
# Validation helpers
# ----------------------------------------------------------------------
def _validate_params(action: FaultAction) -> None:
    if isinstance(action, RandomCrashes):
        if action.rate_per_s < 0.0:
            raise ValueError(f"RandomCrashes rate must be >= 0, got {action.rate_per_s}")
        if action.end < action.start:
            raise ValueError(
                f"RandomCrashes window ends ({action.end}) before it starts ({action.start})"
            )
        if action.restart_after_s is not None and action.restart_after_s <= 0.0:
            raise ValueError("RandomCrashes restart_after_s must be positive")
        return
    if action.at < 0.0:
        raise ValueError(f"action time must be >= 0, got {action.at} for {action}")
    if isinstance(action, (PartitionNodes, HealPartition, DegradeLink)):
        if action.a == action.b:
            raise ValueError(f"link endpoints must differ, got {action.a!r} twice")
    if isinstance(action, (PartitionNodes, DegradeLink)):
        if action.until is not None and action.until <= action.at:
            raise ValueError(
                f"window must end after it starts: at={action.at}, until={action.until}"
            )
    if isinstance(action, DegradeLink):
        if not 0.0 <= action.loss <= 1.0:
            raise ValueError(f"loss must be in [0, 1], got {action.loss}")
        if action.jitter_s < 0.0:
            raise ValueError(f"jitter_s must be >= 0, got {action.jitter_s}")
    if isinstance(action, StallLla):
        if action.duration_s is not None and action.duration_s <= 0.0:
            raise ValueError(f"stall duration must be positive, got {action.duration_s}")


def _validate_crash_restart_order(concrete: Sequence[ConcreteAction]) -> None:
    """Every declarative restart must follow a crash of the same server."""
    down: set = set()
    for action in concrete:
        if isinstance(action, CrashServer):
            # crashing an already-dead server is tolerated (the injector
            # skips it), so only the restart side is strict here
            down.add(action.server)
        elif isinstance(action, RestartServer):
            if action.server not in down:
                raise ValueError(
                    f"restart of {action.server!r} at t={action.at} precedes any crash"
                )
            down.discard(action.server)


def _validate_partition_windows(concrete: Sequence[ConcreteAction]) -> None:
    """No two partition windows on the same node pair may overlap."""
    events: Dict[Tuple[str, str], List[Tuple[float, int]]] = {}
    for action in concrete:
        if isinstance(action, PartitionNodes):
            pair = (min(action.a, action.b), max(action.a, action.b))
            events.setdefault(pair, []).append((action.at, 1))
            if action.until is not None:
                events[pair].append((action.until, 0))
        elif isinstance(action, HealPartition):
            pair = (min(action.a, action.b), max(action.a, action.b))
            events.setdefault(pair, []).append((action.at, 0))
    for pair, timeline in events.items():
        # closes sort before opens at the same instant, so back-to-back
        # windows (one ending exactly when the next begins) are legal.
        timeline.sort()
        open_ = False
        for _t, kind in timeline:
            if kind == 1:
                if open_:
                    raise ValueError(
                        f"overlapping partition windows on pair {pair}"
                    )
                open_ = True
            else:
                open_ = False  # healing an intact pair is a harmless no-op


# ----------------------------------------------------------------------
# Wire format (JSON-safe dicts; used by repro.check scenario files)
# ----------------------------------------------------------------------
_ACTION_CLASSES = {
    "crash": CrashServer,
    "restart": RestartServer,
    "partition": PartitionNodes,
    "heal": HealPartition,
    "degrade_link": DegradeLink,
    "stall_lla": StallLla,
    "random_crashes": RandomCrashes,
}
_ACTION_KINDS = {cls: kind for kind, cls in _ACTION_CLASSES.items()}


def action_to_dict(action: FaultAction) -> Dict[str, Any]:
    """Serialize one fault action to a JSON-safe dict with a ``kind`` tag."""
    out: Dict[str, Any] = {"kind": _ACTION_KINDS[type(action)]}
    for field in fields(action):
        out[field.name] = getattr(action, field.name)
    return out


def action_from_dict(data: Mapping[str, Any]) -> FaultAction:
    """Inverse of :func:`action_to_dict`."""
    kind = data.get("kind")
    cls = _ACTION_CLASSES.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault action kind: {kind!r}")
    kwargs = {f.name: data[f.name] for f in fields(cls) if f.name in data}
    return cls(**kwargs)
