"""Declarative chaos schedules.

A :class:`ChaosSchedule` is an immutable list of fault actions, each
stamped with its (virtual) execution time.  Deterministic actions name an
exact time and target; the stochastic :class:`RandomCrashes` process is
*expanded* into concrete crash/restart actions by :meth:`ChaosSchedule
.expand` using the injector's dedicated ``"chaos"`` RNG stream -- so the
same seed always yields the same fault timeline, and fault-free runs never
touch that stream at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class CrashServer:
    """Hard-crash ``server`` at time ``at``."""

    at: float
    server: str


@dataclass(frozen=True)
class RestartServer:
    """Restart a previously crashed ``server`` at time ``at``."""

    at: float
    server: str


@dataclass(frozen=True)
class PartitionNodes:
    """Cut all traffic between ``a`` and ``b`` starting at ``at``.

    Endpoints naming a pub/sub server are expanded to the whole machine
    (server + dispatcher + LLA).  ``until`` schedules the matching heal;
    ``None`` means the partition holds until an explicit
    :class:`HealPartition`.
    """

    at: float
    a: str
    b: str
    until: Optional[float] = None


@dataclass(frozen=True)
class HealPartition:
    at: float
    a: str
    b: str


@dataclass(frozen=True)
class DegradeLink:
    """Inject loss and/or jitter on the ``a``--``b`` link at ``at``.

    ``loss`` is a per-message drop probability, ``jitter_s`` a uniform
    extra one-way delay bound.  ``until`` schedules automatic clearing.
    """

    at: float
    a: str
    b: str
    loss: float = 0.0
    jitter_s: float = 0.0
    until: Optional[float] = None


@dataclass(frozen=True)
class StallLla:
    """Freeze ``server``'s LLA reports at ``at`` (a gray failure: the
    broker keeps serving traffic while its heartbeat goes silent).
    ``duration_s=None`` stalls it for good."""

    at: float
    server: str
    duration_s: Optional[float] = None


@dataclass(frozen=True)
class RandomCrashes:
    """Poisson crash process over ``[start, end)`` at ``rate_per_s``.

    Each sampled instant crashes one uniformly chosen *currently-known*
    server; with ``restart_after_s`` set, every crash is followed by a
    restart that much later.  Expanded deterministically from the chaos
    RNG stream before the run starts.
    """

    rate_per_s: float
    start: float
    end: float
    restart_after_s: Optional[float] = None


FaultAction = Union[
    CrashServer,
    RestartServer,
    PartitionNodes,
    HealPartition,
    DegradeLink,
    StallLla,
    RandomCrashes,
]

#: Action types executable as-is (everything except RandomCrashes).
ConcreteAction = Union[
    CrashServer,
    RestartServer,
    PartitionNodes,
    HealPartition,
    DegradeLink,
    StallLla,
]


@dataclass(frozen=True)
class ChaosSchedule:
    """An immutable fault timeline; see the module docstring."""

    actions: Tuple[FaultAction, ...] = ()

    @classmethod
    def single_crash(
        cls,
        server: str,
        at: float,
        restart_after_s: Optional[float] = None,
    ) -> "ChaosSchedule":
        """The canonical scenario: crash one broker, optionally restart."""
        actions: List[FaultAction] = [CrashServer(at, server)]
        if restart_after_s is not None:
            actions.append(RestartServer(at + restart_after_s, server))
        return cls(tuple(actions))

    def expand(
        self, rng: random.Random, server_ids: Sequence[str]
    ) -> List[ConcreteAction]:
        """Resolve stochastic actions into a concrete, time-sorted list.

        ``server_ids`` must be passed in deterministic order (the injector
        sorts them); ``rng`` is consumed only for :class:`RandomCrashes`
        entries, so schedules without them expand identically regardless
        of the stream's state.
        """
        concrete: List[ConcreteAction] = []
        for action in self.actions:
            if isinstance(action, RandomCrashes):
                concrete.extend(self._expand_random(action, rng, server_ids))
            else:
                concrete.append(action)
        # Stable sort on time: simultaneous actions keep schedule order.
        concrete.sort(key=lambda a: a.at)
        return concrete

    @staticmethod
    def _expand_random(
        process: RandomCrashes, rng: random.Random, server_ids: Sequence[str]
    ) -> List[ConcreteAction]:
        if process.rate_per_s <= 0.0 or not server_ids:
            return []
        out: List[ConcreteAction] = []
        t = process.start
        while True:
            t += rng.expovariate(process.rate_per_s)
            if t >= process.end:
                break
            server = server_ids[rng.randrange(len(server_ids))]
            out.append(CrashServer(t, server))
            if process.restart_after_s is not None:
                out.append(RestartServer(t + process.restart_after_s, server))
        return out
