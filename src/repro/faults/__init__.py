"""Fault injection and chaos schedules (the ``repro.faults`` subsystem).

Declarative, seed-deterministic failure scenarios for the simulated
Dynamoth deployment: crash/restart pub/sub servers, partition or degrade
network links, and stall LLA report streams -- all through hooks in the
cluster, transport and kernel, never through per-scenario broker forks.

The recovery counterpart lives in the production code paths themselves:
heartbeat failure detection and plan repair in
:mod:`repro.core.balancer`, failure-aware routing and repair buffering in
:mod:`repro.core.dispatcher`, and ping-probing plus backoff resubscribe in
:mod:`repro.core.client`.
"""

from repro.faults.injector import FaultInjector
from repro.faults.netfaults import NetworkFaultPlane
from repro.faults.schedule import (
    ChaosSchedule,
    CrashServer,
    DegradeLink,
    HealPartition,
    PartitionNodes,
    RandomCrashes,
    RestartServer,
    StallLla,
    action_from_dict,
    action_to_dict,
)

__all__ = [
    "ChaosSchedule",
    "CrashServer",
    "DegradeLink",
    "FaultInjector",
    "HealPartition",
    "NetworkFaultPlane",
    "PartitionNodes",
    "RandomCrashes",
    "RestartServer",
    "StallLla",
    "action_from_dict",
    "action_to_dict",
]
