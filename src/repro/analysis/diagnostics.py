"""Diagnostic records and their wire formats.

A :class:`Diagnostic` is one finding at one source location.  Text output
follows ruff's ``path:line:col: RULE message`` shape so editors and CI log
scrapers that already understand ruff pick these up for free; ``to_dict``
is the JSON-artifact form.

The *fingerprint* identifies a finding independently of its line number
(the source line text stands in for the position), so a committed baseline
survives unrelated edits above a grandfathered finding.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One static-analysis finding."""

    #: path relative to the project root, posix-separated
    path: str
    #: 1-based line of the offending node
    line: int
    #: 1-based column of the offending node
    col: int
    #: rule identifier, e.g. ``DET001``
    rule: str
    message: str
    #: the stripped source line, used for line-number-insensitive
    #: baseline fingerprints
    source: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Diagnostic":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            rule=str(data["rule"]),
            message=str(data["message"]),
            source=str(data.get("source", "")),
        )

    def cache_dict(self) -> Dict[str, Any]:
        """Like :meth:`to_dict` but keeps ``source`` (cache round-trips)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "source": self.source,
        }

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number-free)."""
        payload = f"{self.path}::{self.rule}::{self.source}".encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:16]


def sort_key(diagnostic: Diagnostic) -> tuple:
    """Deterministic report order: path, position, rule."""
    return (diagnostic.path, diagnostic.line, diagnostic.col, diagnostic.rule)
