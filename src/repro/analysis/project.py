"""Cross-file project facts for the cross-consistency rules.

Two rules need knowledge that lives in *other* files than the one being
analyzed:

* **TRC001** checks every ``tracer.emit(SomeEvent(...))`` call site against
  the event classes actually registered in ``repro.obs.trace``'s
  ``EVENT_TYPES`` table -- the registry whose omission otherwise only
  fails at runtime, when a trace export meets an unregistered type tag.
* **CFG001** checks field names used with ``DynamothConfig`` /
  ``ChaosScenarioConfig`` (constructor keywords and attribute reads)
  against the dataclass definitions, catching renamed-field drift in
  experiments/check code.

Facts are collected once per run by parsing the configured source files --
never by importing them, so the analyzer works on broken trees too.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Optional

from repro.analysis.config import AnalysisConfig


@dataclass(frozen=True)
class ClassFacts:
    """Field and method names of one tracked config dataclass."""

    fields: FrozenSet[str]
    methods: FrozenSet[str]

    @property
    def members(self) -> FrozenSet[str]:
        return self.fields | self.methods


@dataclass(frozen=True)
class ProjectFacts:
    """Everything the cross-file rules know about the project.

    ``trace_events`` is ``None`` when the schema file could not be read --
    TRC001 then silently skips (the analyzer may legitimately run on a
    subtree that does not contain the repository).  The same applies to
    absent entries of ``config_classes``.
    """

    trace_events: Optional[FrozenSet[str]]
    config_classes: Dict[str, ClassFacts]

    def cache_key(self) -> str:
        events = sorted(self.trace_events) if self.trace_events is not None else None
        classes = {
            name: (sorted(facts.fields), sorted(facts.methods))
            for name, facts in sorted(self.config_classes.items())
        }
        return repr((events, classes))


def _parse(path: Path) -> Optional[ast.Module]:
    try:
        return ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None


def _registered_event_names(tree: ast.Module) -> Optional[FrozenSet[str]]:
    """Class names listed in the ``EVENT_TYPES`` registry literal.

    The registry is a dict comprehension over a tuple of classes::

        EVENT_TYPES = {cls.TYPE: cls for cls in (PublishEvent, ...)}

    Reading the *registry* rather than the class definitions is the point:
    an event class that exists but was never registered is exactly the
    schema drift TRC001 must catch.
    """
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        named = any(
            isinstance(t, ast.Name) and t.id == "EVENT_TYPES" for t in targets
        )
        if not named:
            continue
        if isinstance(value, ast.DictComp):
            iterable = value.generators[0].iter
            if isinstance(iterable, (ast.Tuple, ast.List)):
                names = [
                    e.id for e in iterable.elts if isinstance(e, ast.Name)
                ]
                return frozenset(names)
        if isinstance(value, ast.Dict):
            names = [v.id for v in value.values if isinstance(v, ast.Name)]
            return frozenset(names)
    return None


def _class_facts(tree: ast.Module, class_name: str) -> Optional[ClassFacts]:
    """Field/method names of dataclass ``class_name`` in ``tree``."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or node.name != class_name:
            continue
        fields = set()
        methods = set()
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                fields.add(item.target.id)
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        # class-level constant (e.g. WIRE_SIZE); readable
                        fields.add(target.id)
            elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.add(item.name)
        return ClassFacts(frozenset(fields), frozenset(methods))
    return None


def collect_facts(root: Path, config: AnalysisConfig) -> ProjectFacts:
    """Parse the configured schema/config files under ``root``."""
    trace_events: Optional[FrozenSet[str]] = None
    schema_tree = _parse(root / config.trace_schema)
    if schema_tree is not None:
        trace_events = _registered_event_names(schema_tree)

    config_classes: Dict[str, ClassFacts] = {}
    for class_name, rel_path in sorted(config.config_classes.items()):
        tree = _parse(root / rel_path)
        if tree is None:
            continue
        facts = _class_facts(tree, class_name)
        if facts is not None:
            config_classes[class_name] = facts
    return ProjectFacts(trace_events=trace_events, config_classes=config_classes)
