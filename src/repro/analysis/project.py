"""Cross-file project facts for the whole-program rules (pass 1 of 2).

The v1 sanitizer collected just enough cross-file knowledge for TRC001
(the trace-event registry) and CFG001 (config dataclass members).  The
v2 rule family is interprocedural, so pass 1 now also collects:

* **wire messages** -- every dataclass defined in the configured
  ``wire-messages`` files, with its defining location (MSG001's universe
  of routable message types, MUT001's escape-tracking targets);
* **handler maps** -- for every actor class in the ``msg-actors`` files,
  the ``isinstance`` dispatch branches of its ``receive`` method
  (MSG001 checks them against the declared ``protocol`` routing table);
* **event field schemas** -- ordered ``(field, has_default)`` tuples per
  registered trace-event class, including the inherited ``t`` timestamp
  (TRC002 validates constructor call sites field-for-field);
* **the package import graph** -- module-level ``repro.<pkg>`` imports
  per top-level package (ARCH001's layer-DAG evidence, and what the
  facts unit tests pin);
* **config field reads** -- every attribute name read anywhere under
  ``src/``, *excluding* ``self.<field>`` reads inside a tracked config
  class's own body (CFG002 calls a field dead when nothing outside the
  class ever reads it -- ``__post_init__`` validation must not count).

Facts are collected once per run by parsing the configured source files --
never by importing them, so the analyzer works on broken trees too.  The
full facts digest is part of the result-cache context key: edit the
message protocol and every cached per-file verdict is invalidated.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.config import AnalysisConfig


@dataclass(frozen=True)
class ClassFacts:
    """Field and method names of one tracked config dataclass."""

    fields: FrozenSet[str]
    methods: FrozenSet[str]

    @property
    def members(self) -> FrozenSet[str]:
        return self.fields | self.methods


@dataclass(frozen=True)
class EventFacts:
    """Constructor schema of one registered trace-event class."""

    #: ``(field name, has default)`` in declaration order, ``t`` first.
    fields: Tuple[Tuple[str, bool], ...]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    @property
    def required(self) -> Tuple[str, ...]:
        return tuple(name for name, has_default in self.fields if not has_default)


@dataclass(frozen=True)
class HandlerFacts:
    """One actor class's ``receive`` dispatch map."""

    #: project-relative path of the defining file
    path: str
    #: line of the ``receive`` def
    line: int
    #: ``(message class name, isinstance branch line)`` in source order
    dispatch: Tuple[Tuple[str, int], ...]

    @property
    def handled(self) -> FrozenSet[str]:
        return frozenset(name for name, _ in self.dispatch)


@dataclass(frozen=True)
class ProjectFacts:
    """Everything the cross-file rules know about the project.

    ``trace_events`` is ``None`` when the schema file could not be read --
    TRC001/TRC002 then silently skip (the analyzer may legitimately run
    on a subtree that does not contain the repository).  The same applies
    to absent entries of the other maps.
    """

    trace_events: Optional[FrozenSet[str]]
    config_classes: Dict[str, ClassFacts]
    event_fields: Dict[str, EventFacts] = field(default_factory=dict)
    #: wire dataclass name -> (defining path, line)
    wire_messages: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: actor class name -> receive dispatch facts
    handlers: Dict[str, HandlerFacts] = field(default_factory=dict)
    #: top-level package -> packages it imports at module level
    import_graph: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: attribute names read anywhere under src/ (CFG002 evidence)
    config_field_reads: FrozenSet[str] = frozenset()
    #: message class -> actor classes that must dispatch it (from config)
    protocol: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: wire types deliberately outside actor routing (from config)
    unrouted: FrozenSet[str] = frozenset()
    #: declared layer DAG: package -> import allow-list (from config)
    layers: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def cache_key(self) -> str:
        events = sorted(self.trace_events) if self.trace_events is not None else None
        classes = {
            name: (sorted(facts.fields), sorted(facts.methods))
            for name, facts in sorted(self.config_classes.items())
        }
        schemas = {
            name: facts.fields for name, facts in sorted(self.event_fields.items())
        }
        handlers = {
            name: (facts.path, facts.line, facts.dispatch)
            for name, facts in sorted(self.handlers.items())
        }
        graph = {
            pkg: sorted(deps) for pkg, deps in sorted(self.import_graph.items())
        }
        return repr(
            (
                events,
                classes,
                schemas,
                sorted(self.wire_messages.items()),
                handlers,
                graph,
                sorted(self.config_field_reads),
                sorted(self.protocol.items()),
                sorted(self.unrouted),
                sorted(self.layers.items()),
            )
        )


def _parse(path: Path) -> Optional[ast.Module]:
    try:
        return ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None


def _registered_event_names(tree: ast.Module) -> Optional[FrozenSet[str]]:
    """Class names listed in the ``EVENT_TYPES`` registry literal.

    The registry is a dict comprehension over a tuple of classes::

        EVENT_TYPES = {cls.TYPE: cls for cls in (PublishEvent, ...)}

    Reading the *registry* rather than the class definitions is the point:
    an event class that exists but was never registered is exactly the
    schema drift TRC001 must catch.
    """
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        named = any(
            isinstance(t, ast.Name) and t.id == "EVENT_TYPES" for t in targets
        )
        if not named:
            continue
        if isinstance(value, ast.DictComp):
            iterable = value.generators[0].iter
            if isinstance(iterable, (ast.Tuple, ast.List)):
                names = [
                    e.id for e in iterable.elts if isinstance(e, ast.Name)
                ]
                return frozenset(names)
        if isinstance(value, ast.Dict):
            names = [v.id for v in value.values if isinstance(v, ast.Name)]
            return frozenset(names)
    return None


def _class_facts(tree: ast.Module, class_name: str) -> Optional[ClassFacts]:
    """Field/method names of dataclass ``class_name`` in ``tree``."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or node.name != class_name:
            continue
        fields: Set[str] = set()
        methods: Set[str] = set()
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                fields.add(item.target.id)
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        # class-level constant (e.g. WIRE_SIZE); readable
                        fields.add(target.id)
            elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.add(item.name)
        return ClassFacts(frozenset(fields), frozenset(methods))
    return None


def _ann_fields(node: ast.ClassDef) -> List[Tuple[str, bool]]:
    """Dataclass fields of one class body: ``(name, has_default)``."""
    out: List[Tuple[str, bool]] = []
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            annotation = ast.unparse(item.annotation)
            if "ClassVar" in annotation:
                continue
            out.append((item.target.id, item.value is not None))
    return out


def _event_schemas(tree: ast.Module) -> Dict[str, EventFacts]:
    """Per-event constructor schemas: inherited base fields + own fields.

    Every event subclasses ``TraceEvent`` directly, so inheritance is one
    level: the base's fields (the ``t`` timestamp) come first, matching
    dataclass field order at runtime.
    """
    base: List[Tuple[str, bool]] = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "TraceEvent":
            base = _ann_fields(node)
            break
    schemas: Dict[str, EventFacts] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        inherits = any(
            isinstance(b, ast.Name) and b.id == "TraceEvent" for b in node.bases
        )
        if not inherits:
            continue
        schemas[node.name] = EventFacts(tuple(base + _ann_fields(node)))
    return schemas


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr
            if isinstance(target, ast.Attribute)
            else ""
        )
        if name == "dataclass":
            return True
    return False


def dispatch_map(fn: ast.FunctionDef) -> List[Tuple[str, int]]:
    """``isinstance`` branches of an actor ``receive`` method.

    Only tests against the *message parameter* (the first argument after
    ``self``) count -- ``isinstance`` checks on payloads or locals are
    not dispatch.  Tuple second arguments contribute every named class.
    """
    params = [a.arg for a in fn.args.args if a.arg != "self"]
    if not params:
        return []
    message = params[0]
    out: List[Tuple[str, int]] = []
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            continue
        if node.func.id != "isinstance" or len(node.args) != 2:
            continue
        subject, types = node.args
        if not (isinstance(subject, ast.Name) and subject.id == message):
            continue
        if isinstance(types, ast.Name):
            out.append((types.id, node.lineno))
        elif isinstance(types, ast.Tuple):
            for element in types.elts:
                if isinstance(element, ast.Name):
                    out.append((element.id, node.lineno))
    return out


def _handler_facts(tree: ast.Module, rel_path: str) -> Dict[str, HandlerFacts]:
    out: Dict[str, HandlerFacts] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and item.name == "receive":
                out[node.name] = HandlerFacts(
                    path=rel_path,
                    line=item.lineno,
                    dispatch=tuple(dispatch_map(item)),
                )
    return out


def module_level_repro_imports(tree: ast.Module) -> Iterator[Tuple[str, int]]:
    """``(subpackage, line)`` for each top-level ``repro.<pkg>`` import.

    Only statements directly in the module body count: imports inside
    ``if TYPE_CHECKING:`` blocks, functions, or ``try`` fallbacks are
    deliberate cycle-breakers and never create a runtime layering edge.
    """
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    yield parts[1], stmt.lineno
        elif isinstance(stmt, ast.ImportFrom) and stmt.module and not stmt.level:
            parts = stmt.module.split(".")
            if parts[0] != "repro":
                continue
            if len(parts) > 1:
                yield parts[1], stmt.lineno
            else:
                # ``from repro import core`` names packages directly
                for alias in stmt.names:
                    yield alias.name, stmt.lineno


def _tracked_self_reads(tree: ast.Module, tracked: FrozenSet[str]) -> Set[int]:
    """``id()`` of ``self.<x>`` nodes inside tracked config class bodies."""
    skip: Set[int] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and node.name in tracked):
            continue
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"
            ):
                skip.add(id(inner))
    return skip


def _scan_src(
    root: Path, config: AnalysisConfig
) -> Tuple[Dict[str, FrozenSet[str]], FrozenSet[str]]:
    """One pass over ``src/``: the import graph and the attribute-read set."""
    graph: Dict[str, Set[str]] = {}
    reads: Set[str] = set()
    tracked = frozenset(config.config_classes)
    pkg_root = root / "src" / "repro"
    if not pkg_root.is_dir():
        return {}, frozenset()
    for path in sorted(pkg_root.rglob("*.py")):
        tree = _parse(path)
        if tree is None:
            continue
        rel_parts = path.relative_to(pkg_root).parts
        if len(rel_parts) > 1:
            pkg = rel_parts[0]
            edges = graph.setdefault(pkg, set())
            for target, _line in module_level_repro_imports(tree):
                if target != pkg:
                    edges.add(target)
        skip = _tracked_self_reads(tree, tracked)
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in skip
            ):
                reads.add(node.attr)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "getattr"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                reads.add(node.args[1].value)
    frozen_graph = {pkg: frozenset(deps) for pkg, deps in graph.items()}
    return frozen_graph, frozenset(reads)


def collect_facts(root: Path, config: AnalysisConfig) -> ProjectFacts:
    """Parse the configured schema/config/protocol files under ``root``."""
    trace_events: Optional[FrozenSet[str]] = None
    event_fields: Dict[str, EventFacts] = {}
    schema_tree = _parse(root / config.trace_schema)
    if schema_tree is not None:
        trace_events = _registered_event_names(schema_tree)
        event_fields = _event_schemas(schema_tree)

    config_classes: Dict[str, ClassFacts] = {}
    for class_name, rel_path in sorted(config.config_classes.items()):
        tree = _parse(root / rel_path)
        if tree is None:
            continue
        facts = _class_facts(tree, class_name)
        if facts is not None:
            config_classes[class_name] = facts

    wire_messages: Dict[str, Tuple[str, int]] = {}
    for rel_path in config.wire_messages:
        tree = _parse(root / rel_path)
        if tree is None:
            continue
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                wire_messages[node.name] = (rel_path, node.lineno)

    handlers: Dict[str, HandlerFacts] = {}
    for rel_path in config.msg_actors:
        tree = _parse(root / rel_path)
        if tree is None:
            continue
        handlers.update(_handler_facts(tree, rel_path))

    import_graph, config_field_reads = _scan_src(root, config)
    return ProjectFacts(
        trace_events=trace_events,
        config_classes=config_classes,
        event_fields=event_fields,
        wire_messages=wire_messages,
        handlers=handlers,
        import_graph=import_graph,
        config_field_reads=config_field_reads,
        protocol={k: tuple(v) for k, v in sorted(config.protocol.items())},
        unrouted=frozenset(config.unrouted_messages),
        layers={k: tuple(v) for k, v in sorted(config.layers.items())},
    )
