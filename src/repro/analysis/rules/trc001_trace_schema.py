"""TRC001: emitted trace events must be registered in the schema."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import Finding, Rule, RuleContext

_SCHEMA_MODULE = "repro.obs.trace"


class TraceSchemaRule(Rule):
    """Every ``tracer.emit(SomeEvent(...))`` call site must construct an
    event class that is registered in ``repro.obs.trace``'s
    ``EVENT_TYPES`` table.

    The table is what the JSONL loader uses to revive events, so a class
    that exists-but-is-unregistered round-trips through export as a dead
    ``{"type": ...}`` dict: traces written today silently stop loading in
    ``repro.obs.cli`` and every oracle that replays them.  That drift
    never raises at emit time -- which is why it is a lint, checked
    cross-file against the registry literal parsed from the schema module
    (never imported, so it also works on broken trees).

    The check is intentionally precise: only constructor arguments whose
    class resolves through imports to ``repro.obs.trace`` are validated,
    so locally-defined event types and non-trace arguments are ignored.
    ``Tracer``/``NullTracer`` helpers and the abstract ``TraceEvent`` base
    are resolvable but unregistered -- emitting the base class directly is
    exactly the bug this rule exists to flag.
    """

    ID = "TRC001"
    SUMMARY = "emit() of an event class missing from EVENT_TYPES"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        registry = ctx.facts.trace_events
        if registry is None:
            return
        imports = ctx.imports
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if not isinstance(arg, ast.Call):
                continue
            name = imports.resolve_call(arg.func)
            if name is None or not name.startswith(_SCHEMA_MODULE + "."):
                continue
            class_name = name[len(_SCHEMA_MODULE) + 1 :]
            if "." in class_name or class_name in registry:
                continue
            yield Finding(
                arg.lineno,
                arg.col_offset,
                f"emitted event `{class_name}` is not registered in "
                f"EVENT_TYPES ({_SCHEMA_MODULE}); exported traces will "
                "not load back",
            )
