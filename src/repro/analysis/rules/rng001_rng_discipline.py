"""RNG001: RNG threading discipline (typed params, narrow imports)."""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.rules.base import Finding, Rule, RuleContext
from repro.analysis.rules.det002_global_rng import GLOBAL_RNG_FUNCTIONS


def _rng_params(node: ast.arguments) -> List[ast.arg]:
    params = []
    for arg in (
        list(node.posonlyargs) + list(node.args) + list(node.kwonlyargs)
    ):
        if arg.arg == "rng" or arg.arg.endswith("_rng"):
            params.append(arg)
    return params


def _annotation_names_random(annotation: ast.expr) -> bool:
    text = ast.unparse(annotation)
    return "Random" in text


class RngDisciplineRule(Rule):
    """Randomness is threaded through the codebase as seeded
    ``random.Random`` stream objects (see ``repro.sim.rng``).  Two
    complementary hygiene checks keep that discipline visible to the type
    checker:

    1. **Typed streams.** Any parameter named ``rng`` (or ``*_rng``) must
       carry an annotation naming ``Random``.  An untyped or ``Any``-typed
       stream lets a caller pass the ``random`` *module* -- whose
       module-level functions share global state -- and mypy waves it
       through; every downstream draw then silently couples unrelated
       components.

    2. **Narrow imports.** ``from random import choice`` (or any other
       module-level function) re-introduces the global generator under a
       local name where DET002's call-site scan is easy to miss in review;
       the import itself is flagged.  Conversely, a module that imports
       ``random`` wholesale but only ever touches ``random.Random`` should
       say so: ``from random import Random`` keeps the global-state
       surface out of the namespace entirely.
    """

    ID = "RNG001"
    SUMMARY = "RNG parameter/import breaks the seeded-stream discipline"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        yield from self._check_params(ctx)
        yield from self._check_imports(ctx)

    def _check_params(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for arg in _rng_params(node.args):
                if arg.annotation is None:
                    yield Finding(
                        arg.lineno,
                        arg.col_offset,
                        f"RNG parameter `{arg.arg}` of `{node.name}` is "
                        "untyped; annotate it as `random.Random`",
                    )
                elif not _annotation_names_random(arg.annotation):
                    yield Finding(
                        arg.lineno,
                        arg.col_offset,
                        f"RNG parameter `{arg.arg}` of `{node.name}` is "
                        f"typed `{ast.unparse(arg.annotation)}`; seeded "
                        "streams must be typed `random.Random`",
                    )

    def _check_imports(self, ctx: RuleContext) -> Iterator[Finding]:
        import_random_nodes: List[ast.Import] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module != "random" or node.level:
                    continue
                for alias in node.names:
                    if alias.name in GLOBAL_RNG_FUNCTIONS:
                        yield Finding(
                            node.lineno,
                            node.col_offset,
                            f"`from random import {alias.name}` binds a "
                            "global-RNG function; import `Random` and use "
                            "a seeded stream",
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" and alias.asname is None:
                        import_random_nodes.append(node)

        for node in import_random_nodes:
            if self._only_uses_random_class(ctx.tree):
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    "`import random` is used only for the `Random` type; "
                    "narrow it to `from random import Random`",
                )

    @staticmethod
    def _only_uses_random_class(tree: ast.Module) -> bool:
        """True if every use of the name ``random`` is ``random.Random``.

        Annotations inside string literals (``"random.Random"``) do not
        produce Name nodes, so postponed annotations count as class-only
        use too -- which is what we want.
        """
        class_uses = 0
        attribute_values = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                if node.value.id == "random":
                    attribute_values.add(id(node.value))
                    if node.attr != "Random":
                        return False
                    class_uses += 1
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Name)
                and node.id == "random"
                and id(node) not in attribute_values
            ):
                return False  # bare `random` reference (e.g. passed around)
        return class_uses > 0
