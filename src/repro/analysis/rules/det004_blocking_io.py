"""DET004: no blocking I/O inside the simulation core."""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator

from repro.analysis.rules.base import Finding, Rule, RuleContext

#: Exact canonical names that block on the OS.
BLOCKING_CALLS: FrozenSet[str] = frozenset(
    {
        "open",
        "io.open",
        "input",
        "time.sleep",
        "os.system",
        "os.popen",
        "urllib.request.urlopen",
    }
)

#: Any call under these modules blocks (or spawns something that does).
BLOCKING_PREFIXES: FrozenSet[str] = frozenset(
    {
        "socket",
        "subprocess",
        "http.client",
        "asyncio",
        "threading",
        "multiprocessing",
    }
)


class BlockingIoRule(Rule):
    """The simulator is a single-threaded discrete-event loop: simulated
    "network" and "disk" are latency models, and the kernel owns the only
    clock.  Real I/O inside ``repro.sim`` / ``repro.broker`` /
    ``repro.core`` / ``repro.net`` stalls the loop for wall-clock time the
    simulation cannot see, couples results to the host environment, and
    (for sockets/subprocesses/threads) introduces OS scheduling as a
    hidden source of nondeterminism.

    Banned inside ``no-io`` modules (or files tagged
    ``# repro: scope[no-io]``): ``open``/``io.open``, ``input``,
    ``time.sleep``, ``os.system``/``os.popen``, ``urllib.request``, and
    anything under ``socket``, ``subprocess``, ``http.client``,
    ``asyncio``, ``threading`` or ``multiprocessing``.

    File output belongs in ``repro.obs`` exporters and experiment
    harnesses, which run outside the simulated path.
    """

    ID = "DET004"
    SUMMARY = "blocking I/O inside the simulation core"
    SCOPE = "no-io"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        imports = ctx.imports
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.resolve_call(node.func)
            if name is None:
                continue
            top = name.split(".", 1)[0]
            two = ".".join(name.split(".")[:2])
            if (
                name in BLOCKING_CALLS
                or top in BLOCKING_PREFIXES
                or two in BLOCKING_PREFIXES
            ):
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    f"blocking call `{name}()` inside the simulation core; "
                    "real I/O belongs in repro.obs exporters or experiment "
                    "harnesses",
                )
