"""DET003: no unordered set iteration on hot paths."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List

from repro.analysis.rules.base import Finding, Rule, RuleContext

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_METHODS = {
    "union",
    "difference",
    "intersection",
    "symmetric_difference",
    "copy",
}


def _is_set_expr(node: ast.expr, set_vars: Dict[str, int]) -> bool:
    """Whether ``node`` syntactically evaluates to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return _is_set_expr(func.value, set_vars)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_set_expr(node.left, set_vars) or _is_set_expr(node.right, set_vars)
    if isinstance(node, ast.Name):
        return node.id in set_vars
    return False


def _describe(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return f"set variable `{node.id}`"
    return "a set expression"


def _is_set_annotation(annotation: ast.expr) -> bool:
    text = ast.unparse(annotation)
    return text.split("[", 1)[0].rsplit(".", 1)[-1] in (
        "Set",
        "set",
        "FrozenSet",
        "frozenset",
    )


class SetIterationRule(Rule):
    """Sets hash their elements; with string keys the iteration order
    depends on ``PYTHONHASHSEED``, so two processes walking the same set
    visit its members in different orders.  On a broker/transport/kernel
    hot path that ordering leaks straight into event timestamps, plan
    contents and trace bytes -- replay divergence with no error anywhere.

    The rule flags, inside ``hot-paths`` modules (or files tagged
    ``# repro: scope[hot-path]``):

    * ``for``-loop and comprehension iteration over a set literal, a
      ``set()``/``frozenset()`` call, a set operator expression
      (``a | b`` where either side is a set), or a local variable
      assigned from one of those;
    * ``list(...)`` / ``tuple(...)`` materialization of the same -- that
      just freezes the arbitrary order into a sequence.

    Wrap the iterable in ``sorted(...)`` (the codebase convention), or
    keep an explicitly ordered structure (dict keys preserve insertion
    order).  Tracking is scope-local and syntactic: set-typed attributes
    (``self.channels``) are out of reach -- sort at the use site.
    """

    ID = "DET003"
    SUMMARY = "iteration over an unordered set on a hot path"
    SCOPE = "hot-path"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        self._process_body(ctx.tree.body, {}, findings)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # parameters annotated as sets seed the tracked variables
                args = node.args
                initial: Dict[str, int] = {}
                for arg in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                ):
                    if arg.annotation is not None and _is_set_annotation(
                        arg.annotation
                    ):
                        initial[arg.arg] = arg.lineno
                self._process_body(node.body, initial, findings)
        yield from findings

    # ------------------------------------------------------------------
    # Ordered, scope-local statement processing
    # ------------------------------------------------------------------
    def _process_body(
        self,
        body: List[ast.stmt],
        set_vars: Dict[str, int],
        findings: List[Finding],
    ) -> None:
        for stmt in body:
            self._process_stmt(stmt, set_vars, findings)

    def _process_stmt(
        self,
        stmt: ast.stmt,
        set_vars: Dict[str, int],
        findings: List[Finding],
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # separate scope; functions are processed from check()
        for expr in self._header_exprs(stmt):
            self._check_expr(expr, set_vars, findings)
        # --- track set-typed locals, in statement order ---
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                self._note_binding(target.id, stmt.value, stmt.lineno, set_vars)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if _is_set_annotation(stmt.annotation) or (
                stmt.value is not None and _is_set_expr(stmt.value, set_vars)
            ):
                set_vars[stmt.target.id] = stmt.lineno
            else:
                set_vars.pop(stmt.target.id, None)
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            if isinstance(stmt.op, _SET_OPS) and (
                stmt.target.id in set_vars or _is_set_expr(stmt.value, set_vars)
            ):
                set_vars[stmt.target.id] = stmt.lineno
        # --- iteration headers ---
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            if _is_set_expr(stmt.iter, set_vars):
                findings.append(self._finding(stmt.iter))
        # --- recurse into compound statements, preserving order ---
        for child_body in self._child_bodies(stmt):
            self._process_body(child_body, set_vars, findings)

    def _note_binding(
        self,
        name: str,
        value: ast.expr,
        lineno: int,
        set_vars: Dict[str, int],
    ) -> None:
        if _is_set_expr(value, set_vars):
            set_vars[name] = lineno
        else:
            set_vars.pop(name, None)

    @staticmethod
    def _child_bodies(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
        for field in ("body", "orelse", "finalbody"):
            child = getattr(stmt, field, None)
            if isinstance(child, list) and child and isinstance(child[0], ast.stmt):
                yield child
        for handler in getattr(stmt, "handlers", []) or []:
            yield handler.body

    @staticmethod
    def _header_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
        """Expressions evaluated by ``stmt`` itself (not child statements)."""
        for field in ("value", "test", "iter", "exc", "msg"):
            expr = getattr(stmt, field, None)
            if isinstance(expr, ast.expr):
                yield expr
        for item in getattr(stmt, "items", []) or []:  # with-statements
            yield item.context_expr
        targets = getattr(stmt, "targets", None)
        if isinstance(stmt, ast.Assign) and targets:
            for target in targets:
                yield target

    def _check_expr(
        self,
        expr: ast.expr,
        set_vars: Dict[str, int],
        findings: List[Finding],
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
                self._note_binding(
                    node.target.id, node.value, node.lineno, set_vars
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for generator in node.generators:
                    if _is_set_expr(generator.iter, set_vars):
                        findings.append(self._finding(generator.iter))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in ("list", "tuple")
                    and len(node.args) == 1
                    and _is_set_expr(node.args[0], set_vars)
                ):
                    findings.append(
                        Finding(
                            node.lineno,
                            node.col_offset,
                            f"`{func.id}()` over {_describe(node.args[0])} "
                            "freezes an arbitrary hash order; use "
                            "`sorted(...)`",
                        )
                    )

    @staticmethod
    def _finding(iterable: ast.expr) -> Finding:
        return Finding(
            iterable.lineno,
            iterable.col_offset,
            f"iteration over {_describe(iterable)} has hash-dependent "
            "order on a hot path; wrap it in `sorted(...)`",
        )
