"""DET002: no module-level ``random.*`` calls."""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator

from repro.analysis.rules.base import Finding, Rule, RuleContext

#: Module-level functions of :mod:`random` that draw from (or mutate) the
#: interpreter-global Mersenne Twister.  ``random.Random`` -- the class --
#: is the sanctioned alternative and is deliberately absent.
GLOBAL_RNG_FUNCTIONS: FrozenSet[str] = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "getstate",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "setstate",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Other stdlib entry points backed by process-global or OS entropy.
OTHER_GLOBAL_SOURCES: FrozenSet[str] = frozenset(
    {
        "random.SystemRandom",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbelow",
        "secrets.choice",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


class GlobalRngRule(Rule):
    """All randomness must flow through seeded ``random.Random`` instances
    derived from :mod:`repro.sim.rng` stream derivation.  The module-level
    ``random.*`` functions share one hidden global generator: any call
    perturbs every other consumer's draws, so adding one innocent
    ``random.choice`` re-times an entire run and silently invalidates
    recorded baselines and shrunk reproducers.

    Also banned: ``random.SystemRandom``, ``os.urandom``, ``secrets.*``
    and ``uuid.uuid1/uuid4`` -- OS entropy can never replay.

    The fix is always the same: accept a ``random.Random`` (threaded from
    an ``RngRegistry`` stream) and call its bound methods.
    """

    ID = "DET002"
    SUMMARY = "module-level RNG call (unseeded global generator)"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        imports = ctx.imports
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.resolve_call(node.func)
            if name is None:
                continue
            if name.startswith("random.") and name[len("random."):] in GLOBAL_RNG_FUNCTIONS:
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    f"global-RNG call `{name}()`; thread a seeded "
                    "`random.Random` stream (repro.sim.rng) instead",
                )
            elif name in OTHER_GLOBAL_SOURCES:
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    f"non-reproducible entropy source `{name}()`; derive "
                    "randomness from a seeded stream (repro.sim.rng)",
                )
