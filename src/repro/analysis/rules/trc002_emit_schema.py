"""TRC002: event constructor arguments must match the registered schema."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import Finding, Rule, RuleContext

_SCHEMA_MODULE = "repro.obs.trace"


class EmitSchemaRule(Rule):
    """TRC001 catches an *unregistered* event class; this rule checks the
    arguments of every construction of a *registered* one, field-for-
    field against the schema parsed from ``repro.obs.trace``:

    * a keyword naming no declared field (renamed-field drift -- the
      call "works" until that emit path actually executes, hours into a
      soak);
    * a required field (no default) that neither a positional nor a
      keyword argument supplies;
    * more positional arguments than the event declares fields.

    Any construction whose class resolves through imports to the schema
    module is validated -- not just direct ``emit(Event(...))`` call
    sites, because the ``ev = Event(...); tr.emit(ev)`` form is just as
    load-bearing.  Calls using ``*args`` / ``**kwargs`` are skipped
    (unresolvable statically), as are locally-defined classes that
    merely share an event's name.
    """

    ID = "TRC002"
    SUMMARY = "event constructed with arguments that mismatch its schema"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        schemas = ctx.facts.event_fields
        if not schemas:
            return
        imports = ctx.imports
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node.func)
            if resolved is None or not resolved.startswith(_SCHEMA_MODULE + "."):
                continue
            class_name = resolved[len(_SCHEMA_MODULE) + 1 :]
            if "." in class_name or class_name not in schemas:
                continue
            if any(isinstance(arg, ast.Starred) for arg in node.args):
                continue
            if any(keyword.arg is None for keyword in node.keywords):
                continue
            facts = schemas[class_name]
            names = facts.names
            if len(node.args) > len(names):
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    f"`{class_name}` takes {len(names)} field(s) but got "
                    f"{len(node.args)} positional argument(s)",
                )
                continue
            supplied = set(names[: len(node.args)])
            for keyword in node.keywords:
                assert keyword.arg is not None  # **kwargs filtered above
                if keyword.arg not in names:
                    yield Finding(
                        keyword.value.lineno,
                        keyword.value.col_offset,
                        f"`{class_name}` has no field `{keyword.arg}` "
                        f"(schema: {', '.join(names)})",
                    )
                else:
                    supplied.add(keyword.arg)
            for required in facts.required:
                if required not in supplied:
                    yield Finding(
                        node.lineno,
                        node.col_offset,
                        f"`{class_name}` is missing required field "
                        f"`{required}`",
                    )
