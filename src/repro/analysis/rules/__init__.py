"""Rule registry for the determinism sanitizer.

Rules register here in ID order; the engine instantiates each once per
run.  ``get_rule`` is the lookup used by ``explain`` and by config
validation (unknown IDs are a usage error, not a silent no-op).
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from repro.analysis.rules.arch001_layering import LayeringRule
from repro.analysis.rules.base import Finding, ImportMap, Rule, RuleContext
from repro.analysis.rules.cfg001_config_fields import ConfigFieldsRule
from repro.analysis.rules.cfg002_dead_config import DeadConfigFieldRule
from repro.analysis.rules.det001_wallclock import WallClockRule
from repro.analysis.rules.det002_global_rng import GlobalRngRule
from repro.analysis.rules.det003_set_iteration import SetIterationRule
from repro.analysis.rules.det004_blocking_io import BlockingIoRule
from repro.analysis.rules.hot001_hot_alloc import HotAllocationRule
from repro.analysis.rules.msg001_protocol import MessageProtocolRule
from repro.analysis.rules.mut001_message_mutation import MessageMutationRule
from repro.analysis.rules.rng001_rng_discipline import RngDisciplineRule
from repro.analysis.rules.slot001_wire_dataclasses import WireDataclassRule
from repro.analysis.rules.trc001_trace_schema import TraceSchemaRule
from repro.analysis.rules.trc002_emit_schema import EmitSchemaRule

ALL_RULES: Tuple[Type[Rule], ...] = (
    WallClockRule,
    GlobalRngRule,
    SetIterationRule,
    BlockingIoRule,
    WireDataclassRule,
    TraceSchemaRule,
    EmitSchemaRule,
    RngDisciplineRule,
    ConfigFieldsRule,
    DeadConfigFieldRule,
    MessageProtocolRule,
    MessageMutationRule,
    LayeringRule,
    HotAllocationRule,
)

_BY_ID: Dict[str, Type[Rule]] = {rule.ID: rule for rule in ALL_RULES}


def get_rule(rule_id: str) -> Type[Rule]:
    """Look up a rule class by ID; raises ``KeyError`` for unknown IDs."""
    return _BY_ID[rule_id]


__all__ = [
    "ALL_RULES",
    "Finding",
    "ImportMap",
    "Rule",
    "RuleContext",
    "get_rule",
]
