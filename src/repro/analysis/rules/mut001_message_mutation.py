"""MUT001: no mutation of a wire message after it escapes into send."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.rules.base import Finding, Rule, RuleContext

#: Call names through which a message escapes the constructing function.
_ESCAPE_CALLS = frozenset({"send", "send_many", "send_fanout", "enqueue"})

#: Constructor calls producing a shared mutable default on a wire type.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray"})


class MessageMutationRule(Rule):
    """Wire messages are shared by reference once handed to the
    transport: ``send_many`` / ``send_fanout`` deliver *one* object to
    many inboxes, and the reliability tier caches it for replay.
    Mutating a message after it escaped therefore rewrites history for
    every receiver -- a hazard the frozen-dataclass convention (SLOT001)
    prevents for the committed wire types, but nothing prevented for new
    ones until now.

    Escape-lite tracking, within one function: a local name bound to a
    tracked wire-message constructor *escapes* when it appears as an
    argument to ``send`` / ``send_many`` / ``send_fanout`` / ``enqueue``;
    any later ``name.attr = ...`` (or augmented) assignment is flagged.
    The analysis is linear in source-line order -- loops that mutate on
    the next iteration are out of scope (and moot for frozen types).

    Additionally, in ``wire-messages`` scoped files, a dataclass field
    whose default is a mutable literal (``[]`` / ``{}`` / ``set()``)
    is flagged: even where the dataclass machinery would reject it at
    import time, the lint catches it on unparsed/broken trees too.
    """

    ID = "MUT001"
    SUMMARY = "wire message mutated after escaping into send/enqueue"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        tracked = self._tracked_names(ctx)
        if tracked:
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_function(node, tracked, ctx)
        if "wire-messages" in ctx.scopes:
            yield from self._check_mutable_defaults(ctx)

    @staticmethod
    def _tracked_names(ctx: RuleContext) -> Set[str]:
        names: Set[str] = set(ctx.facts.wire_messages)
        names.update(ctx.facts.protocol)
        names.update(ctx.facts.unrouted)
        return names

    # -- escape-lite tracking per function ----------------------------
    def _check_function(
        self,
        fn: ast.AST,
        tracked: Set[str],
        ctx: RuleContext,
    ) -> Iterator[Finding]:
        constructed: Dict[str, int] = {}  # local name -> construction line
        escaped: Dict[str, int] = {}  # local name -> first escape line
        for node in self._linear_walk(fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                class_name = self._call_class(node.value, ctx)
                if class_name in tracked:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            constructed[target.id] = node.lineno
                            escaped.pop(target.id, None)
            elif isinstance(node, ast.Call):
                callee = self._terminal_name(node.func)
                if callee in _ESCAPE_CALLS:
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and arg.id in constructed:
                            escaped.setdefault(arg.id, node.lineno)
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                    ):
                        continue
                    name = target.value.id
                    escape_line = escaped.get(name)
                    if escape_line is not None and node.lineno > escape_line:
                        yield Finding(
                            node.lineno,
                            node.col_offset,
                            f"message `{name}` is mutated after escaping "
                            f"into the transport on line {escape_line}; "
                            "receivers share the object by reference",
                        )

    @staticmethod
    def _linear_walk(fn: ast.AST) -> List[ast.AST]:
        """All nodes of ``fn`` (nested scopes excluded), by source line."""
        nodes: List[ast.AST] = []
        stack = list(getattr(fn, "body", []))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            nodes.append(node)
            stack.extend(ast.iter_child_nodes(node))
        nodes.sort(key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)))
        return nodes

    @staticmethod
    def _call_class(node: ast.Call, ctx: RuleContext) -> str:
        resolved = ctx.imports.resolve_call(node.func)
        if resolved is not None:
            return resolved.rsplit(".", 1)[-1]
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return ""

    @staticmethod
    def _terminal_name(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return None

    # -- shared mutable defaults on wire dataclasses ------------------
    def _check_mutable_defaults(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not (
                    isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                    and item.value is not None
                ):
                    continue
                if self._is_mutable_literal(item.value):
                    yield Finding(
                        item.lineno,
                        item.col_offset,
                        f"wire type `{node.name}` field "
                        f"`{item.target.id}` has a shared mutable default",
                    )

    @staticmethod
    def _is_mutable_literal(value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_FACTORIES
            and not value.args
            and not value.keywords
        )
