"""MSG001: actor dispatch must cover the declared message protocol."""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.project import dispatch_map
from repro.analysis.rules.base import Finding, Rule, RuleContext


class MessageProtocolRule(Rule):
    """The message routing table in ``[tool.repro.analysis.protocol]``
    declares, for every wire command/message type, which actor classes
    dispatch it.  Each actor's ``receive`` is an ``isinstance`` chain
    ending in ``raise TypeError`` -- so a routed message without a branch
    is a *runtime crash on first send*, and a branch for a message no
    peer ever routes here is dead protocol surface that silently rots.

    Checked per actor class defined in the analyzed file:

    * **unhandled** -- a message routed to this actor has no
      ``isinstance(message, Type)`` branch in its ``receive``;
    * **dead handler** -- a branch dispatches a known wire type that the
      table does not route to this actor;
    * **unknown type** -- a branch dispatches a name that is neither in
      the routing table nor in ``unrouted-messages`` (usually a typo or
      a type someone forgot to declare).

    A wire dataclass defined in a protocol file (``wire-messages``) that
    is neither routed to any actor nor listed in ``unrouted-messages``
    is also flagged at its definition: every message type must either
    have a consumer or be explicitly declared as a carried payload.
    """

    ID = "MSG001"
    SUMMARY = "wire message without a dispatch branch (or dead handler)"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        protocol = ctx.facts.protocol
        if not protocol:
            return
        unrouted = ctx.facts.unrouted
        known = set(protocol) | set(unrouted)
        for class_node, receive in self._actors(ctx.tree):
            expected = frozenset(
                message
                for message, actors in protocol.items()
                if class_node.name in actors
            )
            if not expected:
                continue
            dispatched: List[Tuple[str, int]] = dispatch_map(receive)
            handled = {name for name, _ in dispatched}
            for message in sorted(expected - handled):
                yield Finding(
                    receive.lineno,
                    receive.col_offset,
                    f"actor `{class_node.name}` has no dispatch branch for "
                    f"routed message `{message}`",
                )
            for name, line in dispatched:
                if name in expected:
                    continue
                if name in known:
                    yield Finding(
                        line,
                        0,
                        f"dead handler: `{name}` is not routed to actor "
                        f"`{class_node.name}` in the protocol table",
                    )
                else:
                    yield Finding(
                        line,
                        0,
                        f"dispatch on `{name}`, which is neither routed nor "
                        "listed in unrouted-messages",
                    )
        yield from self._undeclared_wire_types(ctx, known)

    @staticmethod
    def _actors(
        tree: ast.Module,
    ) -> Iterator[Tuple[ast.ClassDef, ast.FunctionDef]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "receive":
                    yield node, item

    def _undeclared_wire_types(
        self, ctx: RuleContext, known: Set[str]
    ) -> Iterator[Finding]:
        """Wire dataclasses in protocol files must be routed or unrouted.

        Scoped by the facts map (dataclass name -> defining file) rather
        than the ``wire-messages`` pragma, so fixture files carrying the
        pragma for SLOT001/MUT001 never trip this check.
        """
        wire = ctx.facts.wire_messages
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef) or node.name in known:
                continue
            location = wire.get(node.name)
            if location is None or location[0] != ctx.path:
                continue
            yield Finding(
                node.lineno,
                node.col_offset,
                f"wire message `{node.name}` is neither routed to any actor "
                "nor listed in unrouted-messages (dead wire type?)",
            )
