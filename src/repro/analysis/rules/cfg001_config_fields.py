"""CFG001: config field references must exist on the dataclass."""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator

from repro.analysis.rules.base import Finding, Rule, RuleContext

_REPLACE_CALLS = frozenset({"dataclasses.replace", "replace"})


class ConfigFieldsRule(Rule):
    """Experiments and scenario files build ``DynamothConfig`` /
    ``ChaosScenarioConfig`` instances with long keyword lists and read
    their fields by name all over the harness code.  When a field is
    renamed in the dataclass, stale call sites keep "working":
    constructor typos raise only when that experiment is actually run,
    and a misspelled *read* on a config object raises ``AttributeError``
    deep inside a sweep, hours in.

    This rule checks, against the dataclass definitions parsed from the
    configured source files (``config-classes`` in pyproject):

    * constructor keywords -- ``DynamothConfig(publish_rate=...)`` must
      name declared fields;
    * ``dataclasses.replace(cfg, ...)`` keywords, when ``cfg`` is
      annotated with a tracked class in the same scope;
    * attribute reads/writes through names annotated with a tracked class
      (parameters and annotated assignments) -- methods and class
      constants count as valid members, private attributes are ignored.
    """

    ID = "CFG001"
    SUMMARY = "reference to a nonexistent config dataclass field"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        tracked = ctx.facts.config_classes
        if not tracked:
            return
        class_pattern = re.compile(
            r"\b(" + "|".join(re.escape(name) for name in sorted(tracked)) + r")\b"
        )
        yield from self._check_constructors(ctx, tracked)
        for scope_node in self._scopes(ctx.tree):
            bindings = self._bindings(scope_node, class_pattern)
            if not bindings:
                continue
            yield from self._check_attributes(scope_node, bindings, ctx)
            yield from self._check_replace(scope_node, bindings, ctx)

    # -- constructor keywords -----------------------------------------
    def _check_constructors(
        self, ctx: RuleContext, tracked: Dict[str, object]
    ) -> Iterator[Finding]:
        facts = ctx.facts.config_classes
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._call_class_name(node, ctx)
            if name not in facts:
                continue
            fields = facts[name].fields
            for keyword in node.keywords:
                if keyword.arg is not None and keyword.arg not in fields:
                    yield Finding(
                        keyword.value.lineno,
                        keyword.value.col_offset,
                        f"`{name}` has no field `{keyword.arg}`",
                    )

    @staticmethod
    def _call_class_name(node: ast.Call, ctx: RuleContext) -> str:
        resolved = ctx.imports.resolve_call(node.func)
        if resolved is not None:
            return resolved.rsplit(".", 1)[-1]
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return ""

    # -- attribute access through annotated names ---------------------
    @staticmethod
    def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _bindings(
        self, scope: ast.AST, class_pattern: "re.Pattern[str]"
    ) -> Dict[str, str]:
        """Names annotated with a tracked class inside ``scope``."""
        bindings: Dict[str, str] = {}
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if arg.annotation is None:
                    continue
                match = class_pattern.search(ast.unparse(arg.annotation))
                if match:
                    bindings[arg.arg] = match.group(1)
            body = scope.body
        else:
            body = getattr(scope, "body", [])
        for stmt in body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                match = class_pattern.search(ast.unparse(stmt.annotation))
                if match:
                    bindings[stmt.target.id] = match.group(1)
        return bindings

    def _check_attributes(
        self,
        scope: ast.AST,
        bindings: Dict[str, str],
        ctx: RuleContext,
    ) -> Iterator[Finding]:
        facts = ctx.facts.config_classes
        for node in self._walk_scope(scope):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.value, ast.Name):
                continue
            class_name = bindings.get(node.value.id)
            if class_name is None or class_name not in facts:
                continue
            if node.attr.startswith("_"):
                continue
            if node.attr not in facts[class_name].members:
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    f"`{class_name}` has no field or method `{node.attr}` "
                    f"(via `{node.value.id}.{node.attr}`)",
                )

    def _check_replace(
        self,
        scope: ast.AST,
        bindings: Dict[str, str],
        ctx: RuleContext,
    ) -> Iterator[Finding]:
        facts = ctx.facts.config_classes
        for node in self._walk_scope(scope):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            resolved = ctx.imports.resolve_call(node.func)
            if resolved not in _REPLACE_CALLS:
                continue
            first = node.args[0]
            if not isinstance(first, ast.Name):
                continue
            class_name = bindings.get(first.id)
            if class_name is None or class_name not in facts:
                continue
            fields = facts[class_name].fields
            for keyword in node.keywords:
                if keyword.arg is not None and keyword.arg not in fields:
                    yield Finding(
                        keyword.value.lineno,
                        keyword.value.col_offset,
                        f"replace() of `{class_name}` names nonexistent "
                        f"field `{keyword.arg}`",
                    )

    @staticmethod
    def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk ``scope`` without descending into nested scopes.

        Nested functions and classes are scopes of their own (they get
        their own ``_bindings`` pass), so their subtrees are skipped here
        to avoid misattributing shadowed names.
        """
        stack = list(getattr(scope, "body", []))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))
