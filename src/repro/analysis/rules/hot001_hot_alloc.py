"""HOT001: allocation lint for functions tagged ``# repro: scope[hot]``."""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set

from repro.analysis.rules.base import Finding, Rule, RuleContext

_HOT_TAG_RE = re.compile(r"#\s*repro:\s*scope\[\s*hot\s*\]")


class HotAllocationRule(Rule):
    """The PR 9 fan-out work showed where the simulator's time goes: the
    per-event hot path, where every closure, comprehension, or f-string
    is one allocation *per simulated message*.  Functions audited to be
    on that path carry a ``# repro: scope[hot]`` comment on (or directly
    above) their ``def`` line; inside them this rule flags:

    * ``lambda`` expressions and nested ``def`` (closure allocation);
    * list/set/dict comprehensions and generator expressions (a fresh
      object and a frame per call);
    * f-strings (string building), *except* inside ``raise`` or
      ``assert`` statements -- error paths are cold by definition.

    The tag is per-function, unlike the file-level ``hot-path`` scope
    that drives DET003: a file can be mostly cold with two audited hot
    methods.  An intentional allocation on a tagged path is suppressed
    the usual way with ``# repro: allow[HOT001]`` -- visible at the call
    site, where a reviewer can weigh it.
    """

    ID = "HOT001"
    SUMMARY = "allocation (closure/comprehension/f-string) in a hot function"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for fn in self._hot_functions(ctx):
            exempt = self._cold_fstrings(fn)
            for node in ast.walk(fn):
                if node is fn:
                    continue
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield Finding(
                        node.lineno,
                        node.col_offset,
                        f"nested function `{node.name}` allocates a closure "
                        "per call of a hot function",
                    )
                elif isinstance(node, ast.Lambda):
                    yield Finding(
                        node.lineno,
                        node.col_offset,
                        "lambda allocates a closure per call of a hot function",
                    )
                elif isinstance(
                    node,
                    (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
                ):
                    yield Finding(
                        node.lineno,
                        node.col_offset,
                        "comprehension allocates per call of a hot function",
                    )
                elif isinstance(node, ast.JoinedStr) and id(node) not in exempt:
                    yield Finding(
                        node.lineno,
                        node.col_offset,
                        "f-string builds a string per call of a hot function",
                    )

    def _hot_functions(self, ctx: RuleContext) -> Iterator[ast.AST]:
        """Functions whose def line (or the line above) carries the tag."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for line_no in (node.lineno, node.lineno - 1):
                if 1 <= line_no <= len(ctx.lines) and _HOT_TAG_RE.search(
                    ctx.lines[line_no - 1]
                ):
                    yield node
                    break

    @staticmethod
    def _cold_fstrings(fn: ast.AST) -> Set[int]:
        """``id()`` of f-strings inside raise/assert (cold error paths)."""
        exempt: Set[int] = set()
        for node in ast.walk(fn):
            if isinstance(node, (ast.Raise, ast.Assert)):
                for inner in ast.walk(node):
                    if isinstance(inner, ast.JoinedStr):
                        exempt.add(id(inner))
        return exempt
