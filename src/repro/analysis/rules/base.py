"""Rule plumbing: context objects and shared AST utilities.

Each rule is a class with an ``ID``, a one-line ``SUMMARY``, a docstring
that doubles as the ``explain`` text, and a ``check`` method yielding
:class:`Finding` tuples.  Rules never read files themselves -- the engine
hands them a :class:`RuleContext` with the parsed tree, the source lines,
the file's scope set and the cross-file :class:`~repro.analysis.project.
ProjectFacts`.

The :class:`ImportMap` utility resolves call names the way most rules need
them: ``time.time()`` with ``import time``, ``choice(...)`` with ``from
random import choice`` and ``dt.now()`` with ``from datetime import
datetime as dt`` all resolve to their canonical dotted names.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, NamedTuple, Optional, Tuple, Type

from repro.analysis.project import ProjectFacts


class Finding(NamedTuple):
    """One raw rule hit; the engine turns it into a Diagnostic."""

    line: int
    col: int  # 0-based (ast col_offset); engine renders 1-based
    message: str


@dataclass
class RuleContext:
    """Everything a rule may look at for one file."""

    #: project-root-relative posix path
    path: str
    tree: ast.Module
    #: raw source split into lines (1-based access via ``line - 1``)
    lines: List[str]
    #: scope tags active for this file (``hot-path``, ``no-io``, ...)
    scopes: FrozenSet[str]
    facts: ProjectFacts
    _imports: Optional["ImportMap"] = None

    @property
    def imports(self) -> "ImportMap":
        if self._imports is None:
            self._imports = ImportMap.from_tree(self.tree)
        return self._imports


class Rule:
    """Base class: subclasses define ID/SUMMARY/SCOPE and ``check``."""

    ID: str = ""
    SUMMARY: str = ""
    #: scope tag required for the rule to run on a file; ``None`` = always.
    SCOPE: Optional[str] = None
    #: scope tag that *exempts* a file (used by DET001's allow-list).
    EXEMPT_SCOPE: Optional[str] = None

    def applies(self, ctx: RuleContext) -> bool:
        if self.EXEMPT_SCOPE is not None and self.EXEMPT_SCOPE in ctx.scopes:
            return False
        if self.SCOPE is not None:
            return self.SCOPE in ctx.scopes
        return True

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def explain(cls) -> str:
        doc = cls.__doc__ or cls.SUMMARY
        return f"{cls.ID}: {cls.SUMMARY}\n\n{doc.strip()}"


class ImportMap:
    """Where names in a module come from.

    ``modules`` maps a local name to the module it denotes (``import time``
    -> ``{"time": "time"}``; ``import os.path`` -> ``{"os": "os"}``;
    ``import numpy as np`` -> ``{"np": "numpy"}``).  ``names`` maps a local
    name to ``(module, original)`` for ``from m import n [as k]``.
    """

    def __init__(
        self,
        modules: Dict[str, str],
        names: Dict[str, Tuple[str, str]],
    ) -> None:
        self.modules = modules
        self.names = names

    @classmethod
    def from_tree(cls, tree: ast.Module) -> "ImportMap":
        modules: Dict[str, str] = {}
        names: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        modules[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".", 1)[0]
                        modules[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports never reach stdlib modules
                for alias in node.names:
                    local = alias.asname if alias.asname is not None else alias.name
                    names[local] = (node.module, alias.name)
        return cls(modules, names)

    def resolve_call(self, func: ast.expr) -> Optional[str]:
        """Canonical dotted name of a called expression, if resolvable.

        * ``Name`` nodes resolve through ``from``-imports
          (``choice`` -> ``random.choice``) or stay bare (``open``).
        * ``Attribute`` chains resolve their base name through module
          aliases (``np.random.seed`` -> ``numpy.random.seed``).
        * Anything hanging off a non-name expression (``self._rng.random``)
          is *unresolvable* and returns ``None`` -- which is exactly right:
          instance-level RNG streams are the sanctioned pattern.
        """
        if isinstance(func, ast.Name):
            imported = self.names.get(func.id)
            if imported is not None:
                module, original = imported
                return f"{module}.{original}"
            if func.id in self.modules:
                return None  # a bare module reference is not a call target
            return func.id
        if isinstance(func, ast.Attribute):
            parts = [func.attr]
            node: ast.expr = func.value
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if not isinstance(node, ast.Name):
                return None
            base = node.id
            if base in self.modules:
                parts.append(self.modules[base])
            elif base in self.names:
                module, original = self.names[base]
                parts.append(f"{module}.{original}")
            else:
                return None
            return ".".join(reversed(parts))
        return None


def iter_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def iter_scopes(tree: ast.Module) -> Iterator[Tuple[ast.AST, List[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and every function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


#: Convenience for rules/__init__ registration.
RuleType = Type[Rule]
