"""SLOT001: wire-format dataclasses must be frozen and slotted."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.rules.base import Finding, Rule, RuleContext


def _dataclass_decorator(node: ast.ClassDef) -> Optional[Tuple[ast.expr, Optional[ast.Call]]]:
    """Return ``(decorator, call)`` if the class is a dataclass.

    ``call`` is ``None`` for the bare ``@dataclass`` form.
    """
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            pass
        elif isinstance(target, ast.Attribute) and target.attr == "dataclass":
            pass
        else:
            continue
        call = decorator if isinstance(decorator, ast.Call) else None
        return decorator, call
    return None


def _keyword_is_true(call: Optional[ast.Call], name: str) -> bool:
    if call is None:
        return False
    for keyword in call.keywords:
        if keyword.arg == name:
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


class WireDataclassRule(Rule):
    """Every message/command/event dataclass in the wire modules
    (``repro.core.messages``, ``repro.broker.commands``) must declare
    ``@dataclass(frozen=True, slots=True)``.

    ``frozen=True`` because wire objects are shared by reference across
    actors: transport batching and the event pool both assume a payload
    cannot be mutated after send -- a writable message lets one subscriber
    corrupt what another receives, at a simulated time that depends on
    delivery order.  ``slots=True`` because fan-out allocates these in the
    millions: slots cut per-instance memory roughly in half and block the
    silent-typo failure mode where ``msg.chanel = ...`` creates a new
    attribute instead of raising.

    Both flags are checked syntactically on the decorator, so
    ``@dataclass`` and ``@dataclass(frozen=True)`` are each flagged with
    the missing flag(s) named.
    """

    ID = "SLOT001"
    SUMMARY = "wire dataclass missing frozen=True/slots=True"
    SCOPE = "wire-messages"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            found = _dataclass_decorator(node)
            if found is None:
                continue
            decorator, call = found
            missing = [
                flag
                for flag in ("frozen", "slots")
                if not _keyword_is_true(call, flag)
            ]
            if missing:
                yield Finding(
                    decorator.lineno,
                    decorator.col_offset,
                    f"wire dataclass `{node.name}` must declare "
                    + " and ".join(f"{flag}=True" for flag in missing)
                    + "; mutable or dict-backed messages break shared-"
                    "reference fan-out",
                )
