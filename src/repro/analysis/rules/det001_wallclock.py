"""DET001: no wall-clock reads in simulation code."""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator

from repro.analysis.rules.base import Finding, Rule, RuleContext

#: Canonical dotted names that read the host clock.
WALL_CLOCK_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    """Simulated components must take time from the kernel clock
    (``sim.now``), never from the host.  A wall-clock read anywhere on a
    simulated code path makes results depend on machine speed and breaks
    the byte-identical replays that the chaos, property-check and perf
    subsystems rely on.

    Banned: ``time.time/monotonic/perf_counter/process_time`` (and their
    ``_ns`` variants), ``time.localtime/gmtime/strftime``,
    ``datetime.datetime.now/utcnow/today`` and ``datetime.date.today``.

    Exempt paths (``wallclock-allowed`` globs, or a
    ``# repro: scope[wallclock-ok]`` pragma): experiment harnesses and
    observability export code, which legitimately measure host wall time
    -- the perf bench exists to report it.
    """

    ID = "DET001"
    SUMMARY = "wall-clock read on a simulated code path"
    EXEMPT_SCOPE = "wallclock-ok"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        imports = ctx.imports
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.resolve_call(node.func)
            if name in WALL_CLOCK_CALLS:
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    f"wall-clock read `{name}()`; simulated time must come "
                    "from the kernel clock (`sim.now`)",
                )
