"""CFG002: every config dataclass field must be read somewhere."""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Set

from repro.analysis.project import _tracked_self_reads
from repro.analysis.rules.base import Finding, Rule, RuleContext


class DeadConfigFieldRule(Rule):
    """CFG001 catches references to fields that *don't* exist; this rule
    catches fields that exist but nothing *reads* -- the knob someone
    added for an experiment, wired into ``__post_init__`` validation,
    and then never actually consulted.  Dead config fields are worse
    than dead code: sweep configs keep setting them, reviewers keep
    reasoning about them, and the behaviour they promise silently never
    happens.

    The rule runs on files defining a tracked config class (the
    ``config-classes`` table) and flags any public field whose name is
    read nowhere.  Evidence of a read is any attribute load or
    ``getattr(obj, "name")`` literal, collected in pass 1 across all of
    ``src/`` plus this file -- *except* ``self.<field>`` reads inside
    the config class's own body, so ``__post_init__`` validation (which
    touches every field by design) cannot keep a dead knob alive.

    A same-named attribute read on an unrelated object does count as
    evidence: the rule trades false negatives for zero false positives,
    which is the right bias for a lint that gates CI.
    """

    ID = "CFG002"
    SUMMARY = "config dataclass field that is never read (dead knob)"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        tracked = frozenset(ctx.facts.config_classes)
        defined = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef) and node.name in tracked
        ]
        if not defined:
            return
        reads = set(ctx.facts.config_field_reads)
        reads |= self._local_reads(ctx, tracked)
        for node in defined:
            for item in node.body:
                if not (
                    isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                ):
                    continue
                name = item.target.id
                if name.startswith("_") or "ClassVar" in ast.unparse(
                    item.annotation
                ):
                    continue
                if name not in reads:
                    yield Finding(
                        item.lineno,
                        item.col_offset,
                        f"`{node.name}.{name}` is never read outside its own "
                        "class body (dead config knob)",
                    )

    @staticmethod
    def _local_reads(ctx: RuleContext, tracked: FrozenSet[str]) -> Set[str]:
        """Reads in the analyzed file itself, minus in-class self reads."""
        skip = _tracked_self_reads(ctx.tree, tracked)
        reads: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in skip
            ):
                reads.add(node.attr)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "getattr"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                reads.add(node.args[1].value)
        return reads
