"""ARCH001: module-level imports must follow the declared layer DAG."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.project import module_level_repro_imports
from repro.analysis.rules.base import Finding, Rule, RuleContext

_PKG_PREFIX = "src/repro/"


class LayeringRule(Rule):
    """``[tool.repro.analysis.layers]`` declares the package DAG --
    ``sim`` at the bottom, the control plane (``core``) above the data
    plane (``broker``), harnesses on top.  An import *against* that
    direction smuggles upper-layer state into a foundation module: the
    exact leak that turns the deterministic kernel into something the
    balancer can reach into, and that makes packages impossible to test
    (or reason about) in isolation.

    Only **module-level** imports are checked.  Function-level lazy
    imports and ``if TYPE_CHECKING:`` blocks are the two sanctioned
    cycle-breakers -- they create no import-time edge, so annotations
    and late-bound plumbing stay legal.

    A file's package comes from its ``src/repro/<pkg>/`` path prefix;
    test fixtures opt in with a ``# repro: scope[layer-<pkg>]`` pragma.
    Packages absent from the table are unconstrained (additions to the
    tree must be declared before the rule protects them).
    """

    ID = "ARCH001"
    SUMMARY = "module-level import against the declared layer DAG"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        layers = ctx.facts.layers
        if not layers:
            return
        pkg = self._package_of(ctx)
        if pkg is None or pkg not in layers:
            return
        allowed = set(layers[pkg])
        for target, line in module_level_repro_imports(ctx.tree):
            if target == pkg or target in allowed:
                continue
            permitted = ", ".join(sorted(allowed)) if allowed else "(none)"
            yield Finding(
                line,
                0,
                f"layer `{pkg}` may not import `repro.{target}` at module "
                f"level (allowed: {permitted}); use a function-level or "
                "TYPE_CHECKING import if the dependency is annotation-only",
            )

    @staticmethod
    def _package_of(ctx: RuleContext) -> Optional[str]:
        for tag in ctx.scopes:
            if tag.startswith("layer-"):
                return tag[len("layer-") :]
        if ctx.path.startswith(_PKG_PREFIX):
            remainder = ctx.path[len(_PKG_PREFIX) :]
            if "/" in remainder:
                return remainder.split("/", 1)[0]
        return None
