"""Command-line interface: ``python -m repro.analysis ...``.

Subcommands
-----------
``check [paths...]``
    Analyze files/directories (default: ``src``).  Exit 0 when clean,
    1 when findings remain after suppressions and baseline, 2 on usage
    or internal errors.  ``--format=json`` emits a machine-readable
    report (the CI artifact); text output is ruff-shaped
    ``path:line:col: RULE message`` lines.

``explain [RULE]``
    Print the full rationale for one rule, or the catalogue when no rule
    is given.

``baseline [paths...]``
    Record the current findings as grandfathered.  The committed
    baseline of this repository is empty -- the tree lint-clean -- and
    the self-host test keeps it that way; the subcommand exists for
    adopting new rules on older trees.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import write_baseline
from repro.analysis.config import find_project_root, load_config
from repro.analysis.engine import AnalysisEngine, CheckReport
from repro.analysis.rules import ALL_RULES, get_rule

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism sanitizer for the repro codebase.",
    )
    sub = parser.add_subparsers(dest="command")

    check = sub.add_parser("check", help="analyze paths and report findings")
    check.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="output format (default: text)",
    )
    check.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the per-file result cache",
    )
    check.add_argument("--root", default=None, help="project root (default: auto)")

    explain = sub.add_parser("explain", help="explain a rule (or list all)")
    explain.add_argument("rule", nargs="?", default=None, help="rule ID, e.g. DET003")

    baseline = sub.add_parser(
        "baseline", help="record current findings as grandfathered"
    )
    baseline.add_argument("paths", nargs="*", default=["src"])
    baseline.add_argument("--root", default=None)
    return parser


def _make_engine(root_arg: Optional[str]) -> AnalysisEngine:
    root = Path(root_arg).resolve() if root_arg else find_project_root()
    return AnalysisEngine(root, load_config(root))


def _emit_text(report: CheckReport, stream) -> None:
    for diagnostic in report.diagnostics:
        print(diagnostic.format(), file=stream)
    summary = (
        f"{len(report.diagnostics)} finding(s) in "
        f"{report.files_analyzed} file(s)"
    )
    if report.baselined:
        summary += f"; {report.baselined} baselined"
    if report.cache_hits or report.cache_misses:
        summary += f" [cache {report.cache_hits} hit / {report.cache_misses} miss]"
    print(summary, file=stream)


def _emit_json(report: CheckReport, stream) -> None:
    payload = {
        "diagnostics": [d.to_dict() for d in report.diagnostics],
        "summary": {
            "files_analyzed": report.files_analyzed,
            "findings": len(report.diagnostics),
            "baselined": report.baselined,
            "cache": {
                "hits": report.cache_hits,
                "misses": report.cache_misses,
            },
        },
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def _cmd_check(args: argparse.Namespace) -> int:
    engine = _make_engine(args.root)
    report = engine.check(
        [Path(p) for p in args.paths], use_cache=not args.no_cache
    )
    if args.fmt == "json":
        _emit_json(report, sys.stdout)
    else:
        _emit_text(report, sys.stdout)
    return EXIT_FINDINGS if report.diagnostics else EXIT_CLEAN


def _cmd_explain(args: argparse.Namespace) -> int:
    if args.rule is None:
        for rule_cls in ALL_RULES:
            print(f"{rule_cls.ID:8s} {rule_cls.SUMMARY}")
        return EXIT_CLEAN
    try:
        rule_cls = get_rule(args.rule.upper())
    except KeyError:
        known = ", ".join(rule.ID for rule in ALL_RULES)
        print(f"unknown rule {args.rule!r}; known rules: {known}", file=sys.stderr)
        return EXIT_ERROR
    print(rule_cls.explain())
    return EXIT_CLEAN


def _cmd_baseline(args: argparse.Namespace) -> int:
    engine = _make_engine(args.root)
    report = engine.check([Path(p) for p in args.paths], use_cache=False)
    path = engine.root / engine.config.baseline
    entries = write_baseline(path, report.raw)
    print(
        f"baseline: {entries} fingerprint(s) covering "
        f"{len(report.raw)} finding(s) -> {path}"
    )
    return EXIT_CLEAN


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command is None:
        parser.print_help()
        return EXIT_ERROR
    handlers = {
        "check": _cmd_check,
        "explain": _cmd_explain,
        "baseline": _cmd_baseline,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return EXIT_ERROR
    except BrokenPipeError:  # e.g. `... | head` closing stdout early
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_ERROR



if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
