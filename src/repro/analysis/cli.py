"""Command-line interface: ``python -m repro.analysis ...``.

Subcommands
-----------
``check [paths...]``
    Analyze files/directories (default: ``src``).  Exit 0 when clean,
    1 when findings remain after suppressions and baseline, 2 on usage
    or internal errors.  ``--format=json`` emits a machine-readable
    report (the CI artifact); text output is ruff-shaped
    ``path:line:col: RULE message`` lines.

``explain [RULE]``
    Print the full rationale for one rule, or the catalogue when no rule
    is given.

``baseline [paths...]``
    Record the current findings as grandfathered.  The committed
    baseline of this repository is empty -- the tree lint-clean -- and
    the self-host test keeps it that way; the subcommand exists for
    adopting new rules on older trees.

``bisect LEFT.jsonl RIGHT.jsonl`` / ``bisect --seed N``
    Localize the first diverging event between two trace files by
    prefix-hash bisection (exit 0: identical, 1: divergence found).
    With ``--seed``, run the property-check scenario twice under
    different ``PYTHONHASHSEED`` values as a hash-order divergence
    probe and bisect the resulting traces.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.analysis.baseline import write_baseline
from repro.analysis.bisect import bisect_traces, format_divergence
from repro.analysis.config import find_project_root, load_config
from repro.analysis.engine import AnalysisEngine, CheckReport
from repro.analysis.rules import ALL_RULES, get_rule

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism sanitizer for the repro codebase.",
    )
    sub = parser.add_subparsers(dest="command")

    check = sub.add_parser("check", help="analyze paths and report findings")
    check.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="output format (default: text)",
    )
    check.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the per-file result cache",
    )
    check.add_argument("--root", default=None, help="project root (default: auto)")
    check.add_argument(
        "--changed-only",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="only lint files differing from the given git ref "
        "(default ref: HEAD); untracked files count as changed",
    )

    explain = sub.add_parser("explain", help="explain a rule (or list all)")
    explain.add_argument("rule", nargs="?", default=None, help="rule ID, e.g. DET003")

    baseline = sub.add_parser(
        "baseline", help="record current findings as grandfathered"
    )
    baseline.add_argument("paths", nargs="*", default=["src"])
    baseline.add_argument("--root", default=None)

    bisect = sub.add_parser(
        "bisect", help="localize the first diverging event between two traces"
    )
    bisect.add_argument(
        "traces",
        nargs="*",
        metavar="TRACE",
        help="two trace JSONL files (plain or .gz) to compare",
    )
    bisect.add_argument(
        "--seed",
        type=int,
        default=None,
        help="instead of two files: run `repro.check --seed N` twice under "
        "different PYTHONHASHSEED values and bisect the traces",
    )
    bisect.add_argument(
        "--chunk",
        type=int,
        default=4096,
        help="events per prefix-hash checkpoint (default: 4096)",
    )
    bisect.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="output format (default: text)",
    )
    return parser


def _make_engine(root_arg: Optional[str]) -> AnalysisEngine:
    root = Path(root_arg).resolve() if root_arg else find_project_root()
    return AnalysisEngine(root, load_config(root))


def _emit_text(report: CheckReport, stream) -> None:
    for diagnostic in report.diagnostics:
        print(diagnostic.format(), file=stream)
    summary = (
        f"{len(report.diagnostics)} finding(s) in "
        f"{report.files_analyzed} file(s)"
    )
    if report.baselined:
        summary += f"; {report.baselined} baselined"
    if report.cache_hits or report.cache_misses:
        summary += f" [cache {report.cache_hits} hit / {report.cache_misses} miss]"
    print(summary, file=stream)


def _emit_json(report: CheckReport, stream) -> None:
    payload = {
        "diagnostics": [d.to_dict() for d in report.diagnostics],
        "summary": {
            "files_analyzed": report.files_analyzed,
            "findings": len(report.diagnostics),
            "baselined": report.baselined,
            "cache": {
                "hits": report.cache_hits,
                "misses": report.cache_misses,
            },
        },
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def _changed_files(root: Path, ref: str) -> Optional[Set[str]]:
    """Repo-relative paths differing from ``ref`` (plus untracked files).

    Returns ``None`` when git is unavailable or errors -- the caller
    then analyzes everything rather than silently skipping files.
    """
    changed: Set[str] = set()
    for argv in (
        ["git", "-C", str(root), "diff", "--name-only", ref],
        ["git", "-C", str(root), "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                argv, capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        changed.update(
            line.strip() for line in proc.stdout.splitlines() if line.strip()
        )
    return changed


def _cmd_check(args: argparse.Namespace) -> int:
    engine = _make_engine(args.root)
    paths: List[Path] = [Path(p) for p in args.paths]
    if args.changed_only is not None:
        changed = _changed_files(engine.root, args.changed_only)
        if changed is None:
            print(
                "warning: --changed-only requires a working git checkout; "
                "analyzing all paths",
                file=sys.stderr,
            )
        else:
            discovered = engine.discover(paths)
            paths = [
                path
                for path in discovered
                if engine._rel(path) in changed
            ]
            if not paths:
                print("0 finding(s) in 0 file(s) [--changed-only]")
                return EXIT_CLEAN
    report = engine.check(paths, use_cache=not args.no_cache)
    if args.fmt == "json":
        _emit_json(report, sys.stdout)
    else:
        _emit_text(report, sys.stdout)
    return EXIT_FINDINGS if report.diagnostics else EXIT_CLEAN


def _cmd_explain(args: argparse.Namespace) -> int:
    if args.rule is None:
        for rule_cls in ALL_RULES:
            print(f"{rule_cls.ID:8s} {rule_cls.SUMMARY}")
        return EXIT_CLEAN
    try:
        rule_cls = get_rule(args.rule.upper())
    except KeyError:
        known = ", ".join(rule.ID for rule in ALL_RULES)
        print(f"unknown rule {args.rule!r}; known rules: {known}", file=sys.stderr)
        return EXIT_ERROR
    print(rule_cls.explain())
    return EXIT_CLEAN


def _cmd_baseline(args: argparse.Namespace) -> int:
    engine = _make_engine(args.root)
    report = engine.check([Path(p) for p in args.paths], use_cache=False)
    path = engine.root / engine.config.baseline
    entries = write_baseline(path, report.raw)
    print(
        f"baseline: {entries} fingerprint(s) covering "
        f"{len(report.raw)} finding(s) -> {path}"
    )
    return EXIT_CLEAN


def _record_seed_trace(seed: int, out: Path, hash_seed: str) -> bool:
    """Run one property-check scenario, streaming its trace to ``out``.

    ``PYTHONHASHSEED`` is varied between the two runs: a divergence
    between the resulting traces is exactly a hash-order dependence --
    the bug class the determinism suite exists to catch.
    """
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.check",
            "--seed",
            str(seed),
            "--trace",
            str(out),
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    if not out.is_file():
        print(
            f"error: repro.check --seed {seed} produced no trace "
            f"(exit {proc.returncode}):\n{proc.stderr}",
            file=sys.stderr,
        )
        return False
    return True


def _cmd_bisect(args: argparse.Namespace) -> int:
    if args.seed is not None:
        if args.traces:
            print("error: give either two trace files or --seed", file=sys.stderr)
            return EXIT_ERROR
        with tempfile.TemporaryDirectory(prefix="repro-bisect-") as tmp:
            left = Path(tmp) / "left.jsonl"
            right = Path(tmp) / "right.jsonl"
            if not _record_seed_trace(args.seed, left, "0"):
                return EXIT_ERROR
            if not _record_seed_trace(args.seed, right, "1"):
                return EXIT_ERROR
            return _emit_bisect(left, right, args)
    if len(args.traces) != 2:
        print("error: bisect needs exactly two trace files", file=sys.stderr)
        return EXIT_ERROR
    left, right = Path(args.traces[0]), Path(args.traces[1])
    for path in (left, right):
        if not path.is_file():
            print(f"error: no such trace: {path}", file=sys.stderr)
            return EXIT_ERROR
    return _emit_bisect(left, right, args)


def _emit_bisect(left: Path, right: Path, args: argparse.Namespace) -> int:
    divergence = bisect_traces(left, right, chunk=max(1, args.chunk))
    if args.fmt == "json":
        payload = {
            "identical": divergence is None,
            "divergence": divergence.to_dict() if divergence else None,
        }
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    elif divergence is None:
        print("traces are identical (event bodies byte-for-byte)")
    else:
        print(format_divergence(divergence))
    return EXIT_CLEAN if divergence is None else EXIT_FINDINGS


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command is None:
        parser.print_help()
        return EXIT_ERROR
    handlers = {
        "check": _cmd_check,
        "explain": _cmd_explain,
        "baseline": _cmd_baseline,
        "bisect": _cmd_bisect,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return EXIT_ERROR
    except BrokenPipeError:  # e.g. `... | head` closing stdout early
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_ERROR



if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
