"""Committed baseline of grandfathered findings.

A baseline lets the analyzer be adopted (or a new rule be enabled) without
fixing every historical finding in the same change: ``python -m
repro.analysis baseline`` records the current findings' fingerprints, and
``check`` subtracts them.  Fingerprints hash ``path::rule::source-line``
-- no line numbers -- so edits elsewhere in a file do not un-grandfather a
finding; each fingerprint carries an occurrence count so duplicating a
baselined bad line still fails.

The file is plain text, one finding per line, sorted -- designed to be
committed and reviewed like a lockfile.  An empty (or absent) baseline
means the tree is fully clean; that is the committed state of this
repository, and the self-host test keeps it that way.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.diagnostics import Diagnostic, sort_key

_HEADER = (
    "# repro.analysis baseline -- grandfathered findings.\n"
    "# One line per finding: <fingerprint> <count> <path>:<rule> <source>\n"
    "# Regenerate with: python -m repro.analysis baseline <paths>\n"
)


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint -> allowed occurrence count.  Absent file = empty."""
    counts: Dict[str, int] = {}
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return counts
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) < 2:
            continue
        fingerprint = parts[0]
        try:
            count = int(parts[1])
        except ValueError:
            continue
        counts[fingerprint] = counts.get(fingerprint, 0) + max(count, 0)
    return counts


def write_baseline(path: Path, diagnostics: List[Diagnostic]) -> int:
    """Record ``diagnostics`` as the new baseline; returns entry count."""
    grouped: Counter = Counter()
    detail: Dict[str, Diagnostic] = {}
    for diagnostic in diagnostics:
        fingerprint = diagnostic.fingerprint()
        grouped[fingerprint] += 1
        detail.setdefault(fingerprint, diagnostic)
    lines = [_HEADER]
    for fingerprint in sorted(grouped):
        diagnostic = detail[fingerprint]
        lines.append(
            f"{fingerprint} {grouped[fingerprint]} "
            f"{diagnostic.path}:{diagnostic.rule} {diagnostic.source}\n"
        )
    path.write_text("".join(lines), encoding="utf-8")
    return len(grouped)


def apply_baseline(
    diagnostics: List[Diagnostic], baseline: Dict[str, int]
) -> Tuple[List[Diagnostic], int]:
    """Subtract baselined findings; returns (kept, suppressed_count).

    Occurrences beyond a fingerprint's recorded count are *kept* -- a
    baseline forgives history, not copies of it.
    """
    remaining = dict(baseline)
    kept: List[Diagnostic] = []
    suppressed = 0
    for diagnostic in sorted(diagnostics, key=sort_key):
        fingerprint = diagnostic.fingerprint()
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
            suppressed += 1
        else:
            kept.append(diagnostic)
    return kept, suppressed
