"""Trace-divergence bisector: localize the first differing event.

When CI reports "sweep report not byte-identical" the symptom is one
``trace_sha256`` mismatch over a file with hundreds of thousands of
events.  This module turns that into a one-command localization::

    python -m repro.analysis bisect left.jsonl right.jsonl

The algorithm is the classic prefix-hash bisection, streamed so neither
trace is ever held in memory:

1. **Checkpoint pass** -- stream both files in lockstep, folding each
   event line into a running SHA-256 and recording the running digest at
   every ``chunk`` boundary (default 4096 events).  Prefix digests are
   monotone: once the inputs diverge, every later checkpoint differs.
2. **Binary search** over the checkpoint arrays for the first differing
   chunk -- O(log n) comparisons over O(n / chunk) digests.
3. **Rescan** just that chunk, comparing raw lines, for the exact event
   index.

The divergent event is then decoded (type tag + virtual time ``t``) and
attributed to its emitting subsystem via the static table below, which
mirrors where each event class is emitted in the source tree.  Traces
may be plain or gzip JSONL (the ``repro.obs.export`` format); the
``trace_header`` line is skipped on both sides so schema-identical
bodies compare clean even across header tweaks.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Dict, Iterator, List, Optional, Tuple

#: event type tag -> emitting subsystem (kept in sync with the emit
#: sites in src/; the facts unit test cross-checks a sample).
SUBSYSTEMS: Dict[str, str] = {
    "publish": "client",
    "delivery": "client",
    "subscribe": "client",
    "unsubscribe": "client",
    "plan_miss": "client",
    "client_failover": "client",
    "client_reconnect": "client",
    "causal_timeout": "client",
    "fanout": "broker",
    "replay": "broker",
    "gap_unrecoverable": "broker",
    "load_report": "balancer",
    "load_snapshot": "balancer",
    "plan_generated": "balancer",
    "plan_pushed": "balancer",
    "migration_start": "balancer",
    "migration_settled": "balancer",
    "spawn_request": "balancer",
    "server_ready": "balancer",
    "decommission": "balancer",
    "server_suspect": "balancer",
    "server_failure_confirmed": "balancer",
    "server_resurrected": "balancer",
    "plan_repair_start": "balancer",
    "plan_repair_done": "balancer",
    "plan_applied": "dispatcher",
    "switch_notice": "dispatcher",
    "server_crash": "cluster",
    "server_restart": "cluster",
    "lla_stall": "cluster",
    "partition": "faults",
    "partition_healed": "faults",
    "link_fault": "faults",
    "sla_violation_start": "sla-monitor",
    "sla_violation_end": "sla-monitor",
    "sla_window": "sla-monitor",
    "profile": "obs",
    "metrics": "obs",
}


@dataclass(frozen=True)
class Divergence:
    """The first point where two traces disagree."""

    #: 0-based event index (header line excluded)
    index: int
    #: raw JSONL line on each side; ``None`` where a trace ended early
    left: Optional[str]
    right: Optional[str]
    #: decoded from whichever side still has an event
    event_type: Optional[str]
    t: Optional[float]
    subsystem: str
    #: total event counts (diagnostic context for truncation cases)
    left_total: int
    right_total: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "event_type": self.event_type,
            "t": self.t,
            "subsystem": self.subsystem,
            "left": self.left,
            "right": self.right,
            "left_total": self.left_total,
            "right_total": self.right_total,
        }


def _open_trace(path: Path) -> IO[bytes]:
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == b"\x1f\x8b":
        return gzip.open(path, "rb")  # type: ignore[return-value]
    return open(path, "rb")


def _event_lines(path: Path) -> Iterator[bytes]:
    """Event lines of one trace, header skipped, newline stripped."""
    with _open_trace(path) as handle:
        first = True
        for raw in handle:
            line = raw.rstrip(b"\n")
            if not line:
                continue
            if first:
                first = False
                if b'"trace_header"' in line:
                    continue
            yield line


def _checkpoints(path: Path, chunk: int) -> Tuple[List[str], int]:
    """Running prefix digests at each chunk boundary, plus event count."""
    digest = hashlib.sha256()
    marks: List[str] = []
    count = 0
    for line in _event_lines(path):
        digest.update(line)
        digest.update(b"\n")
        count += 1
        if count % chunk == 0:
            marks.append(digest.hexdigest())
    marks.append(digest.hexdigest())  # final partial chunk
    return marks, count


def _first_diff_chunk(left: List[str], right: List[str]) -> int:
    """Binary search for the first checkpoint index where digests differ.

    Prefix digests are monotone (equal up to the divergence, unequal
    after), which is what makes bisection valid.  Returns ``len`` when
    every shared checkpoint agrees.
    """
    shared = min(len(left), len(right))
    lo, hi = 0, shared
    while lo < hi:
        mid = (lo + hi) // 2
        if left[mid] == right[mid]:
            lo = mid + 1
        else:
            hi = mid
    return lo


def bisect_traces(
    left_path: Path, right_path: Path, chunk: int = 4096
) -> Optional[Divergence]:
    """First diverging event between two traces, or ``None`` if identical."""
    left_marks, left_total = _checkpoints(left_path, chunk)
    right_marks, right_total = _checkpoints(right_path, chunk)
    if left_marks == right_marks and left_total == right_total:
        return None
    first_chunk = _first_diff_chunk(left_marks, right_marks)
    start = first_chunk * chunk
    # Rescan only the suspect chunk (every earlier chunk hashed equal).
    left_lines = list(_slice_lines(left_path, start, chunk))
    right_lines = list(_slice_lines(right_path, start, chunk))
    index = start
    for offset in range(max(len(left_lines), len(right_lines))):
        left_line = left_lines[offset] if offset < len(left_lines) else None
        right_line = right_lines[offset] if offset < len(right_lines) else None
        if left_line != right_line:
            index = start + offset
            return _decode(
                index, left_line, right_line, left_total, right_total
            )
    # Digests differed only past the shared checkpoints: pure truncation.
    index = min(left_total, right_total)
    return _decode(index, None, None, left_total, right_total)


def _slice_lines(path: Path, start: int, count: int) -> Iterator[str]:
    for position, line in enumerate(_event_lines(path)):
        if position >= start + count:
            return
        if position >= start:
            yield line.decode("utf-8", errors="replace")


def _decode(
    index: int,
    left: Optional[str],
    right: Optional[str],
    left_total: int,
    right_total: int,
) -> Divergence:
    event_type: Optional[str] = None
    t: Optional[float] = None
    for line in (left, right):
        if line is None:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            continue
        if isinstance(payload, dict):
            raw_type = payload.get("type")
            event_type = raw_type if isinstance(raw_type, str) else None
            raw_t = payload.get("t")
            t = float(raw_t) if isinstance(raw_t, (int, float)) else None
            break
    subsystem = SUBSYSTEMS.get(event_type or "", "unknown")
    if left is None and right is None:
        subsystem = "truncation"
    return Divergence(
        index=index,
        left=left,
        right=right,
        event_type=event_type,
        t=t,
        subsystem=subsystem,
        left_total=left_total,
        right_total=right_total,
    )


def format_divergence(divergence: Divergence) -> str:
    """Human-readable localization report (the CLI text output)."""
    lines = [
        f"first divergence at event {divergence.index} "
        f"(left has {divergence.left_total}, right has "
        f"{divergence.right_total} events)",
        f"  event type: {divergence.event_type or '(unparseable/truncated)'}",
        f"  virtual time t: "
        f"{divergence.t if divergence.t is not None else '(unknown)'}",
        f"  subsystem: {divergence.subsystem}",
    ]
    if divergence.left is not None:
        lines.append(f"  left:  {divergence.left}")
    else:
        lines.append("  left:  (no event -- trace ended)")
    if divergence.right is not None:
        lines.append(f"  right: {divergence.right}")
    else:
        lines.append("  right: (no event -- trace ended)")
    return "\n".join(lines)
