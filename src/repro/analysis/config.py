"""Analyzer configuration, loaded from ``[tool.repro.analysis]``.

The analyzer's settings live in ``pyproject.toml`` next to the ruff/PERF
configuration so all lint tooling is declared in one place.  The code
defaults below are *identical* to the committed pyproject table: on
interpreters without a TOML parser (Python 3.10 lacks :mod:`tomllib` and
this repository takes no third-party dependencies) the analyzer silently
falls back to them, so results only diverge if the table is edited without
updating the defaults -- the self-host test pins both.

Scope semantics
---------------
Rules that only make sense for particular modules are *scoped*:

* ``wallclock-allowed`` -- globs where DET001 (wall-clock reads) is off:
  experiment harnesses and trace export genuinely need host time.
* ``hot-paths`` -- globs where DET003 (unordered set iteration) is on.
* ``no-io`` -- globs where DET004 (blocking I/O) is on.
* ``wire-messages`` -- files whose dataclasses SLOT001 holds to the
  ``frozen=True, slots=True`` convention.

A file can also opt *itself* into a scope with a pragma comment near the
top (first :data:`PRAGMA_SCAN_LINES` lines)::

    # repro: scope[hot-path]

which is how test fixtures and new modules outside the globs participate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: How many leading lines are searched for ``# repro: scope[...]`` pragmas.
PRAGMA_SCAN_LINES = 15

#: Every rule the engine knows, in catalogue order.
DEFAULT_RULES: Tuple[str, ...] = (
    "DET001",
    "DET002",
    "DET003",
    "DET004",
    "SLOT001",
    "TRC001",
    "TRC002",
    "RNG001",
    "CFG001",
    "CFG002",
    "MSG001",
    "MUT001",
    "ARCH001",
    "HOT001",
)

#: Layer DAG: package -> packages it may import at module level, lowest
#: layer first.  ``sim`` is the foundation; ``core`` (the Dynamoth
#: control plane: balancer, dispatcher, client, plans) sits *above*
#: ``broker`` because reconfiguration orchestrates brokers, never the
#: reverse; harnesses (``check``/``lab``/``experiments``/``sweep``) sit
#: on top.  Function-level and ``TYPE_CHECKING`` imports are exempt --
#: they are the sanctioned cycle-breakers (see ARCH001).
DEFAULT_LAYERS: Dict[str, Tuple[str, ...]] = {
    "sim": (),
    "obs": (),
    "analysis": (),
    "net": ("sim",),
    "broker": ("sim", "net", "obs"),
    "core": ("sim", "net", "obs", "broker"),
    "baselines": ("sim", "net", "obs", "broker", "core"),
    "faults": ("sim", "net", "obs", "broker", "core"),
    "workload": ("sim", "net", "obs", "broker", "core"),
    "check": ("sim", "net", "obs", "broker", "core", "faults", "workload"),
    "lab": ("sim", "net", "obs", "broker", "core", "faults", "workload"),
    "experiments": (
        "sim",
        "net",
        "obs",
        "broker",
        "core",
        "baselines",
        "faults",
        "workload",
    ),
    "sweep": (
        "sim",
        "net",
        "obs",
        "broker",
        "core",
        "baselines",
        "faults",
        "workload",
        "check",
        "lab",
        "experiments",
    ),
}

#: Message routing: wire type -> actor classes that must dispatch it.
DEFAULT_PROTOCOL: Dict[str, Tuple[str, ...]] = {
    "PublishCmd": ("PubSubServer",),
    "SubscribeCmd": ("PubSubServer",),
    "UnsubscribeCmd": ("PubSubServer",),
    "ReplayRequest": ("PubSubServer",),
    "PingCmd": ("PubSubServer",),
    "Delivery": ("DynamothClient",),
    "MappingNotice": ("DynamothClient",),
    "SubscribeAck": ("DynamothClient",),
    "PongReply": ("DynamothClient",),
    "ReplayGapNotice": ("DynamothClient",),
    "ConnectionClosed": ("DynamothClient",),
    "PlanPush": ("Dispatcher",),
    "NoMoreSubscribers": (
        "Dispatcher",
        "LoadBalancer",
        "ConsistentHashingBalancer",
    ),
    "LoadReport": ("LoadBalancer", "ConsistentHashingBalancer"),
    "ServerSpawned": ("LoadBalancer", "ConsistentHashingBalancer"),
}

#: Wire dataclasses deliberately outside actor routing: envelopes and
#: payloads carried *inside* routed messages, plus reliability-internal
#: records that never cross an actor boundary on their own.
DEFAULT_UNROUTED: Tuple[str, ...] = (
    "AppEnvelope",
    "SwitchNotice",
    "ChannelMetricsSnapshot",
    "ReliabilityConfig",
    "CacheEntry",
    "ReplaySlice",
    "ObserveOutcome",
)

#: Files whose actor classes are parsed for ``receive`` dispatch maps.
DEFAULT_MSG_ACTORS: Tuple[str, ...] = (
    "src/repro/broker/server.py",
    "src/repro/core/client.py",
    "src/repro/core/dispatcher.py",
    "src/repro/core/balancer.py",
    "src/repro/core/lla.py",
    "src/repro/baselines/consistent_hashing.py",
)


@dataclass
class AnalysisConfig:
    """Parsed ``[tool.repro.analysis]`` settings (or the identical defaults)."""

    enable: Tuple[str, ...] = DEFAULT_RULES
    disable: Tuple[str, ...] = ()
    #: committed file of grandfathered finding fingerprints
    baseline: str = "analysis-baseline.txt"
    #: per-file result cache keyed on content hash (never committed)
    cache: str = ".repro-analysis-cache.json"
    #: directories skipped during discovery (explicit file arguments are
    #: always analyzed, so fixture violations stay directly checkable)
    exclude: Tuple[str, ...] = ("tests/analysis/fixtures",)
    #: DET001 is *off* under these globs
    wallclock_allowed: Tuple[str, ...] = (
        "src/repro/experiments/*",
        "src/repro/obs/*",
    )
    #: DET003 is *on* under these globs
    hot_paths: Tuple[str, ...] = (
        "src/repro/broker/*",
        "src/repro/net/*",
        "src/repro/sim/*",
        "src/repro/core/*",
        "src/repro/baselines/*",
    )
    #: DET004 is *on* under these globs
    no_io: Tuple[str, ...] = (
        "src/repro/sim/*",
        "src/repro/broker/*",
        "src/repro/core/*",
        "src/repro/net/*",
    )
    #: SLOT001 applies to these files
    wire_messages: Tuple[str, ...] = (
        "src/repro/core/messages.py",
        "src/repro/broker/commands.py",
        "src/repro/core/reliability.py",
    )
    #: file parsed for the TRC001 event registry
    trace_schema: str = "src/repro/obs/trace.py"
    #: CFG001 classes: class name -> defining file
    config_classes: Dict[str, str] = field(
        default_factory=lambda: {
            "DynamothConfig": "src/repro/core/config.py",
            "ChaosScenarioConfig": "src/repro/experiments/chaos.py",
        }
    )
    #: ARCH001 layer DAG: package -> module-level import allow-list
    layers: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_LAYERS)
    )
    #: MSG001 routing table: message class -> dispatching actor classes
    protocol: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_PROTOCOL)
    )
    #: wire types exempt from routing (payloads, reliability internals)
    unrouted_messages: Tuple[str, ...] = DEFAULT_UNROUTED
    #: files parsed for actor ``receive`` dispatch maps
    msg_actors: Tuple[str, ...] = DEFAULT_MSG_ACTORS

    def active_rules(self) -> Tuple[str, ...]:
        disabled = set(self.disable)
        return tuple(r for r in self.enable if r not in disabled)

    def content_hash_parts(self) -> str:
        """Settings that change analysis *results* (cache key component)."""
        return repr(
            (
                tuple(sorted(self.active_rules())),
                self.wallclock_allowed,
                self.hot_paths,
                self.no_io,
                self.wire_messages,
                self.trace_schema,
                tuple(sorted(self.config_classes.items())),
                tuple(sorted((k, tuple(v)) for k, v in self.layers.items())),
                tuple(sorted((k, tuple(v)) for k, v in self.protocol.items())),
                tuple(sorted(self.unrouted_messages)),
                self.msg_actors,
            )
        )


def _load_toml(path: Path) -> Optional[Dict[str, Any]]:
    """Parse ``path`` with whichever TOML parser exists, else ``None``."""
    try:
        import tomllib as toml_parser  # Python >= 3.11
    except ImportError:  # pragma: no cover - exercised only on 3.10
        try:
            import tomli as toml_parser  # type: ignore[import-not-found,no-redef]
        except ImportError:
            return None
    try:
        with open(path, "rb") as handle:
            return toml_parser.load(handle)
    except OSError:
        return None


def _str_tuple(value: Any, fallback: Tuple[str, ...]) -> Tuple[str, ...]:
    if isinstance(value, list) and all(isinstance(v, str) for v in value):
        return tuple(value)
    return fallback


def load_config(root: Path) -> AnalysisConfig:
    """Read ``[tool.repro.analysis]`` from ``root/pyproject.toml``.

    Missing file, missing table, or missing TOML parser all yield the
    (identical) built-in defaults; individual keys override individually.
    """
    config = AnalysisConfig()
    data = _load_toml(root / "pyproject.toml")
    if data is None:
        return config
    table = data.get("tool", {}).get("repro", {}).get("analysis", {})
    if not isinstance(table, dict):
        return config
    config.enable = _str_tuple(table.get("enable"), config.enable)
    config.disable = _str_tuple(table.get("disable"), config.disable)
    if isinstance(table.get("baseline"), str):
        config.baseline = table["baseline"]
    if isinstance(table.get("cache"), str):
        config.cache = table["cache"]
    config.exclude = _str_tuple(table.get("exclude"), config.exclude)
    config.wallclock_allowed = _str_tuple(
        table.get("wallclock-allowed"), config.wallclock_allowed
    )
    config.hot_paths = _str_tuple(table.get("hot-paths"), config.hot_paths)
    config.no_io = _str_tuple(table.get("no-io"), config.no_io)
    config.wire_messages = _str_tuple(table.get("wire-messages"), config.wire_messages)
    if isinstance(table.get("trace-schema"), str):
        config.trace_schema = table["trace-schema"]
    raw_classes = table.get("config-classes")
    if isinstance(raw_classes, dict) and all(
        isinstance(k, str) and isinstance(v, str) for k, v in raw_classes.items()
    ):
        config.config_classes = dict(raw_classes)
    config.layers = _str_list_table(table.get("layers"), config.layers)
    config.protocol = _str_list_table(table.get("protocol"), config.protocol)
    config.unrouted_messages = _str_tuple(
        table.get("unrouted-messages"), config.unrouted_messages
    )
    config.msg_actors = _str_tuple(table.get("msg-actors"), config.msg_actors)
    return config


def _str_list_table(
    value: Any, fallback: Dict[str, Tuple[str, ...]]
) -> Dict[str, Tuple[str, ...]]:
    """A TOML table of string lists (the layers / protocol shape)."""
    if not isinstance(value, dict):
        return fallback
    out: Dict[str, Tuple[str, ...]] = {}
    for key, entry in value.items():
        if not isinstance(key, str):
            return fallback
        if not (isinstance(entry, list) and all(isinstance(v, str) for v in entry)):
            return fallback
        out[key] = tuple(entry)
    return out


def find_project_root(start: Optional[Path] = None) -> Path:
    """Walk up from ``start`` (default: cwd) to the nearest pyproject.toml."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current
