"""Analyzer configuration, loaded from ``[tool.repro.analysis]``.

The analyzer's settings live in ``pyproject.toml`` next to the ruff/PERF
configuration so all lint tooling is declared in one place.  The code
defaults below are *identical* to the committed pyproject table: on
interpreters without a TOML parser (Python 3.10 lacks :mod:`tomllib` and
this repository takes no third-party dependencies) the analyzer silently
falls back to them, so results only diverge if the table is edited without
updating the defaults -- the self-host test pins both.

Scope semantics
---------------
Rules that only make sense for particular modules are *scoped*:

* ``wallclock-allowed`` -- globs where DET001 (wall-clock reads) is off:
  experiment harnesses and trace export genuinely need host time.
* ``hot-paths`` -- globs where DET003 (unordered set iteration) is on.
* ``no-io`` -- globs where DET004 (blocking I/O) is on.
* ``wire-messages`` -- files whose dataclasses SLOT001 holds to the
  ``frozen=True, slots=True`` convention.

A file can also opt *itself* into a scope with a pragma comment near the
top (first :data:`PRAGMA_SCAN_LINES` lines)::

    # repro: scope[hot-path]

which is how test fixtures and new modules outside the globs participate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: How many leading lines are searched for ``# repro: scope[...]`` pragmas.
PRAGMA_SCAN_LINES = 15

#: Every rule the engine knows, in catalogue order.
DEFAULT_RULES: Tuple[str, ...] = (
    "DET001",
    "DET002",
    "DET003",
    "DET004",
    "SLOT001",
    "TRC001",
    "RNG001",
    "CFG001",
)


@dataclass
class AnalysisConfig:
    """Parsed ``[tool.repro.analysis]`` settings (or the identical defaults)."""

    enable: Tuple[str, ...] = DEFAULT_RULES
    disable: Tuple[str, ...] = ()
    #: committed file of grandfathered finding fingerprints
    baseline: str = "analysis-baseline.txt"
    #: per-file result cache keyed on content hash (never committed)
    cache: str = ".repro-analysis-cache.json"
    #: directories skipped during discovery (explicit file arguments are
    #: always analyzed, so fixture violations stay directly checkable)
    exclude: Tuple[str, ...] = ("tests/analysis/fixtures",)
    #: DET001 is *off* under these globs
    wallclock_allowed: Tuple[str, ...] = (
        "src/repro/experiments/*",
        "src/repro/obs/*",
    )
    #: DET003 is *on* under these globs
    hot_paths: Tuple[str, ...] = (
        "src/repro/broker/*",
        "src/repro/net/*",
        "src/repro/sim/*",
        "src/repro/core/*",
        "src/repro/baselines/*",
    )
    #: DET004 is *on* under these globs
    no_io: Tuple[str, ...] = (
        "src/repro/sim/*",
        "src/repro/broker/*",
        "src/repro/core/*",
        "src/repro/net/*",
    )
    #: SLOT001 applies to these files
    wire_messages: Tuple[str, ...] = (
        "src/repro/core/messages.py",
        "src/repro/broker/commands.py",
        "src/repro/core/reliability.py",
    )
    #: file parsed for the TRC001 event registry
    trace_schema: str = "src/repro/obs/trace.py"
    #: CFG001 classes: class name -> defining file
    config_classes: Dict[str, str] = field(
        default_factory=lambda: {
            "DynamothConfig": "src/repro/core/config.py",
            "ChaosScenarioConfig": "src/repro/experiments/chaos.py",
        }
    )

    def active_rules(self) -> Tuple[str, ...]:
        disabled = set(self.disable)
        return tuple(r for r in self.enable if r not in disabled)

    def content_hash_parts(self) -> str:
        """Settings that change analysis *results* (cache key component)."""
        return repr(
            (
                tuple(sorted(self.active_rules())),
                self.wallclock_allowed,
                self.hot_paths,
                self.no_io,
                self.wire_messages,
                self.trace_schema,
                tuple(sorted(self.config_classes.items())),
            )
        )


def _load_toml(path: Path) -> Optional[Dict[str, Any]]:
    """Parse ``path`` with whichever TOML parser exists, else ``None``."""
    try:
        import tomllib as toml_parser  # Python >= 3.11
    except ImportError:  # pragma: no cover - exercised only on 3.10
        try:
            import tomli as toml_parser  # type: ignore[import-not-found,no-redef]
        except ImportError:
            return None
    try:
        with open(path, "rb") as handle:
            return toml_parser.load(handle)
    except OSError:
        return None


def _str_tuple(value: Any, fallback: Tuple[str, ...]) -> Tuple[str, ...]:
    if isinstance(value, list) and all(isinstance(v, str) for v in value):
        return tuple(value)
    return fallback


def load_config(root: Path) -> AnalysisConfig:
    """Read ``[tool.repro.analysis]`` from ``root/pyproject.toml``.

    Missing file, missing table, or missing TOML parser all yield the
    (identical) built-in defaults; individual keys override individually.
    """
    config = AnalysisConfig()
    data = _load_toml(root / "pyproject.toml")
    if data is None:
        return config
    table = data.get("tool", {}).get("repro", {}).get("analysis", {})
    if not isinstance(table, dict):
        return config
    config.enable = _str_tuple(table.get("enable"), config.enable)
    config.disable = _str_tuple(table.get("disable"), config.disable)
    if isinstance(table.get("baseline"), str):
        config.baseline = table["baseline"]
    if isinstance(table.get("cache"), str):
        config.cache = table["cache"]
    config.exclude = _str_tuple(table.get("exclude"), config.exclude)
    config.wallclock_allowed = _str_tuple(
        table.get("wallclock-allowed"), config.wallclock_allowed
    )
    config.hot_paths = _str_tuple(table.get("hot-paths"), config.hot_paths)
    config.no_io = _str_tuple(table.get("no-io"), config.no_io)
    config.wire_messages = _str_tuple(table.get("wire-messages"), config.wire_messages)
    if isinstance(table.get("trace-schema"), str):
        config.trace_schema = table["trace-schema"]
    raw_classes = table.get("config-classes")
    if isinstance(raw_classes, dict) and all(
        isinstance(k, str) and isinstance(v, str) for k, v in raw_classes.items()
    ):
        config.config_classes = dict(raw_classes)
    return config


def find_project_root(start: Optional[Path] = None) -> Path:
    """Walk up from ``start`` (default: cwd) to the nearest pyproject.toml."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current
