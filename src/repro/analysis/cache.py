"""Per-file result cache keyed on content hashes.

The cache stores, per analyzed file, the sha256 of its source plus the
diagnostics that survived inline suppression.  Entries are only valid for
one combination of (engine version, active rule set, config, project
facts) -- a change to any of those rotates ``context_key`` and the whole
cache is discarded, which is the simple-and-correct invalidation story
for a tool whose full run takes single-digit seconds.

Baseline filtering deliberately happens *after* the cache: the baseline
file can change without touching sources, and cached entries must keep
yielding the same pre-baseline diagnostics.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.diagnostics import Diagnostic

#: Bump when diagnostics change shape or rules change semantics in ways
#: the config/facts keys cannot see.
ENGINE_VERSION = "2"


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def context_key(config_key: str, facts_key: str) -> str:
    blob = f"v{ENGINE_VERSION}\x00{config_key}\x00{facts_key}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Load/lookup/store; ``save`` writes only when something changed."""

    def __init__(self, path: Path, context: str) -> None:
        self.path = path
        self.context = context
        self._entries: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("context") != self.context:
            return  # stale context: start fresh
        files = raw.get("files")
        if isinstance(files, dict):
            self._entries = files

    def lookup(self, rel_path: str, source_hash: str) -> Optional[List[Diagnostic]]:
        entry = self._entries.get(rel_path)
        if not isinstance(entry, dict) or entry.get("hash") != source_hash:
            self.misses += 1
            return None
        stored = entry.get("diagnostics")
        if not isinstance(stored, list):
            self.misses += 1
            return None
        try:
            diagnostics = [Diagnostic.from_dict(item) for item in stored]
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return diagnostics

    def store(
        self, rel_path: str, source_hash: str, diagnostics: List[Diagnostic]
    ) -> None:
        self._entries[rel_path] = {
            "hash": source_hash,
            "diagnostics": [d.cache_dict() for d in diagnostics],
        }
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {"context": self.context, "files": self._entries}
        try:
            self.path.write_text(
                json.dumps(payload, indent=None, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError:
            pass  # caching is best-effort; never fail the run over it
        self._dirty = False
