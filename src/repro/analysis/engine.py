"""Analysis engine: discovery, scoping, suppression, caching, baseline.

Pipeline per file::

    source --parse--> tree --rules(applies by scope)--> findings
           --inline `# repro: allow[RULE]` filter--> diagnostics
           --cache store--> (on later runs: cache lookup by content hash)
    all diagnostics --baseline subtraction--> reported findings

Scopes come from the config globs plus ``# repro: scope[TAG]`` pragmas in
the first :data:`~repro.analysis.config.PRAGMA_SCAN_LINES` lines, so a
file outside the configured trees (a test fixture, a new subsystem) can
opt itself into ``hot-path`` / ``no-io`` / ``wire-messages`` /
``wallclock-ok`` semantics.

Discovery skips ``exclude`` directories, but paths given explicitly on
the command line are always analyzed -- the ruff convention, and what
makes ``python -m repro.analysis check tests/analysis/fixtures/x.py``
usable as a fixture smoke test while ``check src tests`` stays clean.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.cache import ResultCache, content_hash, context_key
from repro.analysis.config import PRAGMA_SCAN_LINES, AnalysisConfig
from repro.analysis.diagnostics import Diagnostic, sort_key
from repro.analysis.project import ProjectFacts, collect_facts
from repro.analysis.rules import ALL_RULES, Rule, RuleContext

_PRAGMA_RE = re.compile(r"#\s*repro:\s*scope\[([a-z0-9_,\s-]+)\]")
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9_,\s]+)\]")

#: scope tag -> config attribute holding its globs
_SCOPE_GLOBS: Tuple[Tuple[str, str], ...] = (
    ("wallclock-ok", "wallclock_allowed"),
    ("hot-path", "hot_paths"),
    ("no-io", "no_io"),
    ("wire-messages", "wire_messages"),
)


@dataclass
class CheckReport:
    """Everything one ``check`` run learned."""

    diagnostics: List[Diagnostic]
    #: findings hidden by the committed baseline
    baselined: int = 0
    files_analyzed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: pre-baseline diagnostics (what ``baseline`` records)
    raw: List[Diagnostic] = field(default_factory=list)


class AnalysisEngine:
    """One configured analyzer over one project root."""

    def __init__(
        self,
        root: Path,
        config: Optional[AnalysisConfig] = None,
        facts: Optional[ProjectFacts] = None,
    ) -> None:
        self.root = root.resolve()
        self.config = config if config is not None else AnalysisConfig()
        self._facts = facts
        self._rules: List[Rule] = [
            rule_cls()
            for rule_cls in ALL_RULES
            if rule_cls.ID in self.config.active_rules()
        ]

    @property
    def facts(self) -> ProjectFacts:
        if self._facts is None:
            self._facts = collect_facts(self.root, self.config)
        return self._facts

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def discover(self, paths: Sequence[Path]) -> List[Path]:
        """Expand files/directories into the sorted list to analyze."""
        found: Set[Path] = set()
        for raw in paths:
            path = (self.root / raw).resolve() if not raw.is_absolute() else raw
            if path.is_file():
                found.add(path)  # explicit files bypass `exclude`
            elif path.is_dir():
                for candidate in path.rglob("*.py"):
                    rel = self._rel(candidate)
                    if self._excluded(rel, candidate):
                        continue
                    found.add(candidate)
        return sorted(found)

    def _excluded(self, rel: str, path: Path) -> bool:
        if any(part.startswith(".") or part == "__pycache__" for part in path.parts):
            return True
        for prefix in self.config.exclude:
            prefix = prefix.rstrip("/")
            if rel == prefix or rel.startswith(prefix + "/") or fnmatch(rel, prefix):
                return True
        return False

    def _rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    # ------------------------------------------------------------------
    # Scopes
    # ------------------------------------------------------------------
    def scopes_for(self, rel_path: str, source: str) -> FrozenSet[str]:
        tags: Set[str] = set()
        for tag, attr in _SCOPE_GLOBS:
            globs: Tuple[str, ...] = getattr(self.config, attr)
            if any(fnmatch(rel_path, pattern) for pattern in globs):
                tags.add(tag)
        for line in source.splitlines()[:PRAGMA_SCAN_LINES]:
            match = _PRAGMA_RE.search(line)
            if match:
                for tag in match.group(1).split(","):
                    tag = tag.strip()
                    if tag:
                        tags.add(tag)
        return frozenset(tags)

    # ------------------------------------------------------------------
    # Per-file analysis
    # ------------------------------------------------------------------
    def analyze_source(self, rel_path: str, source: str) -> List[Diagnostic]:
        """All post-suppression diagnostics for one file's source."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [
                Diagnostic(
                    path=rel_path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    rule="PARSE",
                    message=f"file does not parse: {exc.msg}",
                    source="",
                )
            ]
        lines = source.splitlines()
        ctx = RuleContext(
            path=rel_path,
            tree=tree,
            lines=lines,
            scopes=self.scopes_for(rel_path, source),
            facts=self.facts,
        )
        allows = _inline_allows(source)
        diagnostics: List[Diagnostic] = []
        for rule in self._rules:
            if not rule.applies(ctx):
                continue
            for finding in rule.check(ctx):
                if rule.ID in allows.get(finding.line, frozenset()):
                    continue
                source_line = (
                    lines[finding.line - 1].strip()
                    if 1 <= finding.line <= len(lines)
                    else ""
                )
                diagnostics.append(
                    Diagnostic(
                        path=rel_path,
                        line=finding.line,
                        col=finding.col + 1,
                        rule=rule.ID,
                        message=finding.message,
                        source=source_line,
                    )
                )
        # de-duplicate (cross-scope rules can re-derive the same hit)
        unique = list(dict.fromkeys(diagnostics))
        unique.sort(key=sort_key)
        return unique

    # ------------------------------------------------------------------
    # Full runs
    # ------------------------------------------------------------------
    def check(
        self, paths: Sequence[Path], use_cache: bool = True
    ) -> CheckReport:
        files = self.discover(paths)
        cache: Optional[ResultCache] = None
        if use_cache:
            cache = ResultCache(
                self.root / self.config.cache,
                context_key(
                    self.config.content_hash_parts(), self.facts.cache_key()
                ),
            )
        raw: List[Diagnostic] = []
        for path in files:
            try:
                source = path.read_text(encoding="utf-8")
            except OSError:
                continue
            rel = self._rel(path)
            digest = content_hash(source)
            diagnostics: Optional[List[Diagnostic]] = None
            if cache is not None:
                diagnostics = cache.lookup(rel, digest)
            if diagnostics is None:
                diagnostics = self.analyze_source(rel, source)
                if cache is not None:
                    cache.store(rel, digest, diagnostics)
            raw.extend(diagnostics)
        if cache is not None:
            cache.save()
        baseline = load_baseline(self.root / self.config.baseline)
        kept, suppressed = apply_baseline(raw, baseline)
        kept.sort(key=sort_key)
        return CheckReport(
            diagnostics=kept,
            baselined=suppressed,
            files_analyzed=len(files),
            cache_hits=cache.hits if cache is not None else 0,
            cache_misses=cache.misses if cache is not None else 0,
            raw=sorted(raw, key=sort_key),
        )


def _inline_allows(source: str) -> Dict[int, FrozenSet[str]]:
    """line number -> rule IDs suppressed on that line.

    Comments are found with :mod:`tokenize` so ``# repro: allow[...]``
    inside a string literal is never treated as a suppression.
    """
    allows: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if not match:
                continue
            rules = frozenset(
                rule.strip()
                for rule in match.group(1).split(",")
                if rule.strip()
            )
            line = token.start[0]
            allows[line] = allows.get(line, frozenset()) | rules
    except (tokenize.TokenError, IndentationError):
        pass
    return allows
