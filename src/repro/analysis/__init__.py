"""Determinism sanitizer: static analysis that proves simulation safety.

Every guarantee this reproduction makes -- loss-free reconfiguration
oracles (``repro.check``), byte-identical chaos replays (``repro.faults``)
and the perf-gate baselines -- rests on the simulator being *perfectly
deterministic*.  Nothing at runtime stops a change from introducing a
``time.time()`` call, a module-level ``random.*`` draw, or iteration over
an unordered ``set`` on a fan-out path; such a change breaks replay
silently and only surfaces as a flaky check-soak failure days later.

This package is the build-time enforcement of that property: a standalone
AST lint engine with codebase-specific rules, runnable as::

    python -m repro.analysis check src tests

Rules (see ``python -m repro.analysis explain`` for the full catalogue):

========  ===========================================================
DET001    no wall-clock reads outside experiments / obs export paths
DET002    no module-level ``random.*`` calls (seeded streams only)
DET003    no iteration over unordered sets on hot paths
DET004    no blocking I/O inside simulation modules
SLOT001   wire-message dataclasses must be ``frozen=True, slots=True``
TRC001    every ``tracer.emit`` call names a registered trace event
RNG001    RNG parameters are typed ``random.Random``; no function imports
CFG001    config fields referenced by name must exist
========  ===========================================================

The engine caches per-file results keyed on content hash, honours
``# repro: allow[RULE]`` inline suppressions and a committed baseline of
grandfathered findings, and emits ruff-style ``path:line:col: RULE
message`` diagnostics (``--format=json`` for CI artifacts).  It
self-hosts: the repository must check clean at every merge.
"""

from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import AnalysisEngine
from repro.analysis.project import ProjectFacts, collect_facts
from repro.analysis.rules import ALL_RULES, get_rule

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "AnalysisEngine",
    "Diagnostic",
    "ProjectFacts",
    "collect_facts",
    "get_rule",
    "load_config",
]
