"""Command-line front end for the experiment harness.

Regenerate any of the paper's figures from a shell::

    python -m repro.experiments fig4a
    python -m repro.experiments fig4b --levels 100 300 500
    python -m repro.experiments fig5  --players 400 --seed 7
    python -m repro.experiments fig5  --paper-scale        # 1200 players
    python -m repro.experiments fig7
    python -m repro.experiments headline
    python -m repro.experiments chaos --smoke --max-recovery-s 30

Each subcommand prints the same table the corresponding benchmark prints,
so results can be regenerated without pytest.

Every figure subcommand also accepts ``--trace PATH``: the run is then
executed with the flight recorder attached and a JSONL trace written to
PATH, ready for ``python -m repro.obs summary PATH``.  Tracing does not
change the simulation -- the printed tables are byte-identical with and
without it.
"""

from __future__ import annotations

import argparse
import logging
import sys
from dataclasses import replace
from typing import List, Optional

from repro.core.cluster import BALANCER_CONSISTENT_HASHING, BALANCER_DYNAMOTH
from repro.core.config import DELIVERY_TIERS
from repro.experiments import bench, chaos, experiment1, experiment2, experiment3, report
from repro.obs.export import dump_tracer
from repro.obs.profile import SimProfiler, render_profile
from repro.obs.sink import StreamingJsonlSink
from repro.obs.trace import Tracer

logger = logging.getLogger(__name__)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a flight-recorder trace of the run to a JSONL file "
        "(inspect it with: python -m repro.obs summary PATH)",
    )
    parser.add_argument(
        "--stream-trace",
        action="store_true",
        help="write the trace incrementally through a bounded-memory "
        "streaming sink instead of buffering every event in RAM "
        "(requires --trace; output is byte-identical)",
    )
    parser.add_argument(
        "--trace-gzip",
        action="store_true",
        help="gzip-compress the streamed trace (requires --stream-trace)",
    )
    parser.add_argument(
        "--trace-rotate",
        type=int,
        metavar="N",
        default=None,
        help="rotate the streamed trace into PATH, PATH.1, ... every N "
        "events (requires --stream-trace)",
    )
    parser.add_argument(
        "--sim-profile",
        action="store_true",
        help="attribute executed events and virtual time per subsystem "
        "with the deterministic sim-profiler; prints a ranking and, with "
        "--trace, embeds the profile in the trace trailer",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="log progress to stderr while the simulation runs",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the Dynamoth paper's evaluation figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("fig4a", "fig4b"):
        p = sub.add_parser(name, help=f"Experiment 1 ({name})")
        p.add_argument(
            "--levels",
            type=int,
            nargs="+",
            default=list(experiment1.DEFAULT_LEVELS),
            help="subscriber/publisher counts to sweep",
        )
        p.add_argument("--measure-s", type=float, default=10.0)
        _add_common(p)

    p = sub.add_parser("fig5", help="Experiment 2 (Figs 5a/5b/5c + Fig 6)")
    p.add_argument("--players", type=int, default=None, help="max player count")
    p.add_argument("--paper-scale", action="store_true", help="run the full 1200-player setup")
    p.add_argument("--dynamoth-only", action="store_true", help="skip the consistent-hashing run")
    _add_common(p)

    p = sub.add_parser("headline", help="the '60%% more clients' comparison")
    p.add_argument("--paper-scale", action="store_true")
    _add_common(p)

    p = sub.add_parser("fig7", help="Experiment 3 (elasticity)")
    p.add_argument("--paper-scale", action="store_true")
    _add_common(p)

    p = sub.add_parser(
        "bench", help="performance benchmark scenarios (events/sec, wall time, RSS)"
    )
    p.add_argument(
        "--profile",
        choices=sorted(bench.PROFILES),
        default="full",
        help="scenario sizing: 'smoke' for CI, 'full' for the committed numbers",
    )
    p.add_argument(
        "--scenario",
        action="append",
        choices=sorted(bench.SCENARIOS),
        default=None,
        help="run only this scenario (repeatable; default: all)",
    )
    p.add_argument(
        "--scheduler",
        choices=("heap", "calendar"),
        default="heap",
        help="event-queue implementation driving the kernel",
    )
    p.add_argument("--repeat", type=int, default=1, help="runs per scenario; keep fastest")
    p.add_argument("--output", metavar="PATH", default=None, help="write results JSON here")
    p.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="committed bench JSON to compare against (e.g. BENCH_PR4.json)",
    )
    p.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="fail (exit 1) when fan-out events/s drops more than this "
        "fraction below the baseline (default 0.20)",
    )
    p.add_argument("--seed", type=int, default=0, help="root RNG seed")

    p = sub.add_parser(
        "chaos", help="broker-crash recovery scenario (repro.faults)"
    )
    p.add_argument("--smoke", action="store_true", help="small fast preset (CI)")
    p.add_argument("--players", type=int, default=None)
    p.add_argument("--crash-at", type=float, default=None, help="crash time, seconds")
    p.add_argument(
        "--restart-after",
        type=float,
        default=None,
        help="restart the victim this many seconds after the crash",
    )
    p.add_argument(
        "--max-recovery-s",
        type=float,
        default=None,
        help="exit 1 unless every affected subscriber delivers again "
        "within this bound after the crash",
    )
    p.add_argument(
        "--tier",
        choices=DELIVERY_TIERS,
        default=None,
        help="delivery guarantee for the run (default: at_most_once)",
    )
    _add_common(p)

    return parser


def _scalability_config(args) -> "experiment2.ScalabilityConfig":
    if getattr(args, "paper_scale", False):
        config = experiment2.ScalabilityConfig.paper_scale()
    else:
        config = experiment2.ScalabilityConfig(
            tiles_per_side=8,
            start_players=60,
            end_players=620,
            ramp_duration_s=450.0,
            hold_duration_s=50.0,
            nominal_egress_bps=620_000.0,
        )
    if getattr(args, "players", None):
        config = replace(config, end_players=args.players)
    return replace(config, seed=args.seed)


def _make_tracer(args) -> Optional[Tracer]:
    trace = getattr(args, "trace", None)
    stream = getattr(args, "stream_trace", False)
    compress = getattr(args, "trace_gzip", False)
    rotate = getattr(args, "trace_rotate", None)
    profile = getattr(args, "sim_profile", False)
    if stream and not trace:
        raise SystemExit("error: --stream-trace requires --trace PATH")
    if (compress or rotate is not None) and not stream:
        raise SystemExit(
            "error: --trace-gzip/--trace-rotate require --stream-trace"
        )
    if not trace and not profile:
        return None
    profiler = SimProfiler() if profile else None
    if trace and stream:
        try:
            sink = StreamingJsonlSink(
                trace, compress=compress, rotate_events=rotate
            )
        except OSError as exc:
            raise SystemExit(f"error: cannot write trace file: {exc}")
        return Tracer(sink=sink, profiler=profiler)
    if trace:
        # Fail before the (long) simulation, not at dump time afterwards.
        try:
            with open(trace, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            raise SystemExit(f"error: cannot write trace file: {exc}")
    return Tracer(profiler=profiler)


def _dump(tracer: Optional[Tracer], args) -> None:
    if tracer is None:
        return
    if getattr(args, "trace", None):
        sink = tracer.sink
        if sink is not None:
            count = sink.finalize(tracer)
        else:
            count = dump_tracer(tracer, args.trace)
        logger.info("wrote %d trace events to %s", count, args.trace)
    if tracer.profiler is not None:
        print()
        print(render_profile(tracer.profiler.snapshot()))


def _run_bench(args) -> int:
    import json

    profile = bench.PROFILES[args.profile]
    results = bench.run_bench(
        profile,
        seed=args.seed,
        scenarios=args.scenario,
        scheduler=args.scheduler,
        repeat=args.repeat,
    )
    print(bench.render_results(results))
    doc = bench.results_to_dict(profile, results)
    if args.output:
        bench.write_json(args.output, doc)
        logger.info("wrote bench results to %s", args.output)
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        except OSError as exc:
            raise SystemExit(f"error: cannot read baseline: {exc}")
        error = bench.compare_to_baseline(doc, baseline, args.max_regression)
        if error is not None:
            print(f"FAIL: {error}", file=sys.stderr)
            return 1
        print(f"baseline check OK (within {args.max_regression:.0%} of baseline)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.INFO if getattr(args, "verbose", False) else logging.WARNING,
        format="%(levelname)s %(name)s: %(message)s",
        stream=sys.stderr,
    )
    tracer = _make_tracer(args)

    if args.command == "bench":
        return _run_bench(args)
    if args.command == "fig4a":
        result = experiment1.run_fig4a(
            args.levels, seed=args.seed, measure_s=args.measure_s, tracer=tracer
        )
        _dump(tracer, args)
        print(report.render_figure4(result, "Figure 4a -- all-publishers replication"))
    elif args.command == "fig4b":
        result = experiment1.run_fig4b(
            args.levels, seed=args.seed, measure_s=args.measure_s, tracer=tracer
        )
        _dump(tracer, args)
        print(report.render_figure4(result, "Figure 4b -- all-subscribers replication"))
    elif args.command == "fig5":
        config = _scalability_config(args)
        logger.info("running Dynamoth (%d players max)...", config.end_players)
        # The trace follows the Dynamoth run; the consistent-hashing
        # comparison run is untraced.
        dynamoth = experiment2.run_scalability(
            config, balancer=BALANCER_DYNAMOTH, tracer=tracer
        )
        _dump(tracer, args)
        hashing = None
        if not args.dynamoth_only:
            logger.info("running consistent hashing...")
            hashing = experiment2.run_scalability(
                config, balancer=BALANCER_CONSISTENT_HASHING
            )
        print(report.render_figure5(dynamoth, hashing))
        print()
        print(report.render_figure6(dynamoth))
        if hashing is not None:
            print()
            print(report.render_headline(experiment2.HeadlineComparison(dynamoth, hashing)))
    elif args.command == "headline":
        config = _scalability_config(args)
        logger.info("running Dynamoth (%d players max)...", config.end_players)
        dynamoth = experiment2.run_scalability(
            config, balancer=BALANCER_DYNAMOTH, tracer=tracer
        )
        _dump(tracer, args)
        logger.info("running consistent hashing...")
        hashing = experiment2.run_scalability(config, balancer=BALANCER_CONSISTENT_HASHING)
        print(report.render_headline(experiment2.HeadlineComparison(dynamoth, hashing)))
    elif args.command == "fig7":
        if args.paper_scale:
            config = experiment3.ElasticityConfig.paper_scale()
        else:
            config = experiment3.ElasticityConfig(
                tiles_per_side=8,
                peak1=360,
                trough=90,
                peak2=260,
                transition_s=90.0,
                plateau_s=90.0,
                nominal_egress_bps=620_000.0,
                plan_entry_timeout_s=15.0,
            )
        config = replace(config, seed=args.seed)
        logger.info("running elasticity scenario...")
        result = experiment3.run_elasticity(config, tracer=tracer)
        _dump(tracer, args)
        print(report.render_figure7(result))
    elif args.command == "chaos":
        config = (
            chaos.ChaosScenarioConfig.smoke()
            if args.smoke
            else chaos.ChaosScenarioConfig()
        )
        overrides = {"seed": args.seed}
        if args.players is not None:
            overrides["players"] = args.players
        if args.crash_at is not None:
            overrides["crash_at_s"] = args.crash_at
        if args.restart_after is not None:
            overrides["restart_after_s"] = args.restart_after
        if args.tier is not None:
            overrides["delivery_tier"] = args.tier
        config = replace(config, **overrides)
        logger.info(
            "running chaos scenario (%d players, crash at t=%.1fs)...",
            config.players,
            config.crash_at_s,
        )
        result = chaos.run_chaos(config, tracer=tracer)
        # run_chaos always traces internally; dump/profile only when the
        # user asked for a tracer of their own.
        _dump(tracer, args)
        print(chaos.render_chaos(result))
        if args.max_recovery_s is not None and not result.within_bound(
            args.max_recovery_s
        ):
            print(
                f"FAIL: recovery bound {args.max_recovery_s:.1f}s exceeded "
                f"(recovery_s={result.recovery_s})",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
