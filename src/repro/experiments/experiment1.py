"""Experiment 1: channel-level scalability (Figure 4a / 4b).

Micro-benchmarks on one deliberately overloaded channel, comparing a
non-replicated configuration against 3-server channel replication -- the
exact setup of section V-C:

* **Figure 4a ("all publishers")**: up to 800 subscribers on channel ``c``,
  one publisher sending 10 publications/second.  Without replication the
  response time keeps growing with the subscriber count and blows up past
  ~500 subscribers (the server core cannot sustain the fan-out work); with
  the all-publishers scheme over 3 servers each server only serves a third
  of the subscribers and response times stay low.

* **Figure 4b ("all subscribers")**: up to 800 publishers sending 10
  publications/second each, one subscriber.  Without replication delivery
  fails past ~200 publishers -- the subscriber's Redis output buffer
  overflows and the connection is killed; with the all-subscribers scheme
  over 3 servers each connection carries a third of the flow and the
  system survives to roughly 3x the publishers.

As in the paper, replication is configured statically for the
micro-benchmarks (no load balancer is running).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.broker.config import BrokerConfig
from repro.core.cluster import BALANCER_NONE, DynamothCluster
from repro.core.config import DynamothConfig
from repro.core.plan import ChannelMapping, ReplicationMode
from repro.obs.trace import Tracer
from repro.workload.microbench import FanInWorkload, FanOutWorkload

CHANNEL = "hotspot"


def fanout_broker_config() -> BrokerConfig:
    """Broker model for Figure 4a: the CPU fan-out cost is the bottleneck.

    10 msg/s x 500 subscribers x 200 us/delivery = 100% of one core, which
    places the non-replicated knee at ~500 subscribers as in the paper.
    """
    return BrokerConfig(
        nominal_egress_bps=5_000_000.0,
        cpu_per_publish_s=50e-6,
        cpu_per_delivery_s=200e-6,
        per_connection_bps=None,
        output_buffer_limit_bytes=64 * 1_048_576,
    )


def fanin_broker_config() -> BrokerConfig:
    """Broker model for Figure 4b: the subscriber connection is the bottleneck.

    A single connection drains ~600 KB/s (~2000 messages/s at 298 B on the
    wire), so ~200 publishers saturate it without replication, and ~600
    with 3-server replication -- the paper's observed limits.
    """
    return BrokerConfig(
        nominal_egress_bps=5_000_000.0,
        cpu_per_publish_s=10e-6,
        cpu_per_delivery_s=10e-6,
        per_connection_bps=600_000.0,
        output_buffer_limit_bytes=1_048_576,
    )


@dataclass(frozen=True)
class ReplicationPoint:
    """One measured level of Figure 4a or 4b."""

    clients: int  # subscribers (4a) or publishers (4b)
    replicated: bool
    mean_latency_s: Optional[float]
    p95_latency_s: Optional[float]
    delivery_rate: float
    killed_connections: int


@dataclass
class Experiment1Result:
    figure: str
    points: List[ReplicationPoint] = field(default_factory=list)

    def series(self, replicated: bool) -> List[ReplicationPoint]:
        return [p for p in self.points if p.replicated == replicated]


def _build_cluster(
    broker_config: BrokerConfig, seed: int, tracer: Optional[Tracer] = None
) -> DynamothCluster:
    config = DynamothConfig(max_servers=3, min_servers=3)
    return DynamothCluster(
        seed=seed,
        config=config,
        broker_config=broker_config,
        initial_servers=3,
        balancer=BALANCER_NONE,
        tracer=tracer,
    )


def _static_mapping(cluster: DynamothCluster, replicated: bool, mode: ReplicationMode) -> None:
    servers = tuple(sorted(cluster.servers))
    if replicated:
        mapping = ChannelMapping(mode, servers)
    else:
        mapping = ChannelMapping(ReplicationMode.SINGLE, (cluster.plan.ring.lookup(CHANNEL),))
    cluster.set_static_mapping(CHANNEL, mapping)


def run_fig4a_point(
    n_subscribers: int,
    replicated: bool,
    *,
    seed: int = 0,
    warmup_s: float = 5.0,
    measure_s: float = 15.0,
    tracer: Optional[Tracer] = None,
) -> ReplicationPoint:
    """Measure one subscriber-count level of Figure 4a."""
    cluster = _build_cluster(fanout_broker_config(), seed, tracer)
    _static_mapping(cluster, replicated, ReplicationMode.ALL_PUBLISHERS)
    workload = FanOutWorkload(cluster, CHANNEL, n_subscribers)
    cluster.run_until(1.0)  # let subscriptions land
    workload.start(measure_from=1.0 + warmup_s)
    cluster.run_until(1.0 + warmup_s + measure_s)
    workload.stop()
    cluster.run_for(0.5)  # drain in-flight deliveries

    latencies = workload.collector.latencies()
    expected = workload.published_measured * n_subscribers
    mean = sum(latencies) / len(latencies) if latencies else None
    p95 = sorted(latencies)[int(0.95 * (len(latencies) - 1))] if latencies else None
    killed = sum(s.killed_connections for s in cluster.servers.values())
    rate = min(1.0, len(latencies) / expected) if expected else 1.0
    return ReplicationPoint(n_subscribers, replicated, mean, p95, rate, killed)


def run_fig4b_point(
    n_publishers: int,
    replicated: bool,
    *,
    seed: int = 0,
    warmup_s: float = 5.0,
    measure_s: float = 15.0,
    tracer: Optional[Tracer] = None,
) -> ReplicationPoint:
    """Measure one publisher-count level of Figure 4b."""
    cluster = _build_cluster(fanin_broker_config(), seed, tracer)
    _static_mapping(cluster, replicated, ReplicationMode.ALL_SUBSCRIBERS)
    workload = FanInWorkload(cluster, CHANNEL, n_publishers)
    cluster.run_until(1.0)
    workload.start(measure_from=1.0 + warmup_s)
    cluster.run_until(1.0 + warmup_s + measure_s)
    workload.stop()
    cluster.run_for(0.5)

    latencies = workload.collector.latencies()
    mean = sum(latencies) / len(latencies) if latencies else None
    p95 = sorted(latencies)[int(0.95 * (len(latencies) - 1))] if latencies else None
    killed = sum(s.killed_connections for s in cluster.servers.values())
    return ReplicationPoint(
        n_publishers, replicated, mean, p95, workload.delivery_rate(), killed
    )


DEFAULT_LEVELS = (100, 200, 300, 400, 500, 600, 700, 800)


def run_fig4a(
    levels: Sequence[int] = DEFAULT_LEVELS,
    *,
    seed: int = 0,
    measure_s: float = 15.0,
    tracer: Optional[Tracer] = None,
) -> Experiment1Result:
    """The full Figure 4a sweep: both configurations over all levels."""
    result = Experiment1Result("fig4a")
    for replicated in (False, True):
        for level in levels:
            result.points.append(
                run_fig4a_point(
                    level, replicated, seed=seed, measure_s=measure_s, tracer=tracer
                )
            )
    return result


def run_fig4b(
    levels: Sequence[int] = DEFAULT_LEVELS,
    *,
    seed: int = 0,
    measure_s: float = 15.0,
    tracer: Optional[Tracer] = None,
) -> Experiment1Result:
    """The full Figure 4b sweep: both configurations over all levels."""
    result = Experiment1Result("fig4b")
    for replicated in (False, True):
        for level in levels:
            result.points.append(
                run_fig4b_point(
                    level, replicated, seed=seed, measure_s=measure_s, tracer=tracer
                )
            )
    return result
