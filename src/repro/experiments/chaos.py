"""Chaos scenario: crash a broker under the RGame workload, measure recovery.

The canonical acceptance scenario of the ``repro.faults`` subsystem: a
steady RGame population publishes on tile channels across three pub/sub
servers; at ``crash_at_s`` one server hard-crashes (no FIN, no warning).
The run then exercises the full recovery chain:

1. the balancer's heartbeat monitor suspects and then confirms the
   failure (LLA reports stopped);
2. plan repair re-homes the dead server's channels onto the survivors and
   pushes the repaired plan;
3. ping-probing clients declare the server dead, fail over, and
   resubscribe with exponential backoff until every subscription is
   acked again.

The result quantifies each stage relative to the crash instant --
detection, repair, and the **time-to-recover**: when the *slowest*
affected subscriber received an application publication again.  Clients
that never recover make the scenario fail, which is exactly what the CI
``chaos-smoke`` job asserts.

Everything is seed-deterministic: the same seed produces the same fault
timeline, the same recovery milestones, and a byte-identical trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.broker.config import BrokerConfig
from repro.core.cluster import DynamothCluster
from repro.core.config import DynamothConfig
from repro.faults import ChaosSchedule, FaultInjector
from repro.obs.trace import (
    ClientFailoverEvent,
    ClientReconnectEvent,
    DeliveryEvent,
    PlanRepairDoneEvent,
    ServerCrashEvent,
    ServerFailureConfirmedEvent,
    TraceEvent,
    Tracer,
)
from repro.workload.rgame import RGameConfig, RGameWorkload


@dataclass
class ChaosScenarioConfig:
    """Parameters of one broker-crash run."""

    tiles_per_side: int = 4
    players: int = 60
    #: virtual time of the crash
    crash_at_s: float = 30.0
    duration_s: float = 90.0
    #: restart the victim this long after the crash (None = stays dead)
    restart_after_s: Optional[float] = None
    #: crash victim; None picks the second bootstrap server
    victim: Optional[str] = None
    updates_per_s: float = 2.0
    payload_size: int = 200
    nominal_egress_bps: float = 400_000.0
    initial_servers: int = 3
    max_servers: int = 4
    t_wait_s: float = 10.0
    #: chaos runs enable client-side ping probing -- without it a
    #: subscriber has no way to notice its server silently vanished
    client_ping_interval_s: float = 1.0
    #: windowed delivery-latency SLA threshold (None disables the monitor)
    sla_threshold_s: Optional[float] = 0.5
    sla_window_s: float = 10.0
    #: reliability layer (repro.core.reliability): at_most_once |
    #: at_least_once | exactly_once
    delivery_tier: str = "at_most_once"
    seed: int = 0

    @classmethod
    def smoke(cls) -> "ChaosScenarioConfig":
        """A small, fast preset for CI (the ``chaos-smoke`` job)."""
        return cls(
            tiles_per_side=3,
            players=24,
            crash_at_s=20.0,
            duration_s=60.0,
            nominal_egress_bps=250_000.0,
            # tight enough that the post-crash resubscribe surge trips a
            # violation episode, loose enough that steady state meets it
            sla_threshold_s=0.15,
        )

    def dynamoth_config(self) -> DynamothConfig:
        return DynamothConfig(
            max_servers=self.max_servers,
            spawn_delay_s=5.0,
            t_wait_s=self.t_wait_s,
            client_ping_interval_s=self.client_ping_interval_s,
            sla_threshold_s=self.sla_threshold_s,
            sla_window_s=self.sla_window_s,
            delivery_tier=self.delivery_tier,
        )

    def broker_config(self) -> BrokerConfig:
        return BrokerConfig(
            nominal_egress_bps=self.nominal_egress_bps,
            cpu_per_publish_s=10e-6,
            cpu_per_delivery_s=5e-6,
            per_connection_bps=None,
            output_buffer_limit_bytes=8 * 1_048_576,
        )

    def rgame_config(self) -> RGameConfig:
        return RGameConfig(
            tiles_per_side=self.tiles_per_side,
            updates_per_s=self.updates_per_s,
            payload_size=self.payload_size,
        )


class RecoveryWatch:
    """Tracer observer computing recovery milestones as events stream by.

    Registered via :meth:`Tracer.add_observer` before the run starts, so
    the milestones are available even when the tracer writes through a
    streaming sink and keeps no event buffer.  Events arrive in virtual
    time order, which lets every milestone be resolved online:

    * crash / detection / repair: first matching event for the victim;
    * recovery: each :class:`ClientFailoverEvent` opens a pending entry
      for that client, closed by its first strictly-later delivery; the
      recovery time is the slowest such close.
    """

    def __init__(self, victim: str):
        self.victim = victim
        self.crash_t: Optional[float] = None
        self.detect_t: Optional[float] = None
        self.repair_t: Optional[float] = None
        self.failover_count = 0
        self.reconnects = 0
        #: client -> failover time, unresolved until a later delivery
        self._awaiting: Dict[str, float] = {}
        self._recovered_t: Optional[float] = None

    def __call__(self, event: TraceEvent) -> None:
        et = type(event)
        if et is DeliveryEvent:
            awaiting = self._awaiting
            if awaiting:
                failed_at = awaiting.get(event.client)  # type: ignore[attr-defined]
                if failed_at is not None and event.t > failed_at:
                    del awaiting[event.client]  # type: ignore[attr-defined]
                    if self._recovered_t is None or event.t > self._recovered_t:
                        self._recovered_t = event.t
        elif et is ServerCrashEvent:
            if event.server == self.victim and self.crash_t is None:  # type: ignore[attr-defined]
                self.crash_t = event.t
        elif et is ClientReconnectEvent:
            self.reconnects += 1
        elif self.crash_t is not None:
            if et is ServerFailureConfirmedEvent:
                if event.server == self.victim and self.detect_t is None:  # type: ignore[attr-defined]
                    self.detect_t = event.t
            elif et is PlanRepairDoneEvent:
                if event.server == self.victim and self.repair_t is None:  # type: ignore[attr-defined]
                    self.repair_t = event.t
            elif et is ClientFailoverEvent and event.server == self.victim:  # type: ignore[attr-defined]
                self.failover_count += 1
                client = event.client  # type: ignore[attr-defined]
                if client not in self._awaiting:
                    self._awaiting[client] = event.t

    @property
    def detection_s(self) -> Optional[float]:
        if self.crash_t is None or self.detect_t is None:
            return None
        return self.detect_t - self.crash_t

    @property
    def repair_s(self) -> Optional[float]:
        if self.crash_t is None or self.repair_t is None:
            return None
        return self.repair_t - self.crash_t

    @property
    def recovery_s(self) -> Optional[float]:
        if (
            self.crash_t is None
            or not self.failover_count
            or self._awaiting
            or self._recovered_t is None
        ):
            return None
        return self._recovered_t - self.crash_t


@dataclass
class ChaosResult:
    """Recovery milestones of one run, all relative to the crash time."""

    config: ChaosScenarioConfig
    victim: str
    crash_t: float
    #: crash -> balancer failure confirmation (None = never detected)
    detection_s: Optional[float]
    #: crash -> repaired plan pushed (None = never repaired)
    repair_s: Optional[float]
    #: clients that declared the victim dead and failed over
    failover_count: int
    #: crash -> slowest affected client delivering again (None while any
    #: affected client never received another publication)
    recovery_s: Optional[float]
    #: acked resubscribes recorded during recovery
    reconnects: int
    tracer: Tracer
    #: live SLA monitor report (None when no threshold was configured)
    sla: Optional[Dict[str, Any]] = None

    @property
    def recovered(self) -> bool:
        """Every affected subscriber resumed delivery."""
        return self.failover_count == 0 or self.recovery_s is not None

    def within_bound(self, bound_s: float) -> bool:
        return self.recovered and (self.recovery_s or 0.0) <= bound_s


def run_chaos(
    config: Optional[ChaosScenarioConfig] = None,
    *,
    tracer: Optional[Tracer] = None,
) -> ChaosResult:
    """One crash-and-recover run.

    A tracer is always attached -- the recovery milestones are computed
    online by a :class:`RecoveryWatch` observer as events stream through
    the tracer, so the run works unchanged with a streaming sink and no
    event buffer.  The tracer is handed back through ``result.tracer``
    (the CLI dumps or finalizes it when ``--trace`` was given).
    """
    config = config if config is not None else ChaosScenarioConfig()
    tracer = tracer if tracer is not None else Tracer()
    cluster = DynamothCluster(
        seed=config.seed,
        config=config.dynamoth_config(),
        broker_config=config.broker_config(),
        initial_servers=config.initial_servers,
        tracer=tracer,
    )
    victim = config.victim
    if victim is None:
        candidates = sorted(cluster.servers)
        victim = candidates[min(1, len(candidates) - 1)]
    elif victim not in cluster.servers:
        raise ValueError(f"victim {victim!r} is not a bootstrap server")

    watch = RecoveryWatch(victim)
    tracer.add_observer(watch)

    injector = FaultInjector(
        cluster,
        ChaosSchedule.single_crash(
            victim, at=config.crash_at_s, restart_after_s=config.restart_after_s
        ),
    )
    injector.arm()

    workload = RGameWorkload(cluster, config.rgame_config())
    workload.add_players(config.players)
    cluster.run_until(config.duration_s)

    if watch.crash_t is None:  # pragma: no cover - the schedule always fires
        raise RuntimeError("crash never executed; check crash_at_s < duration_s")
    monitor = cluster.sla_monitor
    if monitor is not None:
        monitor.poll(cluster.sim.now)
    return ChaosResult(
        config=config,
        victim=victim,
        crash_t=watch.crash_t,
        detection_s=watch.detection_s,
        repair_s=watch.repair_s,
        failover_count=watch.failover_count,
        recovery_s=watch.recovery_s,
        reconnects=watch.reconnects,
        tracer=tracer,
        sla=monitor.report() if monitor is not None else None,
    )


def render_chaos(result: ChaosResult) -> str:
    """A compact report of the recovery chain."""
    config = result.config
    lines: List[str] = []
    out = lines.append
    out("Chaos scenario -- broker crash under RGame workload")
    out(
        f"  {config.players} players, {config.initial_servers} servers, "
        f"{config.tiles_per_side}x{config.tiles_per_side} tiles, "
        f"seed {config.seed}"
    )
    out(f"  victim {result.victim} crashed at t={result.crash_t:.2f}s")
    out("")
    detect = (
        f"+{result.detection_s:.2f}s"
        if result.detection_s is not None
        else "NEVER"
    )
    repair = f"+{result.repair_s:.2f}s" if result.repair_s is not None else "NEVER"
    out(f"  failure detected (heartbeat confirm)   {detect}")
    out(f"  plan repaired and pushed               {repair}")
    out(f"  client failovers                       {result.failover_count}")
    out(f"  acked resubscribes                     {result.reconnects}")
    if result.failover_count:
        recover = (
            f"+{result.recovery_s:.2f}s"
            if result.recovery_s is not None
            else "NEVER (subscriber lost!)"
        )
        out(f"  slowest subscriber delivering again    {recover}")
    sla = result.sla
    if sla is not None:
        quantile = sla["quantile"]
        out("")
        out(
            f"  SLA: windowed p{quantile:g} delivery latency vs "
            f"{sla['threshold_s'] * 1e3:.0f}ms "
            f"({sla['window_s']:.0f}s window)"
        )
        out(
            f"    violations                           "
            f"{sla['violation_count']} "
            f"({sla['violation_seconds']:.1f}s total)"
        )
        overall = sla["scopes"].get("overall", {}).get("value_s")
        if overall is not None:
            out(
                f"    overall windowed p{quantile:g} (end of run)   "
                f"{overall * 1e3:.2f}ms"
            )
    out("")
    out("  verdict: " + ("RECOVERED" if result.recovered else "SUBSCRIPTION LOST"))
    return "\n".join(lines)
