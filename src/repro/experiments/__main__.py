"""``python -m repro.experiments`` entry point."""

import sys

from repro.experiments.cli import main

sys.exit(main())
