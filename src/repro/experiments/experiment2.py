"""Experiment 2: client scalability (Figures 5a/5b/5c and 6).

The large-scale RGame run of section V-D: players join over time (120 to
1200 in the paper), each publishing 3 state updates per second on its tile
channel, with up to 8 pub/sub servers available.  The same experiment runs
twice -- once under the Dynamoth load balancer and once under consistent
hashing -- producing:

* **Fig 5a** -- active players over time,
* **Fig 5b** -- total deliveries/second and the number of rented servers,
* **Fig 5c** -- average response time over time (publish -> own update
  back), with rebalance time points,
* **Fig 6**  -- average and busiest-server load ratio over time (Dynamoth
  run only),
* the **headline metric**: the maximum player count each approach sustains
  while the (smoothed) average response time stays below 150 ms.  The
  paper reports ~1000 for Dynamoth vs ~625 for consistent hashing: "60%
  more simultaneously active players with the same set of pub/sub
  servers".

Absolute capacity constants stand in for the paper's lab machines; the
default ("scaled") preset shrinks the population ~4x with proportionally
smaller per-server bandwidth so the whole comparison runs in seconds.
``paper_scale()`` reproduces the original magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.broker.config import BrokerConfig
from repro.core.cluster import (
    BALANCER_CONSISTENT_HASHING,
    BALANCER_DYNAMOTH,
    DynamothCluster,
)
from repro.core.config import DynamothConfig
from repro.experiments.records import BucketedStat, Sampler, SeriesRecorder
from repro.obs.trace import Tracer
from repro.workload.rgame import RGameConfig, RGameWorkload
from repro.workload.schedules import ramp


@dataclass
class ScalabilityConfig:
    """Parameters of one Experiment 2 run."""

    tiles_per_side: int = 6
    start_players: int = 40
    end_players: int = 360
    ramp_duration_s: float = 360.0
    hold_duration_s: float = 40.0
    updates_per_s: float = 3.0
    payload_size: int = 200
    nominal_egress_bps: float = 210_000.0
    max_servers: int = 8
    initial_servers: int = 1
    spawn_delay_s: float = 5.0
    t_wait_s: float = 10.0
    seed: int = 0
    #: the paper's playability bound: 150 ms average response time
    latency_bound_s: float = 0.150
    #: smoothing window for the sustainability judgement, seconds
    smooth_window_s: float = 10.0

    @classmethod
    def paper_scale(cls) -> "ScalabilityConfig":
        """The original magnitudes: 120 -> 1200 players, 64 tiles."""
        return cls(
            tiles_per_side=8,
            start_players=120,
            end_players=1200,
            ramp_duration_s=600.0,
            hold_duration_s=60.0,
            nominal_egress_bps=1_450_000.0,
        )

    @classmethod
    def smoke(cls) -> "ScalabilityConfig":
        """A tiny preset for fast integration tests."""
        return cls(
            tiles_per_side=3,
            start_players=10,
            end_players=80,
            ramp_duration_s=80.0,
            hold_duration_s=20.0,
            nominal_egress_bps=150_000.0,
            max_servers=4,
        )

    @property
    def duration_s(self) -> float:
        return self.ramp_duration_s + self.hold_duration_s

    def dynamoth_config(self) -> DynamothConfig:
        return DynamothConfig(
            max_servers=self.max_servers,
            min_servers=self.initial_servers,
            spawn_delay_s=self.spawn_delay_s,
            t_wait_s=self.t_wait_s,
        )

    def broker_config(self) -> BrokerConfig:
        return BrokerConfig(
            nominal_egress_bps=self.nominal_egress_bps,
            cpu_per_publish_s=10e-6,
            cpu_per_delivery_s=5e-6,
            per_connection_bps=None,
            output_buffer_limit_bytes=8 * 1_048_576,
        )

    def rgame_config(self) -> RGameConfig:
        return RGameConfig(
            tiles_per_side=self.tiles_per_side,
            updates_per_s=self.updates_per_s,
            payload_size=self.payload_size,
        )


@dataclass
class ScalabilityResult:
    """Everything one run produced."""

    balancer: str
    config: ScalabilityConfig
    recorder: SeriesRecorder
    response_times: BucketedStat
    rebalance_times: List[float]
    balancer_events: List[Tuple[float, str, str]]
    load_history: List[Tuple[float, Dict[str, float]]]
    final_server_count: int

    # --- Figure 5a ---
    def population_series(self) -> List[Tuple[float, float]]:
        return self.recorder.get("population")

    # --- Figure 5b ---
    def messages_series(self) -> List[Tuple[float, float]]:
        return self.recorder.get("deliveries_per_s")

    def server_series(self) -> List[Tuple[float, float]]:
        return self.recorder.get("servers")

    # --- Figure 5c ---
    def response_series(self) -> List[Tuple[int, float]]:
        return self.response_times.mean_series()

    # --- Figure 6 ---
    def load_ratio_series(self) -> List[Tuple[float, float, float]]:
        """(time, average LR, busiest-server LR) samples."""
        out = []
        for t, ratios in self.load_history:
            if ratios:
                values = list(ratios.values())
                out.append((t, sum(values) / len(values), max(values)))
        return out

    # --- headline ---
    def smoothed_response(self, time: float) -> Optional[float]:
        half = self.config.smooth_window_s / 2.0
        return self.response_times.window_mean(time - half, time + half)

    def max_sustainable_players(self) -> int:
        """Largest population reached while the smoothed average response
        time still met the 150 ms playability bound."""
        bound = self.config.latency_bound_s
        best = 0
        for t, population in self.population_series():
            smoothed = self.smoothed_response(t)
            if smoothed is None or smoothed <= bound:
                best = max(best, int(population))
        return best


def run_scalability(
    config: Optional[ScalabilityConfig] = None,
    *,
    balancer: str = BALANCER_DYNAMOTH,
    tracer: Optional[Tracer] = None,
) -> ScalabilityResult:
    """One full Experiment 2 run under the given balancer."""
    config = config if config is not None else ScalabilityConfig()
    cluster = DynamothCluster(
        seed=config.seed,
        config=config.dynamoth_config(),
        broker_config=config.broker_config(),
        initial_servers=config.initial_servers,
        balancer=balancer,
        tracer=tracer,
    )

    rtt = BucketedStat()
    workload = RGameWorkload(
        cluster, config.rgame_config(), rtt_sink=lambda value, t: rtt.add(t, value)
    )

    recorder = SeriesRecorder()
    sampler = Sampler(cluster.sim, recorder, period=1.0)
    sampler.add_gauge("population", lambda now: workload.population)
    sampler.add_gauge("servers", lambda now: cluster.server_count)
    # Cumulative deliveries across servers; decommissioned servers' totals
    # are frozen inside the closure's running maximum.
    totals: Dict[str, int] = {}

    def cumulative_deliveries() -> float:
        for server_id, server in cluster.servers.items():
            totals[server_id] = server.delivery_count
        return float(sum(totals.values()))

    sampler.add_rate_gauge("deliveries_per_s", cumulative_deliveries)
    sampler.start(start_delay=1.0)

    workload.follow(
        ramp(config.start_players, config.end_players, config.ramp_duration_s)
    )
    cluster.run_until(config.duration_s)
    workload.stop()
    sampler.stop()

    balancer_actor = cluster.balancer
    return ScalabilityResult(
        balancer=balancer,
        config=config,
        recorder=recorder,
        response_times=rtt,
        rebalance_times=balancer_actor.rebalance_times(),
        balancer_events=[(e.time, e.kind, e.detail) for e in balancer_actor.events],
        load_history=list(balancer_actor.load_history),
        final_server_count=cluster.server_count,
    )


@dataclass
class HeadlineComparison:
    """The paper's headline claim, measured."""

    dynamoth: ScalabilityResult
    consistent_hashing: ScalabilityResult

    @property
    def dynamoth_max_players(self) -> int:
        return self.dynamoth.max_sustainable_players()

    @property
    def ch_max_players(self) -> int:
        return self.consistent_hashing.max_sustainable_players()

    @property
    def improvement(self) -> float:
        """Relative player-capacity gain of Dynamoth over consistent
        hashing (the paper reports ~0.60)."""
        ch = self.ch_max_players
        return (self.dynamoth_max_players - ch) / ch if ch else float("inf")


def run_headline_comparison(
    config: Optional[ScalabilityConfig] = None,
) -> HeadlineComparison:
    """Both Experiment 2 runs: Dynamoth vs consistent hashing."""
    config = config if config is not None else ScalabilityConfig()
    dynamoth = run_scalability(config, balancer=BALANCER_DYNAMOTH)
    hashing = run_scalability(
        replace(config), balancer=BALANCER_CONSISTENT_HASHING
    )
    return HeadlineComparison(dynamoth, hashing)
