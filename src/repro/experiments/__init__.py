"""Experiment harness: regenerates every figure of the paper's evaluation.

* :mod:`repro.experiments.experiment1` -- Figure 4a/4b (channel-level
  replication micro-benchmarks).
* :mod:`repro.experiments.experiment2` -- Figures 5a/5b/5c and 6
  (client scalability, Dynamoth vs consistent hashing) plus the headline
  "60% more clients" comparison.
* :mod:`repro.experiments.experiment3` -- Figure 7a/7b (elasticity under a
  fluctuating player population).
* :mod:`repro.experiments.records` -- low-footprint time-series recording.
* :mod:`repro.experiments.report` -- plain-text tables/series mirroring
  the paper's figures.
"""

from repro.experiments.records import BucketedStat, Sampler, SeriesRecorder

__all__ = ["BucketedStat", "Sampler", "SeriesRecorder"]
