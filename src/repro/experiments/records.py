"""Low-footprint time-series recording for long experiment runs.

A scalability run produces millions of response-time samples; keeping each
one would dominate memory.  :class:`BucketedStat` aggregates samples into
per-second ``(count, sum, max)`` buckets online -- enough to draw every
"average X over time" figure -- and keeps a bounded reservoir for
percentiles.  :class:`Sampler` snapshots cluster gauges (population, server
count, cumulative deliveries, load ratios) once per second, yielding the
series behind Figures 5, 6 and 7.
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTask


class BucketedStat:
    """Per-second aggregation of a streaming metric with a reservoir."""

    def __init__(self, reservoir_size: int = 20_000, seed: int = 0):
        self._buckets: Dict[int, List[float]] = {}  # second -> [count, sum, max]
        self._reservoir: List[float] = []
        self._reservoir_size = reservoir_size
        self._seen = 0
        self._rng = Random(seed)

    def add(self, time: float, value: float) -> None:
        bucket = self._buckets.get(int(time))
        if bucket is None:
            self._buckets[int(time)] = [1.0, value, value]
        else:
            bucket[0] += 1
            bucket[1] += value
            if value > bucket[2]:
                bucket[2] = value
        self._seen += 1
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self._seen)
            if slot < self._reservoir_size:
                self._reservoir[slot] = value

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._seen

    def mean_series(self) -> List[Tuple[int, float]]:
        """``(second, mean)`` pairs, sorted by time."""
        return [
            (second, bucket[1] / bucket[0])
            for second, bucket in sorted(self._buckets.items())
        ]

    def count_series(self) -> List[Tuple[int, int]]:
        return [
            (second, int(bucket[0])) for second, bucket in sorted(self._buckets.items())
        ]

    def window_mean(self, start: float, end: float) -> Optional[float]:
        """Mean of all samples with ``start <= t < end`` (None if empty)."""
        count = total = 0.0
        for second, bucket in self._buckets.items():
            if start <= second < end:
                count += bucket[0]
                total += bucket[1]
        return total / count if count else None

    def window_count(self, start: float, end: float) -> int:
        return int(
            sum(b[0] for s, b in self._buckets.items() if start <= s < end)
        )

    def mean(self) -> Optional[float]:
        count = sum(b[0] for b in self._buckets.values())
        total = sum(b[1] for b in self._buckets.values())
        return total / count if count else None

    def percentile(self, q: float) -> Optional[float]:
        """Approximate percentile from the reservoir (q in [0, 100])."""
        if not self._reservoir:
            return None
        data = sorted(self._reservoir)
        rank = min(len(data) - 1, max(0, round(q / 100.0 * (len(data) - 1))))
        return data[rank]


@dataclass
class SeriesRecorder:
    """Named (time, value) series with aligned sampling."""

    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def record(self, name: str, time: float, value: float) -> None:
        self.series.setdefault(name, []).append((time, value))

    def get(self, name: str) -> List[Tuple[float, float]]:
        return self.series.get(name, [])

    def values(self, name: str) -> List[float]:
        return [v for __, v in self.get(name)]

    def last(self, name: str) -> Optional[float]:
        points = self.get(name)
        return points[-1][1] if points else None

    def max(self, name: str) -> Optional[float]:
        points = self.get(name)
        return max(v for __, v in points) if points else None


class Sampler:
    """Periodically evaluates gauges and appends them to a recorder.

    Gauges are callables taking the current time; rate gauges can be built
    from cumulative counters via :meth:`add_rate_gauge`.
    """

    def __init__(self, sim: Simulator, recorder: SeriesRecorder, period: float = 1.0):
        self.recorder = recorder
        self._gauges: Dict[str, Callable[[float], float]] = {}
        self._task = PeriodicTask(sim, period, self._sample)

    def add_gauge(self, name: str, fn: Callable[[float], float]) -> None:
        self._gauges[name] = fn

    def add_rate_gauge(self, name: str, counter_fn: Callable[[], float]) -> None:
        """Record the per-second rate of a monotonically growing counter."""
        state = {"last_t": None, "last_v": 0.0}

        def gauge(now: float) -> float:
            value = counter_fn()
            if state["last_t"] is None:
                rate = 0.0
            else:
                dt = now - state["last_t"]
                rate = (value - state["last_v"]) / dt if dt > 0 else 0.0
            state["last_t"] = now
            state["last_v"] = value
            return rate

        self._gauges[name] = gauge

    def start(self, start_delay: float = 0.0) -> None:
        self._task.start(start_delay=start_delay)

    def stop(self) -> None:
        self._task.stop()

    def _sample(self, now: float) -> None:
        for name, gauge in self._gauges.items():
            self.recorder.record(name, now, gauge(now))
